"""Fig. 16 — average number of plans per algorithm and query shape.

Runs all eight variants over the §6.2 synthetic workload (chain / dense /
thin / star, 1-10 triple patterns) under a cap, and compares the averages
to the paper's table.  Expected shape:

* MXC+/XC+ average below 1 plan (they fail on some queries);
* XC and SC explode (orders of magnitude above the M-variants);
* MSC+/MXC/MSC stay small; every variant returns exactly 1 plan on stars.
"""

from repro.bench.harness import paper_vs_measured_table, plan_space_sweep
from repro.bench.paper_data import FIG16_PLAN_COUNTS, OPTION_ORDER, SHAPE_ORDER
from repro.workloads.synthetic import SHAPES

from benchmarks.conftest import once


def test_fig16_plan_counts(benchmark, record_table):
    sweep = once(benchmark, plan_space_sweep)
    measured = sweep.table(lambda s: s.plan_count)

    record_table(
        "fig16_plan_counts",
        paper_vs_measured_table(
            "Fig. 16 — average number of plans per algorithm and query shape",
            OPTION_ORDER,
            SHAPE_ORDER,
            FIG16_PLAN_COUNTS,
            measured,
        ),
    )

    # MXC+/XC+ fail on some chain/thin queries -> averages below 1.
    for name in ("MXC+", "XC+"):
        assert measured[name]["chain"] < 1
        assert measured[name]["thin"] < 1
    # Star queries: single maximal clique -> exactly one plan for the
    # minimum variants (paper: 1 across MXC+/XC+/MSC+/SC+/MXC/MSC).
    for name in ("MXC+", "XC+", "MSC+", "SC+", "MXC", "MSC"):
        assert measured[name]["star"] == 1.0
    # The explosive variants dominate the frugal ones (paper: 58948 vs
    # 18.2 on chains).  Our enumeration caps truncate SC/XC, so the
    # measured gap is a lower bound on the paper's.
    for shape in SHAPES:
        assert measured["SC"][shape] >= 10 * measured["MSC"][shape]
    assert measured["XC"]["chain"] >= 10 * measured["MXC"]["chain"]
    # MSC explores more than MSC+ but stays reasonable.
    assert 1 <= measured["MSC"]["chain"] <= 1000
    assert measured["MSC"]["chain"] >= measured["MSC+"]["chain"]
