"""Ablation — the §5.1 3-way replicated partitioning vs subject-only.

The paper's partitioner stores each triple three times (by subject,
property and object hash) precisely so that *every* first-level join is
co-located (PWOC).  This ablation re-runs CSQ's plans over a store with
only the subject replica: joins whose key sits in an object/property
position lose co-location, degrade to reduce joins, and the query needs
more MapReduce jobs and more time — quantifying what the 3x storage
buys.
"""

from repro.bench.harness import format_table, lubm_csq, lubm_graph
from repro.cost.params import CostParams
from repro.mapreduce.engine import ClusterConfig
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.workloads.lubm_queries import query

from benchmarks.conftest import once

QUERIES = ("Q1", "Q3", "Q5", "Q7", "Q9", "Q12")


def run_ablation():
    csq = lubm_csq()
    graph = lubm_graph()
    params = CostParams(job_overhead=400.0)
    subject_only = PlanExecutor(
        partition_graph(graph, 7, replicas=("s",)),
        ClusterConfig(num_nodes=7),
        params,
    )
    rows = []
    for name in QUERIES:
        q = query(name)
        plan, _ = csq.optimize(q)
        full = csq.execute_plan(plan)
        degraded = subject_only.execute(plan)
        assert full.rows == degraded.rows, name  # answers must not change
        rows.append(
            {
                "query": name,
                "full_jobs": full.job_signature(),
                "s_only_jobs": degraded.job_signature(),
                "full_time": full.response_time,
                "s_only_time": degraded.response_time,
            }
        )
    return rows


def test_ablation_partitioning(benchmark, record_table):
    rows = once(benchmark, run_ablation)
    record_table(
        "ablation_partitioning",
        format_table(
            ["query", "jobs (3x)", "jobs (s-only)", "time (3x)", "time (s-only)", "slowdown"],
            [
                [
                    r["query"],
                    r["full_jobs"],
                    r["s_only_jobs"],
                    f"{r['full_time']:,.0f}",
                    f"{r['s_only_time']:,.0f}",
                    f"{r['s_only_time'] / r['full_time']:.2f}x",
                ]
                for r in rows
            ],
            title="Ablation — 3-way replicated partitioning vs subject-only",
        ),
    )
    # Losing the o/p replicas can only add jobs (joins whose key is
    # object- or property-positioned stop being co-locatable)...
    def jobs(sig: str) -> int:
        return 1 if sig == "M" else int(sig)

    for r in rows:
        assert jobs(r["s_only_jobs"]) >= jobs(r["full_jobs"]), r["query"]
    # ... in particular Q1's single map-only job becomes a shuffle job.
    q1 = next(r for r in rows if r["query"] == "Q1")
    assert q1["full_jobs"] == "M" and q1["s_only_jobs"] != "M"
    # And response time suffers on most queries.  (At this scale a
    # co-located plan can occasionally lose to a re-hashed shuffle by
    # placement-skew luck, so we assert the aggregate, not each query.)
    slower = sum(1 for r in rows if r["s_only_time"] > 1.1 * r["full_time"])
    assert slower >= len(rows) / 2
    total_full = sum(r["full_time"] for r in rows)
    total_sonly = sum(r["s_only_time"] for r in rows)
    assert total_sonly > total_full
