"""Figure-regeneration benchmarks (one per paper table/figure)."""
