"""RPC transport overhead: per-query cost of the process boundary.

Not a paper figure — this benchmark characterizes what the
``shard_transport="rpc"`` boundary costs over ``"inproc"``: the same
sharded deployment (shards=2, serial execution), the same 14 LUBM
queries, identical answers (always asserted, per query), and the
per-query wall-clock side by side.  Because a registered template
crosses the wire once and each query afterwards ships only its bound
constant vector, level metadata and exchange rows, the expected
overhead is a few socket round-trips per job level plus the row
payloads — the table records exactly that, together with the request
bytes shipped per query under both wire formats: ``pickle`` (tuple
lists) and ``columnar`` (dictionary-encoded id buffers plus a
terms-the-peer-lacks delta, the default).

There is no unconditional wall-clock gate: RPC cannot be faster than a
function call in a single-machine simulation; the point of the table is
to keep the overhead *visible* so a regression (e.g. a spec
accidentally re-shipped per task) shows up as a bytes/latency jump.
Answer equality is the hard assertion, plus a bytes gate: the columnar
wire must encode smaller than pickle on every row-heavy query (the ones
where wire tax actually matters).  On machines with real parallelism
(>= 4 CPUs) two wall-clock gates arm: worst-case per-query rpc/inproc
<= 2.0x, and — in the concurrent companion test — multiplexed+coalesced
throughput >= 2x the serial-connection baseline under an 8-thread mixed
workload.  Set RPC_BENCH_STRICT=0 to skip both on noisy runners.

Results land in ``benchmarks/results/rpc_overhead.txt`` (per-query) and
``benchmarks/results/rpc_overhead_concurrent.txt`` (8-thread mix:
serial-connection vs multiplexed vs coalesced, bytes + frames per
query).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.service import QueryService, ServiceConfig
from repro.workloads import lubm, lubm_queries
from tests.conformance import rpc_workers_work

UNIVERSITIES = 8
SHARDS = 2
ROUNDS = 3

#: queries that ship enough exchange rows for encoding to matter; the
#: columnar wire must beat pickled tuples on every one of them
ROW_HEAVY = ("Q5", "Q8", "Q10", "Q11", "Q14")

#: wall-clock gates (worst-case per-query ratio, concurrent speedup)
#: apply only where parallelism is physically possible
MAX_RPC_RATIO = 2.0
REQUIRED_CONCURRENT_SPEEDUP = 2.0
DRIVER_THREADS = 8

STRICT = os.environ.get("RPC_BENCH_STRICT", "1") != "0"


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def test_rpc_overhead(record_table):
    if not rpc_workers_work():
        pytest.skip("RPC shard workers unavailable in this environment")
    graph = lubm.generate(lubm.LUBMConfig(universities=UNIVERSITIES))
    queries = lubm_queries.all_queries()

    def service(transport: str, wire: str = "columnar") -> QueryService:
        return QueryService(
            graph,
            ServiceConfig(
                shards=SHARDS,
                shard_transport=transport,
                wire_format=wire,
                result_cache_size=0,
            ),
        )

    def measure(svc: QueryService, query):
        svc.submit(query)  # warm: optimize, register, bind
        best, outcome = float("inf"), None
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            outcome = svc.submit(query)
            best = min(best, time.perf_counter() - t0)
        return best, outcome

    inproc = service("inproc")
    rpc = service("rpc", wire="columnar")
    rpc_pickle = service("rpc", wire="pickle")
    rows = []
    try:
        for query in queries:
            inproc_s, inproc_out = measure(inproc, query)
            rpc_s, rpc_out = measure(rpc, query)
            _, pickle_out = measure(rpc_pickle, query)
            # The hard gate: answers are identical over both transports
            # and both wire formats.
            assert rpc_out.rows == inproc_out.rows, query.name
            assert rpc_out.attrs == inproc_out.attrs, query.name
            assert pickle_out.rows == inproc_out.rows, query.name
            assert rpc_out.report.transport == "rpc"
            columnar_bytes = sum(rpc_out.report.shard_bytes or ())
            pickle_bytes = sum(pickle_out.report.shard_bytes or ())
            if query.name in ROW_HEAVY:
                # The bytes gate: dictionary-encoded frames must be
                # smaller wherever enough rows cross the wire.
                assert columnar_bytes < pickle_bytes, (
                    f"{query.name}: columnar {columnar_bytes} B >= "
                    f"pickle {pickle_bytes} B"
                )
            rows.append(
                (
                    query.name,
                    len(rpc_out.rows),
                    1e3 * inproc_s,
                    1e3 * rpc_s,
                    rpc_s / inproc_s if inproc_s > 0 else float("inf"),
                    pickle_bytes,
                    columnar_bytes,
                    columnar_bytes / pickle_bytes if pickle_bytes else 1.0,
                )
            )
    finally:
        inproc.close()
        rpc.close()
        rpc_pickle.close()

    lines = [
        f"RPC transport overhead — LUBM({UNIVERSITIES} universities), "
        f"shards={SHARDS}, serial execution, best of {ROUNDS}",
        f"{'query':>6} {'rows':>6} {'inproc ms':>10} {'rpc ms':>10} "
        f"{'rpc/inproc':>11} {'pickle B':>10} {'columnar B':>11} "
        f"{'col/pkl':>8}",
    ]
    for name, count, inproc_ms, rpc_ms, ratio, pkl, col, frac in rows:
        lines.append(
            f"{name:>6} {count:>6} {inproc_ms:>10.2f} {rpc_ms:>10.2f} "
            f"{ratio:>10.1f}x {pkl:>10} {col:>11} {frac:>8.2f}"
        )
    lines.append(
        "answers identical over both transports and wire formats "
        "for all queries: yes"
    )
    lines.append(
        "columnar wire smaller than pickle on all row-heavy queries "
        f"({', '.join(ROW_HEAVY)}): yes"
    )
    worst = max(ratio for _, _, _, _, ratio, _, _, _ in rows)
    cpus = _cpus()
    lines.append(
        f"worst-case per-query rpc/inproc: {worst:.1f}x "
        f"(gate <= {MAX_RPC_RATIO}x on >= 4 CPUs; {cpus} CPU(s) here)"
    )
    lines.append(
        "concurrent throughput: see rpc_overhead_concurrent.txt"
    )
    record_table("rpc_overhead", "\n".join(lines))
    if STRICT and cpus >= 4:
        assert worst <= MAX_RPC_RATIO, (
            f"worst-case rpc/inproc {worst:.2f}x > {MAX_RPC_RATIO}x "
            f"on {cpus} CPUs"
        )


def test_lone_query_coalescing_untaxed(record_table):
    """A lone query must not pay the coalescing window.

    The coalescer's leader only holds the window open when the router
    observes more than one active query; with serial traffic every
    level flushes immediately.  Demonstrated with a deliberately fat
    window: pre-gate, each of a lone query's levels would sleep the
    full window as pure latency tax (>= levels x window per query);
    post-gate, per-query latency matches the window-less multiplexed
    config.  A traced pass also compares worker-side queue_wait spans:
    the gate removes driver-side sleeping, it must not push wait into
    the worker's queue instead.
    """
    if not rpc_workers_work():
        pytest.skip("RPC shard workers unavailable in this environment")
    graph = lubm.generate(lubm.LUBMConfig(universities=UNIVERSITIES))
    queries = lubm_queries.all_queries()
    window_ms = 40.0

    configs = (
        ("multiplexed", {"rpc_pipeline": DRIVER_THREADS}),
        (
            "coalesced",
            {
                "rpc_pipeline": DRIVER_THREADS,
                "coalesce_window_ms": window_ms,
                "coalesce_max_batch": DRIVER_THREADS,
            },
        ),
    )

    latency: dict[str, dict[str, float]] = {}
    levels_per_query: dict[str, float] = {}
    queue_wait: dict[str, float] = {}
    for label, overrides in configs:
        service = QueryService(
            graph,
            ServiceConfig(
                shards=SHARDS,
                shard_transport="rpc",
                result_cache_size=0,
                **overrides,
            ),
        )
        per_query: dict[str, float] = {}
        try:
            for query in queries:
                service.submit(query)  # warm
            router = service.executor.router
            for query in queries:
                base = router.level_requests
                best = float("inf")
                for _ in range(ROUNDS):
                    t0 = time.perf_counter()
                    service.submit(query)
                    best = min(best, time.perf_counter() - t0)
                per_query[query.name] = best
                levels_per_query[query.name] = (
                    (router.level_requests - base) / ROUNDS
                )
        finally:
            service.close()
        latency[label] = per_query

        # Traced pass: worker-side queue_wait must stay flat — the gate
        # removes the driver-side sleep without queueing on the worker.
        service = QueryService(
            graph,
            ServiceConfig(
                shards=SHARDS,
                shard_transport="rpc",
                result_cache_size=0,
                tracing=True,
                **overrides,
            ),
        )
        try:
            for query in queries:
                service.submit(query)
            service.trace_sink.clear()
            for query in queries:
                service.submit(query)
            waits = 0.0
            for trace_id in service.trace_sink.trace_ids():
                trace = service.trace_sink.get(trace_id)
                waits += sum(
                    s.duration_s
                    for s in trace.spans
                    if s.name == "queue_wait"
                )
            queue_wait[label] = waits
        finally:
            service.close()

    window_s = window_ms / 1000.0
    overheads = sorted(
        latency["coalesced"][q.name] - latency["multiplexed"][q.name]
        for q in queries
    )
    median_overhead = overheads[len(overheads) // 2]
    would_be_tax = sum(
        levels_per_query[q.name] * window_s for q in queries
    )
    total_overhead = sum(overheads)

    lines = [
        f"Lone-query coalescing tax — LUBM({UNIVERSITIES} universities), "
        f"shards={SHARDS}, serial submissions, best of {ROUNDS}, "
        f"coalesce window {window_ms:.0f} ms",
        f"{'query':>6} {'levels':>7} {'multiplexed ms':>15} "
        f"{'coalesced ms':>13} {'overhead ms':>12}",
    ]
    for query in queries:
        multiplexed_ms = 1e3 * latency["multiplexed"][query.name]
        coalesced_ms = 1e3 * latency["coalesced"][query.name]
        lines.append(
            f"{query.name:>6} {levels_per_query[query.name]:>7.0f} "
            f"{multiplexed_ms:>15.2f} {coalesced_ms:>13.2f} "
            f"{coalesced_ms - multiplexed_ms:>12.2f}"
        )
    lines.append(
        f"median per-query overhead: {1e3 * median_overhead:.2f} ms "
        f"(gate < {window_ms / 2:.0f} ms: an ungated lone query pays "
        f">= one full window per level)"
    )
    lines.append(
        f"workload overhead {1e3 * total_overhead:.1f} ms vs "
        f"{1e3 * would_be_tax:.0f} ms the ungated windows would cost"
    )
    lines.append(
        "worker queue_wait (traced pass): "
        f"multiplexed {1e3 * queue_wait['multiplexed']:.2f} ms, "
        f"coalesced {1e3 * queue_wait['coalesced']:.2f} ms"
    )
    record_table("rpc_lone_query_coalescing", "\n".join(lines))

    # Physically about not sleeping: a 40 ms sleep per level cannot
    # hide in best-of-N scheduling noise, so this gate is unconditional.
    assert median_overhead < window_s / 2, (
        f"lone queries pay {1e3 * median_overhead:.1f} ms median overhead "
        f"under a {window_ms:.0f} ms coalescing window: the lone-query "
        "gate is not working"
    )
    assert total_overhead < would_be_tax / 2
    # The saved window must not reappear as worker-side queueing.
    assert queue_wait["coalesced"] < queue_wait["multiplexed"] + (
        window_s * len(queries) / 2
    )


def test_rpc_concurrent_throughput(record_table):
    """The concurrency axis: 8 driver threads submit a rotated mixed
    LUBM workload against the same rpc deployment under three transport
    configurations — serial-connection (rpc_pipeline=0: one outstanding
    request per socket, the pre-multiplexing baseline), multiplexed
    (rpc_pipeline=8), and coalesced (multiplexed + cross-query level
    batching).  Answers are always asserted; the frames column proves
    coalescing actually merges concurrent levels (fewer frames shipped
    than levels requested)."""
    if not rpc_workers_work():
        pytest.skip("RPC shard workers unavailable in this environment")
    graph = lubm.generate(lubm.LUBMConfig(universities=UNIVERSITIES))
    queries = lubm_queries.all_queries()
    rotations = [
        queries[i % len(queries):] + queries[: i % len(queries)]
        for i in range(DRIVER_THREADS)
    ]
    total_queries = DRIVER_THREADS * len(queries)

    configs = (
        ("serial-conn", {"rpc_pipeline": 0}),
        ("multiplexed", {"rpc_pipeline": DRIVER_THREADS}),
        (
            "coalesced",
            {
                "rpc_pipeline": DRIVER_THREADS,
                "coalesce_window_ms": 2.0,
                "coalesce_max_batch": DRIVER_THREADS,
            },
        ),
    )

    expected: dict[str, frozenset] = {}
    measured = {}
    for label, overrides in configs:
        service = QueryService(
            graph,
            ServiceConfig(
                shards=SHARDS,
                shard_transport="rpc",
                result_cache_size=0,
                **overrides,
            ),
        )
        try:
            # Warm: optimize + register every template, fill the bound
            # plan caches and the columnar dictionaries.
            for query in queries:
                outcome = service.submit(query)
                expected.setdefault(query.name, frozenset(outcome.rows))
                assert frozenset(outcome.rows) == expected[query.name]
            router = service.executor.router
            base_requests = router.level_requests
            base_frames = router.level_frames
            base_bytes = sum(
                s.bytes_received for s in router.worker_stats()
            )
            results: list[object] = [None] * DRIVER_THREADS

            def run(i: int) -> None:
                try:
                    results[i] = [
                        (q.name, frozenset(service.submit(q).rows))
                        for q in rotations[i]
                    ]
                except BaseException as exc:
                    results[i] = exc

            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(DRIVER_THREADS)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
            for i, result in enumerate(results):
                assert not isinstance(result, BaseException), (label, i, result)
                for name, rows_ in result:
                    assert rows_ == expected[name], (label, name)
            requests = router.level_requests - base_requests
            frames = router.level_frames - base_frames
            bytes_total = (
                sum(s.bytes_received for s in router.worker_stats())
                - base_bytes
            )
            measured[label] = {
                "wall": wall,
                "qps": total_queries / wall,
                "requests": requests,
                "frames": frames,
                "frames_per_query": frames / total_queries,
                "bytes": bytes_total,
            }
        finally:
            service.close()

    serial = measured["serial-conn"]
    cpus = _cpus()
    lines = [
        f"RPC concurrent throughput — LUBM({UNIVERSITIES} universities), "
        f"shards={SHARDS}, serial execution, {DRIVER_THREADS} driver "
        f"threads x {len(queries)} queries (rotated mix), "
        f"{cpus} CPU(s) available",
        f"{'config':<12} {'wall s':>8} {'q/s':>8} {'speedup':>8} "
        f"{'level reqs':>11} {'frames':>8} {'frames/q':>9} {'recv MB':>8}",
    ]
    for label, _ in configs:
        m = measured[label]
        lines.append(
            f"{label:<12} {m['wall']:>8.2f} {m['qps']:>8.1f} "
            f"{serial['wall'] / m['wall']:>7.2f}x {m['requests']:>11} "
            f"{m['frames']:>8} {m['frames_per_query']:>9.2f} "
            f"{m['bytes'] / 1e6:>8.2f}"
        )
    lines.append(
        "answers identical to the single-connection warm reference "
        "under all three configurations: yes"
    )
    coalesced, multiplexed = measured["coalesced"], measured["multiplexed"]
    lines.append(
        "coalescing merged concurrent levels: "
        f"{coalesced['frames']} frames for {coalesced['requests']} level "
        "requests"
    )
    if cpus < 4:
        lines.append(
            f"note: {cpus} CPU(s) available — concurrent speedup is not "
            f"achievable here; the >= {REQUIRED_CONCURRENT_SPEEDUP}x gate "
            "applies on >= 4 CPUs (see CI rpc-concurrency)"
        )
    record_table("rpc_overhead_concurrent", "\n".join(lines))

    # The structural gates hold on any machine.  (Level-request totals
    # legitimately differ across configs: concurrent identical
    # submissions single-flight at the service layer, and how many
    # coincide is timing-dependent.)  Without coalescing, frames ==
    # level requests exactly; with it, strictly fewer frames went out
    # than levels were requested — the merge provably happened.
    assert serial["frames"] == serial["requests"]
    assert multiplexed["frames"] == multiplexed["requests"]
    assert 0 < coalesced["frames"] < coalesced["requests"]
    if STRICT and cpus >= 4:
        speedup = serial["wall"] / coalesced["wall"]
        assert speedup >= REQUIRED_CONCURRENT_SPEEDUP, (
            f"multiplexed+coalesced speedup {speedup:.2f}x < "
            f"{REQUIRED_CONCURRENT_SPEEDUP}x over the serial-connection "
            f"baseline on {cpus} CPUs"
        )
