"""RPC transport overhead: per-query cost of the process boundary.

Not a paper figure — this benchmark characterizes what the
``shard_transport="rpc"`` boundary costs over ``"inproc"``: the same
sharded deployment (shards=2, serial execution), the same 14 LUBM
queries, identical answers (always asserted, per query), and the
per-query wall-clock side by side.  Because a registered template
crosses the wire once and each query afterwards ships only its bound
constant vector, level metadata and exchange rows, the expected
overhead is a few socket round-trips per job level plus pickling of the
exchanged tuples — the table records exactly that, together with the
request bytes shipped per query.

There is no wall-clock gate: RPC cannot be faster than a function call
in a single-machine simulation; the point of the table is to keep the
overhead *visible* so a regression (e.g. a spec accidentally re-shipped
per task) shows up as a bytes/latency jump.  Answer equality is the
hard assertion.

Results land in ``benchmarks/results/rpc_overhead.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro.service import QueryService, ServiceConfig
from repro.workloads import lubm, lubm_queries
from tests.conformance import rpc_workers_work

UNIVERSITIES = 8
SHARDS = 2
ROUNDS = 3


def test_rpc_overhead(record_table):
    if not rpc_workers_work():
        pytest.skip("RPC shard workers unavailable in this environment")
    graph = lubm.generate(lubm.LUBMConfig(universities=UNIVERSITIES))
    queries = lubm_queries.all_queries()

    def service(transport: str) -> QueryService:
        return QueryService(
            graph,
            ServiceConfig(
                shards=SHARDS,
                shard_transport=transport,
                result_cache_size=0,
            ),
        )

    def measure(svc: QueryService, query):
        svc.submit(query)  # warm: optimize, register, bind
        best, outcome = float("inf"), None
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            outcome = svc.submit(query)
            best = min(best, time.perf_counter() - t0)
        return best, outcome

    inproc = service("inproc")
    rpc = service("rpc")
    rows = []
    try:
        for query in queries:
            inproc_s, inproc_out = measure(inproc, query)
            rpc_s, rpc_out = measure(rpc, query)
            # The hard gate: answers are identical over both transports.
            assert rpc_out.rows == inproc_out.rows, query.name
            assert rpc_out.attrs == inproc_out.attrs, query.name
            assert rpc_out.report.transport == "rpc"
            shipped = sum(rpc_out.report.shard_bytes or ())
            rows.append(
                (
                    query.name,
                    len(rpc_out.rows),
                    1e3 * inproc_s,
                    1e3 * rpc_s,
                    rpc_s / inproc_s if inproc_s > 0 else float("inf"),
                    shipped,
                )
            )
    finally:
        inproc.close()
        rpc.close()

    lines = [
        f"RPC transport overhead — LUBM({UNIVERSITIES} universities), "
        f"shards={SHARDS}, serial execution, best of {ROUNDS}",
        f"{'query':>6} {'rows':>6} {'inproc ms':>10} {'rpc ms':>10} "
        f"{'rpc/inproc':>11} {'bytes/query':>12}",
    ]
    for name, count, inproc_ms, rpc_ms, ratio, shipped in rows:
        lines.append(
            f"{name:>6} {count:>6} {inproc_ms:>10.2f} {rpc_ms:>10.2f} "
            f"{ratio:>10.1f}x {shipped:>12}"
        )
    lines.append("answers identical over both transports for all queries: yes")
    record_table("rpc_overhead", "\n".join(lines))
