"""RPC transport overhead: per-query cost of the process boundary.

Not a paper figure — this benchmark characterizes what the
``shard_transport="rpc"`` boundary costs over ``"inproc"``: the same
sharded deployment (shards=2, serial execution), the same 14 LUBM
queries, identical answers (always asserted, per query), and the
per-query wall-clock side by side.  Because a registered template
crosses the wire once and each query afterwards ships only its bound
constant vector, level metadata and exchange rows, the expected
overhead is a few socket round-trips per job level plus the row
payloads — the table records exactly that, together with the request
bytes shipped per query under both wire formats: ``pickle`` (tuple
lists) and ``columnar`` (dictionary-encoded id buffers plus a
terms-the-peer-lacks delta, the default).

There is no wall-clock gate: RPC cannot be faster than a function call
in a single-machine simulation; the point of the table is to keep the
overhead *visible* so a regression (e.g. a spec accidentally re-shipped
per task) shows up as a bytes/latency jump.  Answer equality is the
hard assertion, plus a bytes gate: the columnar wire must encode
smaller than pickle on every row-heavy query (the ones where wire tax
actually matters).

Results land in ``benchmarks/results/rpc_overhead.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro.service import QueryService, ServiceConfig
from repro.workloads import lubm, lubm_queries
from tests.conformance import rpc_workers_work

UNIVERSITIES = 8
SHARDS = 2
ROUNDS = 3

#: queries that ship enough exchange rows for encoding to matter; the
#: columnar wire must beat pickled tuples on every one of them
ROW_HEAVY = ("Q5", "Q8", "Q10", "Q11", "Q14")


def test_rpc_overhead(record_table):
    if not rpc_workers_work():
        pytest.skip("RPC shard workers unavailable in this environment")
    graph = lubm.generate(lubm.LUBMConfig(universities=UNIVERSITIES))
    queries = lubm_queries.all_queries()

    def service(transport: str, wire: str = "columnar") -> QueryService:
        return QueryService(
            graph,
            ServiceConfig(
                shards=SHARDS,
                shard_transport=transport,
                wire_format=wire,
                result_cache_size=0,
            ),
        )

    def measure(svc: QueryService, query):
        svc.submit(query)  # warm: optimize, register, bind
        best, outcome = float("inf"), None
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            outcome = svc.submit(query)
            best = min(best, time.perf_counter() - t0)
        return best, outcome

    inproc = service("inproc")
    rpc = service("rpc", wire="columnar")
    rpc_pickle = service("rpc", wire="pickle")
    rows = []
    try:
        for query in queries:
            inproc_s, inproc_out = measure(inproc, query)
            rpc_s, rpc_out = measure(rpc, query)
            _, pickle_out = measure(rpc_pickle, query)
            # The hard gate: answers are identical over both transports
            # and both wire formats.
            assert rpc_out.rows == inproc_out.rows, query.name
            assert rpc_out.attrs == inproc_out.attrs, query.name
            assert pickle_out.rows == inproc_out.rows, query.name
            assert rpc_out.report.transport == "rpc"
            columnar_bytes = sum(rpc_out.report.shard_bytes or ())
            pickle_bytes = sum(pickle_out.report.shard_bytes or ())
            if query.name in ROW_HEAVY:
                # The bytes gate: dictionary-encoded frames must be
                # smaller wherever enough rows cross the wire.
                assert columnar_bytes < pickle_bytes, (
                    f"{query.name}: columnar {columnar_bytes} B >= "
                    f"pickle {pickle_bytes} B"
                )
            rows.append(
                (
                    query.name,
                    len(rpc_out.rows),
                    1e3 * inproc_s,
                    1e3 * rpc_s,
                    rpc_s / inproc_s if inproc_s > 0 else float("inf"),
                    pickle_bytes,
                    columnar_bytes,
                    columnar_bytes / pickle_bytes if pickle_bytes else 1.0,
                )
            )
    finally:
        inproc.close()
        rpc.close()
        rpc_pickle.close()

    lines = [
        f"RPC transport overhead — LUBM({UNIVERSITIES} universities), "
        f"shards={SHARDS}, serial execution, best of {ROUNDS}",
        f"{'query':>6} {'rows':>6} {'inproc ms':>10} {'rpc ms':>10} "
        f"{'rpc/inproc':>11} {'pickle B':>10} {'columnar B':>11} "
        f"{'col/pkl':>8}",
    ]
    for name, count, inproc_ms, rpc_ms, ratio, pkl, col, frac in rows:
        lines.append(
            f"{name:>6} {count:>6} {inproc_ms:>10.2f} {rpc_ms:>10.2f} "
            f"{ratio:>10.1f}x {pkl:>10} {col:>11} {frac:>8.2f}"
        )
    lines.append(
        "answers identical over both transports and wire formats "
        "for all queries: yes"
    )
    lines.append(
        "columnar wire smaller than pickle on all row-heavy queries "
        f"({', '.join(ROW_HEAVY)}): yes"
    )
    record_table("rpc_overhead", "\n".join(lines))
