"""Tracing overhead: the observability layer must be ~free when off.

Not a paper figure — this gates the observability subsystem added on
top of the reproduction:

* **off path**: with ``tracing=False`` every span site in the hot path
  collapses to one contextvar read returning a shared no-op context
  manager.  Median warm-submit latency must stay within 1% of the same
  service measured with the span sites stubbed out entirely (so the
  difference is exactly what disabled instrumentation costs).
* **on path**: with ``tracing=True`` every submission records its full
  span tree (driver stages + engine levels) into the bounded sink.
  Median warm-submit latency may grow by at most 5% over the off path.

The three modes are sampled *interleaved on one warm service* (config
toggled per round), so cache state and machine drift cancel out of the
comparison.  SERVICE_BENCH_STRICT=0 keeps the run + recorded table as
a smoke test without gating on timings.

Results land in ``benchmarks/results/obs_overhead.txt``.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

import repro.mapreduce.engine as engine_mod
import repro.physical.executor as executor_mod
import repro.service.service as service_mod
from repro.obs import trace as trace_mod
from repro.service.service import QueryService, ServiceConfig
from repro.workloads import lubm, lubm_queries

#: Interleaved rounds sampled per mode (each round submits every query).
ROUNDS = 80
WARMUP = 10
NAMES = ["Q1", "Q4", "Q8"]
STRICT = os.environ.get("SERVICE_BENCH_STRICT", "1") != "0"

#: Unsharded submissions touch these modules' span sites; each bound
#: the tracing functions at import, so the bypass patches the consumers.
_SITES = (
    (service_mod, ("span", "record_remote", "trace_ctx", "current_ref")),
    (engine_mod, ("span",)),
    (executor_mod, ("span",)),
)


def _set_bypassed(bypassed: bool) -> None:
    for mod, names in _SITES:
        for name in names:
            if not bypassed:
                setattr(mod, name, getattr(trace_mod, name))
            elif name == "span":
                setattr(mod, name, lambda *a, **k: trace_mod._NOOP_CTX)
            else:
                setattr(mod, name, lambda *a, **k: None)


@pytest.fixture(scope="module")
def graph():
    return lubm.generate(lubm.LUBMConfig(universities=4))


def test_tracing_overhead_gates(graph, record_table):
    """Off-path span sites <= 1% over stubbed-out; tracing on <= 5%."""
    queries = [lubm_queries.query(n) for n in NAMES]
    samples: dict[str, list[float]] = {"bypassed": [], "off": [], "on": []}
    with QueryService(graph, ServiceConfig(result_cache_size=0)) as service:
        for q in queries:  # pay optimization + caches outside the timing
            for _ in range(WARMUP):
                service.submit(q)
        try:
            for _ in range(ROUNDS):
                for mode in ("bypassed", "off", "on"):
                    _set_bypassed(mode == "bypassed")
                    service.config.tracing = mode == "on"
                    start = time.perf_counter()
                    for q in queries:
                        service.submit(q)
                    samples[mode].append(time.perf_counter() - start)
        finally:
            _set_bypassed(False)
            service.config.tracing = False
        assert service.trace_sink.trace_ids(), "tracing must have recorded"

    baseline, off, on = (
        statistics.median(samples[m]) for m in ("bypassed", "off", "on")
    )
    off_overhead = off / baseline - 1.0
    on_overhead = on / off - 1.0
    lines = [
        "obs_overhead: median warm-submit latency per tracing mode",
        f"(LUBM universities=4, |G|={len(graph)}, {NAMES}, "
        f"{ROUNDS} interleaved rounds)",
        "",
        f"  span sites bypassed : {1e3 * baseline:8.3f} ms",
        f"  tracing off         : {1e3 * off:8.3f} ms  "
        f"({100 * off_overhead:+.2f}% vs bypassed; gate +1%)",
        f"  tracing on          : {1e3 * on:8.3f} ms  "
        f"({100 * on_overhead:+.2f}% vs off; gate +5%)",
    ]
    record_table("obs_overhead", "\n".join(lines))
    if STRICT:
        assert off_overhead <= 0.01, (
            f"disabled tracing costs {100 * off_overhead:.2f}% > 1%"
        )
        assert on_overhead <= 0.05, (
            f"enabled tracing costs {100 * on_overhead:.2f}% > 5%"
        )
