"""Fig. 6 — the pairwise comparison triples of the decomposition options.

Regenerates the 8x8 matrix of (o1, o2, o3) triples and checks it against
the paper's table, including which cells are dominated (Prop. 4.1).
"""

from repro.bench.harness import format_table
from repro.core.decomposition import ALL_OPTIONS, OPTIONS_BY_NAME

from benchmarks.conftest import once

#: The paper's Fig. 6, transcribed row by row (upper triangle).
PAPER_FIG6 = {
    ("MXC+", "XC+"): "(=,=,<)",
    ("MXC+", "MSC+"): "(=,<,=)",
    ("MXC+", "SC+"): "(=,<,<)",
    ("MXC+", "MXC"): "(<,=,=)",
    ("MXC+", "XC"): "(<,=,<)",
    ("MXC+", "MSC"): "(<,<,=)",
    ("MXC+", "SC"): "(<,<,<)",
    ("XC+", "MSC+"): "(=,<,>)",
    ("XC+", "SC+"): "(=,<,=)",
    ("XC+", "MXC"): "(<,=,>)",
    ("XC+", "XC"): "(<,=,=)",
    ("XC+", "MSC"): "(<,<,>)",
    ("XC+", "SC"): "(<,<,=)",
    ("MSC+", "SC+"): "(=,=,<)",
    ("MSC+", "MXC"): "(<,>,=)",
    ("MSC+", "XC"): "(<,>,<)",
    ("MSC+", "MSC"): "(<,=,=)",
    ("MSC+", "SC"): "(<,=,<)",
    ("SC+", "MXC"): "(<,>,>)",
    ("SC+", "XC"): "(<,>,=)",
    ("SC+", "MSC"): "(<,=,>)",
    ("SC+", "SC"): "(<,=,=)",
    ("MXC", "XC"): "(=,=,<)",
    ("MXC", "MSC"): "(=,<,=)",
    ("MXC", "SC"): "(=,<,<)",
    ("XC", "MSC"): "(=,<,>)",
    ("XC", "SC"): "(=,<,=)",
    ("MSC", "SC"): "(=,=,<)",
}


def computed_matrix() -> dict[tuple[str, str], str]:
    out = {}
    for (a, b) in PAPER_FIG6:
        triple = OPTIONS_BY_NAME[a].comparison_triple(OPTIONS_BY_NAME[b])
        out[(a, b)] = "({},{},{})".format(*triple)
    return out


def test_fig06_option_matrix(benchmark, record_table):
    ours = once(benchmark, computed_matrix)

    rows = []
    mismatches = []
    for (a, b), paper_cell in PAPER_FIG6.items():
        ok = ours[(a, b)] == paper_cell
        rows.append([f"{a} vs {b}", paper_cell, ours[(a, b)], "ok" if ok else "DIFF"])
        if not ok:
            mismatches.append((a, b))
    record_table(
        "fig06_option_matrix",
        format_table(
            ["pair", "paper", "ours", "match"],
            rows,
            title="Fig. 6 — comparison triples of decomposition options",
        ),
    )
    assert not mismatches

    # Prop. 4.1: '<'-dominated cells mean plan-space inclusion.
    dominated = sum(
        1
        for (a, b) in PAPER_FIG6
        if OPTIONS_BY_NAME[a].dominated_by(OPTIONS_BY_NAME[b])
    )
    assert dominated == sum(
        1 for cell in PAPER_FIG6.values() if "<" in cell and ">" not in cell
    )
    assert len(ALL_OPTIONS) == 8
