"""Fig. 19 — average uniqueness ratio (#unique / #produced plans).

Expected shape (paper): the recommended variants (MSC+, MXC, MSC)
produce essentially no duplicates on chains/thin/stars; dense queries
are the hardest for every variant (more decomposition sequences converge
to the same plan), with SC worst on dense.
"""

from repro.bench.harness import paper_vs_measured_table, plan_space_sweep
from repro.bench.paper_data import FIG19_UNIQUENESS_RATIO, OPTION_ORDER, SHAPE_ORDER

from benchmarks.conftest import once


def test_fig19_uniqueness_ratio(benchmark, record_table):
    sweep = once(benchmark, plan_space_sweep)
    measured = sweep.table(lambda s: 100.0 * s.uniqueness_ratio)

    record_table(
        "fig19_uniqueness_ratio",
        paper_vs_measured_table(
            "Fig. 19 — average uniqueness ratio (%) per algorithm and query shape",
            OPTION_ORDER,
            SHAPE_ORDER,
            FIG19_UNIQUENESS_RATIO,
            measured,
            fmt="{:.1f}",
        ),
    )

    # The recommended variants produce (nearly) no duplicates anywhere —
    # the paper's headline for this figure.
    for name in ("MXC+", "XC+", "MSC+", "MXC", "MSC"):
        for shape in SHAPE_ORDER:
            assert measured[name][shape] >= 99.0, (name, shape)
    # The exhaustive variants do duplicate.  (Note a deviation: we
    # identify plans structurally, which collapses level-shifted copies
    # that XC produces by carrying singletons — so our XC/SC ratios sit
    # below the paper's; see EXPERIMENTS.md.)
    assert measured["XC"]["dense"] < 100.0
    assert measured["SC"]["dense"] < 100.0
