"""Fig. 7 — the plan-space inclusion lattice of the eight variants.

Empirically verifies every arrow of Fig. 7 (P_A ⊇ P_B) by enumerating
complete plan spaces on a panel of small queries, and checks strictness
on at least one panel query per arrow where the paper's examples imply
it (e.g. MSC ⊊ SC via Fig. 11-13).
"""

import random

from repro.bench.harness import format_table
from repro.core.algorithm import cliquesquare
from repro.core.decomposition import OPTIONS_BY_NAME
from repro.core.properties import plan_space_signatures
from tests.conftest import fig14_query, random_connected_query

from benchmarks.conftest import once

#: The arrows of Fig. 7: (superset, subset).
FIG7_ARROWS = [
    ("XC+", "MXC+"),
    ("MSC+", "MXC+"),
    ("MXC", "MXC+"),
    ("SC+", "XC+"),
    ("XC", "XC+"),
    ("SC+", "MSC+"),
    ("MSC", "MSC+"),
    ("XC", "MXC"),
    ("MSC", "MXC"),
    ("SC", "SC+"),
    ("SC", "XC"),
    ("SC", "MSC"),
]


def panel():
    rng = random.Random(8612)
    queries = [random_connected_query(rng, n) for n in (2, 3, 3, 4, 4)]
    queries.append(fig14_query())
    return queries


def run_inclusions():
    queries = panel()
    spaces = {}
    for name in OPTIONS_BY_NAME:
        spaces[name] = [
            plan_space_signatures(
                cliquesquare(q, OPTIONS_BY_NAME[name], max_plans=None, timeout_s=30)
            )
            for q in queries
        ]
    results = []
    for outer, inner in FIG7_ARROWS:
        holds = all(
            small <= large
            for small, large in zip(spaces[inner], spaces[outer])
        )
        strict = any(
            small < large
            for small, large in zip(spaces[inner], spaces[outer])
        )
        results.append((outer, inner, holds, strict))
    return results


def test_fig07_plan_space_inclusions(benchmark, record_table):
    results = once(benchmark, run_inclusions)
    rows = [
        [f"P_{outer}", "⊇", f"P_{inner}", "ok" if holds else "VIOLATED",
         "strict" if strict else "equal-on-panel"]
        for outer, inner, holds, strict in results
    ]
    record_table(
        "fig07_plan_space_inclusions",
        format_table(
            ["superset", "", "subset", "inclusion", "strictness"],
            rows,
            title="Fig. 7 — plan-space inclusions between CliqueSquare variants",
        ),
    )
    assert all(holds for _, _, holds, _ in results)
    # SC strictly contains every minimum/exact variant on this panel.
    strict_over_sc = [s for o, i, _, s in results if o == "SC"]
    assert any(strict_over_sc)
