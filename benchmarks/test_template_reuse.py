"""Template reuse: bound-template submission vs cold optimization.

Characterizes the prepared-query layer (this repo's parameterized plan
templates): a *constant-varying* workload — the same query shapes probed
with many distinct constants — is the one repetition pattern the
classical plan cache cannot exploit, because every constant combination
has its own constant-inclusive canonical signature.  Template extraction
lifts the constants out, so the CliqueSquare optimizer runs **once per
shape** and every further query only binds constants into the compiled
plan and executes.

The benchmark submits the same mix to two services:

* **cold** — ``enable_templates=False`` (the legacy behaviour): every
  distinct constant combination pays full optimization;
* **template** — the default: one optimizer run per shape, then
  bind + execute per query.

Answers must be identical; the template service must run the mix ≥ 5×
faster.  Results land in ``benchmarks/results/template_reuse.txt``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.service.service import QueryService, ServiceConfig
from repro.workloads import lubm

#: Wall-clock thresholds hold comfortably on a quiet machine but can
#: flake on noisy shared CI runners; SERVICE_BENCH_STRICT=0 keeps the
#: runs + recorded tables as a smoke test without gating on timings.
STRICT = os.environ.get("SERVICE_BENCH_STRICT", "1") != "0"

#: Two heavy LUBM shapes with one constant varied (Q13- and Q14-like;
#: their 9-10 patterns make optimization the dominant per-query cost,
#: exactly the regime where plan reuse pays).  Q13var varies an IRI
#: (university), Q14var a literal (university name).
SHAPES = {
    "Q13var": (
        "SELECT ?X ?Y ?Z WHERE {{ ?X rdf:type ub:FullProfessor . "
        "?X ub:teacherOf ?Y . ?Y rdf:type ub:GraduateCourse . "
        "?X ub:worksFor ?Z . ?W ub:advisor ?X . "
        "?W rdf:type ub:GraduateStudent . ?W ub:emailAddress ?E . "
        "?Z rdf:type ub:Department . ?Z ub:subOrganizationOf {c} }}"
    ),
    "Q14var": (
        "SELECT ?X ?Y ?Z WHERE {{ ?X rdf:type ub:FullProfessor . "
        "?X ub:teacherOf ?Y . ?Y rdf:type ub:GraduateCourse . "
        "?X ub:worksFor ?Z . ?W ub:advisor ?X . "
        "?W rdf:type ub:GraduateStudent . ?W ub:emailAddress ?E . "
        "?Z rdf:type ub:Department . ?Z ub:subOrganizationOf ?U . "
        "?U ub:name {c} }}"
    ),
}
CONSTANTS = 25  # distinct constants per shape


@pytest.fixture(scope="module")
def graph():
    return lubm.generate(lubm.LUBMConfig(universities=8))


def _mix() -> list[str]:
    mix = [
        SHAPES["Q13var"].format(c=lubm.university_iri(i))
        for i in range(CONSTANTS)
    ]
    mix += [
        SHAPES["Q14var"].format(c=f'"University{i}"')
        for i in range(CONSTANTS)
    ]
    return mix


def test_template_reuse_speedup(graph, record_table):
    mix = _mix()

    cold_cfg = ServiceConfig(enable_templates=False, result_cache_size=0)
    with QueryService(graph, cold_cfg) as cold_svc:
        t0 = time.perf_counter()
        cold = [cold_svc.submit(q) for q in mix]
        cold_s = time.perf_counter() - t0
        cold_snap = cold_svc.snapshot_stats()

    with QueryService(graph, ServiceConfig(result_cache_size=0)) as tmpl_svc:
        t0 = time.perf_counter()
        warm = [tmpl_svc.submit(q) for q in mix]
        tmpl_s = time.perf_counter() - t0
        tmpl_snap = tmpl_svc.snapshot_stats()

    # Identical answers, submission by submission.
    assert [o.rows for o in warm] == [o.rows for o in cold]
    # One optimizer invocation per *shape*, not per constant.
    assert tmpl_snap.optimizer_runs == len(SHAPES)
    assert tmpl_snap.template_hits == len(mix) - len(SHAPES)
    assert cold_snap.optimizer_runs == len(mix)

    speedup = cold_s / tmpl_s
    qps_cold = len(mix) / cold_s
    qps_tmpl = len(mix) / tmpl_s
    lines = [
        "template_reuse: bound-template submission vs cold optimization",
        f"(LUBM universities=8, |G|={len(graph)}, {len(SHAPES)} shapes x "
        f"{CONSTANTS} distinct constants = {len(mix)} submissions, "
        "result cache off in both services)",
        "",
        f"{'mode':>10} {'total_s':>9} {'q/s':>8} {'optimizer runs':>15}",
        f"{'cold':>10} {cold_s:>9.3f} {qps_cold:>8.1f} "
        f"{cold_snap.optimizer_runs:>15}",
        f"{'template':>10} {tmpl_s:>9.3f} {qps_tmpl:>8.1f} "
        f"{tmpl_snap.optimizer_runs:>15}",
        f"speedup: {speedup:.1f}x",
        "",
        tmpl_snap.format(),
    ]
    record_table("template_reuse", "\n".join(lines))

    if STRICT:
        assert speedup >= 5.0, (
            f"template reuse should be >=5x faster than cold "
            f"optimization, got {speedup:.1f}x"
        )
