"""Fig. 17 — average optimality ratio (#HO plans / #plans) per variant.

Expected shape (paper): MSC+, MXC and MSC return *only* HO plans on this
workload (ratio 100%); SC+ is high but not perfect on chains/thin; XC and
SC are low; MXC+/XC+ score 40% on chains (queries where they fail score
0 by convention).
"""

from repro.bench.harness import paper_vs_measured_table, plan_space_sweep
from repro.bench.paper_data import FIG17_OPTIMALITY_RATIO, OPTION_ORDER, SHAPE_ORDER

from benchmarks.conftest import once


def test_fig17_optimality_ratio(benchmark, record_table):
    sweep = once(benchmark, plan_space_sweep)
    measured = sweep.table(lambda s: 100.0 * s.optimality_ratio)

    record_table(
        "fig17_optimality_ratio",
        paper_vs_measured_table(
            "Fig. 17 — average optimality ratio (%) per algorithm and query shape",
            OPTION_ORDER,
            SHAPE_ORDER,
            FIG17_OPTIMALITY_RATIO,
            measured,
            fmt="{:.1f}",
        ),
    )

    # The M(S)C workhorses return only (or almost only) HO plans.  The
    # paper measured exactly 100% on its workload while noting "this is
    # not guaranteed in general" — our random thin/dense queries include
    # some where MXC/MSC legitimately emit a few non-HO plans.
    for shape in SHAPE_ORDER:
        assert measured["MSC+"][shape] == 100.0, shape
    for name in ("MXC", "MSC"):
        assert measured[name]["chain"] == 100.0
        assert measured[name]["star"] == 100.0
        for shape in SHAPE_ORDER:
            assert measured[name][shape] >= 70.0, (name, shape)
    # MXC+/XC+ lose ratio to outright failures on chains/thin.
    for name in ("MXC+", "XC+"):
        assert measured[name]["chain"] < 100.0
    # The exhaustive variants drown HO plans in non-HO ones.
    assert measured["SC"]["chain"] < 60.0
    assert measured["XC"]["chain"] < 60.0
    # SC+ sits between the extremes on chains (paper: 71.9%).
    assert measured["SC"]["chain"] < measured["SC+"]["chain"] <= 100.0
