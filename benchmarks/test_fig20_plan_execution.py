"""Fig. 20 — execution time: CliqueSquare-MSC plan vs. best binary bushy
vs. best binary linear plan, on the 14-query LUBM workload.

The paper's protocol (§6.3): build all binary bushy/linear plans, keep
the cheapest under the §5.4 cost model, execute all three on the
cluster.  We find the cheapest binary plans by dynamic programming
(provably the same optimum) and execute on the simulated cluster.

Expected shape: for every query, MSC-best <= bushy-best <= linear-best
(modulo ties on trivial queries); speedups up to ~2x vs bushy and far
larger vs linear on the longest queries.
"""

from repro.bench.harness import format_table, lubm_csq
from repro.bench.paper_data import FIG20_JOB_SIGNATURES
from repro.core.binary import best_bushy_plan, best_linear_plan
from repro.cost.model import select_best_plan
from repro.workloads.lubm_queries import QUERY_NAMES, query

from benchmarks.conftest import once


def run_fig20():
    csq = lubm_csq()
    rows = []
    for name in QUERY_NAMES:
        q = query(name)
        msc_plan, opt_result = csq.optimize(q)
        bushy_plan, _ = best_bushy_plan(q, csq.coster.cost)
        linear_plan, _ = best_linear_plan(q, csq.coster.cost)
        runs = {
            "MSC": csq.execute_plan(msc_plan),
            "bushy": csq.execute_plan(bushy_plan),
            "linear": csq.execute_plan(linear_plan),
        }
        answers = {k: r.rows for k, r in runs.items()}
        assert answers["MSC"] == answers["bushy"] == answers["linear"], name
        rows.append(
            {
                "query": name,
                "tps": len(q.patterns),
                "sig": "".join(runs[k].job_signature() for k in ("MSC", "bushy", "linear")),
                "msc": runs["MSC"].response_time,
                "bushy": runs["bushy"].response_time,
                "linear": runs["linear"].response_time,
            }
        )
    return rows


def test_fig20_plan_execution(benchmark, record_table):
    rows = once(benchmark, run_fig20)

    table_rows = []
    for r in rows:
        table_rows.append(
            [
                f"{r['query']}({r['tps']}|{r['sig']})",
                FIG20_JOB_SIGNATURES[r["query"]],
                f"{r['msc']:,.0f}",
                f"{r['bushy']:,.0f}",
                f"{r['linear']:,.0f}",
                f"{r['bushy'] / r['msc']:.2f}x",
                f"{r['linear'] / r['msc']:.2f}x",
            ]
        )
    record_table(
        "fig20_plan_execution",
        format_table(
            [
                "query(tps|jobs)",
                "paper jobs",
                "MSC time",
                "bushy time",
                "linear time",
                "bushy/MSC",
                "linear/MSC",
            ],
            table_rows,
            title=(
                "Fig. 20 — simulated execution time: MSC plan vs best binary "
                "bushy vs best binary linear (scaled LUBM, 7 nodes)"
            ),
        ),
    )

    # Headline shape: the MSC plan wins or essentially ties everywhere.
    # On the small selective queries (Q3/Q4) our simulator can hand the
    # binary plans a small (<15%) edge — early constant filtering versus
    # a wider co-located star join; the paper's margins there are small
    # too.  The flat plan must never lose materially.
    for r in rows:
        assert r["msc"] <= r["bushy"] * 1.15, r["query"]
        assert r["msc"] <= r["linear"] * 1.15, r["query"]
    # Q1/Q2 have two patterns: all three plans are identical (paper: MMM).
    for r in rows[:2]:
        assert r["msc"] == r["bushy"] == r["linear"], r["query"]
    # Linear plans lose big somewhere (paper: up to 16x on Q8).
    assert max(r["linear"] / r["msc"] for r in rows) >= 2.0
    # Bushy plans lose measurably on the complex queries (paper: up to
    # 2x on Q9); require a clear win on several of them.
    assert max(r["bushy"] / r["msc"] for r in rows) >= 1.5
    clear_wins = sum(1 for r in rows if r["bushy"] / r["msc"] >= 1.2)
    assert clear_wins >= 4
