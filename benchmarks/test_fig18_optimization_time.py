"""Fig. 18 — average optimization time (ms) per variant and shape.

Expected shape (paper): MSC+, MXC, MSC answer fast (sub-second; MSC the
slowest of the three); SC/XC are orders of magnitude slower on their
explosive shapes; stars are cheap for the minimum variants.
"""

from repro.bench.harness import paper_vs_measured_table, plan_space_sweep
from repro.bench.paper_data import (
    FIG18_OPTIMIZATION_TIME_MS,
    OPTION_ORDER,
    SHAPE_ORDER,
)

from benchmarks.conftest import once


def test_fig18_optimization_time(benchmark, record_table):
    sweep = once(benchmark, plan_space_sweep)
    measured = sweep.table(lambda s: 1000.0 * s.elapsed_s)

    record_table(
        "fig18_optimization_time",
        paper_vs_measured_table(
            "Fig. 18 — average optimization time (ms) per algorithm and query shape",
            OPTION_ORDER,
            SHAPE_ORDER,
            FIG18_OPTIMIZATION_TIME_MS,
            measured,
            fmt="{:.2f}",
        ),
    )

    # The recommended variants stay fast on every shape (well under the
    # cost of a MapReduce job; the paper's bar is "less than 1 s").
    for name in ("MSC+", "MXC", "MSC"):
        for shape in SHAPE_ORDER:
            assert measured[name][shape] < 1500.0, (name, shape)
    # The exhaustive variants are at least 10x slower than MSC on chains.
    assert measured["SC"]["chain"] > 10 * measured["MSC"]["chain"]
    assert measured["XC"]["chain"] > 10 * measured["MXC"]["chain"]
    # Stars are trivial for minimum variants (single decomposition).
    assert measured["MSC"]["star"] < measured["MSC"]["chain"]
