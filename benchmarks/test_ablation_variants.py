"""Ablation — which CliqueSquare variant should drive the optimizer?

§6.2 concludes MSC is the sweet spot: it explores more plans than MSC+
(strictly larger space, Thm 4.1), always contains an HO plan (Thm 4.3),
and stays fast.  This ablation runs CSQ end-to-end with each viable
variant on LUBM queries and compares optimizer time, plan-space size and
the executed response time of the cost-selected plan.
"""

import statistics
import time

from repro.bench.harness import format_table, lubm_csq
from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC, MSC_PLUS, MXC, SC_PLUS
from repro.cost.model import select_best_plan
from repro.workloads.lubm_queries import query

from benchmarks.conftest import once

VARIANTS = (MSC_PLUS, SC_PLUS, MXC, MSC)
QUERIES = ("Q4", "Q7", "Q9", "Q11", "Q12", "Q14")


def run_variants():
    csq = lubm_csq()
    rows = []
    for option in VARIANTS:
        opt_times, plan_counts, exec_times = [], [], []
        for name in QUERIES:
            q = query(name)
            start = time.perf_counter()
            result = cliquesquare(q, option, max_plans=20_000, timeout_s=30)
            opt_times.append(time.perf_counter() - start)
            plan_counts.append(result.plan_count)
            best, _ = select_best_plan(result.unique_plans(), csq.coster)
            exec_times.append(csq.execute_plan(best).response_time)
        rows.append(
            {
                "option": option.name,
                "avg_plans": statistics.fmean(plan_counts),
                "avg_opt_ms": 1000 * statistics.fmean(opt_times),
                "total_exec": sum(exec_times),
            }
        )
    return rows


def test_ablation_variants(benchmark, record_table):
    rows = once(benchmark, run_variants)
    record_table(
        "ablation_variants",
        format_table(
            ["option", "avg #plans", "avg optimize (ms)", "total exec time"],
            [
                [
                    r["option"],
                    f"{r['avg_plans']:.1f}",
                    f"{r['avg_opt_ms']:.2f}",
                    f"{r['total_exec']:,.0f}",
                ]
                for r in rows
            ],
            title="Ablation — CSQ end-to-end under the four viable variants",
        ),
    )
    by_name = {r["option"]: r for r in rows}
    # MSC explores at least as many plans as MSC+ (strictly larger space).
    assert by_name["MSC"]["avg_plans"] >= by_name["MSC+"]["avg_plans"]
    # All variants optimize fast on this workload (paper: < 1 s).
    for r in rows:
        assert r["avg_opt_ms"] < 2_000, r["option"]
    # MSC's selected plans are never beaten by MSC+'s by more than noise
    # (its space is a superset, so with the same coster it can only tie
    # or win).
    assert by_name["MSC"]["total_exec"] <= by_name["MSC+"]["total_exec"] * 1.001
