"""Fig. 8 — worst-case decomposition-count bounds per variant.

Regenerates the closed-form D(n) table and validates that measured
decomposition counts on the worst-case query shapes (chains for cover
size, stars for clique count) respect the bounds.
"""

from repro.bench.harness import format_table
from repro.core.complexity import DECOMPOSITION_BOUNDS, decomposition_bound
from repro.core.decomposition import ALL_OPTIONS, decompositions
from repro.core.variable_graph import VariableGraph
from repro.workloads.synthetic import chain_query, star_query

from benchmarks.conftest import once

NS = (2, 3, 4, 5, 6, 7, 8)


def bound_table():
    return {
        name: {n: decomposition_bound(name, n) for n in NS}
        for name in DECOMPOSITION_BOUNDS
    }


def test_fig08_bound_table(benchmark, record_table):
    table = once(benchmark, bound_table)
    rows = [
        [name] + [f"{table[name][n]:,}" for n in NS] for name in DECOMPOSITION_BOUNDS
    ]
    record_table(
        "fig08_complexity_bounds",
        format_table(
            ["option"] + [f"n={n}" for n in NS],
            rows,
            title="Fig. 8 — upper bounds on the number of decompositions D(n)",
        ),
    )
    # Bound shape: SC dominates everything, partial >= maximal.  Only
    # meaningful once 2^n - 1 >= 2n + 1 (n >= 4): the paper notes the
    # worst cases behind each bound are mutually exclusive, so the
    # columns are not pointwise comparable at tiny n.
    for n in NS:
        if n >= 4:
            assert table["SC"][n] >= table["MSC"][n] >= table["MSC+"][n]
            assert table["SC"][n] >= table["XC"][n] >= table["MXC"][n]
            assert table["SC+"][n] >= table["MSC+"][n] >= table["MXC+"][n]


def measured_vs_bound():
    rows = []
    for n in (2, 3, 4, 5, 6):
        for make, shape in ((chain_query, "chain"), (star_query, "star")):
            graph = VariableGraph.from_query(make(n))
            for option in ALL_OPTIONS:
                measured = sum(1 for _ in decompositions(graph, option))
                rows.append(
                    (shape, n, option.name, measured,
                     decomposition_bound(option.name, n))
                )
    return rows


def test_fig08_measured_counts_respect_bounds(benchmark, record_table):
    rows = once(benchmark, measured_vs_bound)
    record_table(
        "fig08_measured_vs_bound",
        format_table(
            ["shape", "n", "option", "measured D(n)", "bound"],
            [[s, n, o, f"{m:,}", f"{b:,}"] for s, n, o, m, b in rows],
            title="Fig. 8 — measured decomposition counts vs. worst-case bounds",
        ),
    )
    for shape, n, option, measured, bound in rows:
        assert measured <= bound, (shape, n, option)
