"""Fig. 22 — characteristics of the LUBM workload queries.

The structural columns (#tps, #jv) are data-independent and must match
the paper exactly.  Result cardinalities are measured on the scaled
dataset; their *ordering across the selectivity classes* must match the
paper's split (selective queries return far fewer answers).
"""

import statistics

from repro.bench.harness import format_table, lubm_csq, lubm_graph
from repro.bench.paper_data import FIG22_TABLE
from repro.sparql.evaluator import evaluate
from repro.workloads.lubm_queries import NON_SELECTIVE, QUERY_NAMES, SELECTIVE, query

from benchmarks.conftest import once


def run_fig22():
    graph = lubm_graph()
    csq = lubm_csq()  # reuse for distributed cross-check of cardinalities
    rows = []
    for name in QUERY_NAMES:
        q = query(name)
        card = len(evaluate(q, graph))
        distributed = len(csq.run(q).answers)
        assert card == distributed, name
        rows.append(
            {
                "query": name,
                "tps": len(q.patterns),
                "jv": len(q.join_variables()),
                "card": card,
            }
        )
    return rows


def test_fig22_workload_stats(benchmark, record_table):
    rows = once(benchmark, run_fig22)

    table_rows = []
    for r in rows:
        p_tps, p_jv, p_card = FIG22_TABLE[r["query"]]
        table_rows.append(
            [
                r["query"],
                f"{p_tps}/{r['tps']}",
                f"{p_jv}/{r['jv']}",
                f"{p_card:,.0f}",
                f"{r['card']:,}",
            ]
        )
    record_table(
        "fig22_workload_stats",
        format_table(
            ["query", "#tps p/ours", "#jv p/ours", "|Q| LUBM10k", "|Q| scaled"],
            table_rows,
            title="Fig. 22 — LUBM workload characteristics (paper vs measured)",
        ),
    )

    # Structure matches the paper exactly.
    for r in rows:
        p_tps, p_jv, _ = FIG22_TABLE[r["query"]]
        assert r["tps"] == p_tps, r["query"]
        assert r["jv"] == p_jv, r["query"]
    # No query is empty, and the selectivity split holds in the median.
    cards = {r["query"]: r["card"] for r in rows}
    assert all(c > 0 for c in cards.values())
    assert statistics.median(
        cards[n] for n in SELECTIVE
    ) * 3 < statistics.median(cards[n] for n in NON_SELECTIVE)
    # Q1 is the largest answer in both the paper and the reproduction.
    assert max(cards, key=cards.get) == "Q1"
