"""Fig. 21 — system comparison: CSQ vs SHAPE-2f vs H2RDF+.

Runs the 14-query workload on all three (simulated) systems.  Expected
shape, per the paper's §6.4:

* PWOC structure: Q2/Q4/Q9/Q10 run without MapReduce jobs on SHAPE;
  Q1/Q2/Q3 collapse to map-only jobs on CSQ;
* systems win the selective queries their partitioning makes local;
* CSQ clearly wins the non-selective queries (flat plans, few jobs);
* summed over the workload, CSQ needs the least total time and H2RDF+
  by far the most (paper: 44 min vs 77 min vs 23 h).
"""

from repro.bench.harness import format_table, lubm_comparators, lubm_csq
from repro.bench.paper_data import (
    FIG21_CSQ_PWOC,
    FIG21_JOB_SIGNATURES,
    FIG21_SHAPE_PWOC,
)
from repro.workloads.lubm_queries import NON_SELECTIVE, QUERY_NAMES, SELECTIVE, query

from benchmarks.conftest import once


def run_fig21():
    csq = lubm_csq()
    shape, h2rdf = lubm_comparators()
    rows = []
    for name in QUERY_NAMES:
        q = query(name)
        reports = {s.name: s.run(q) for s in (csq, shape, h2rdf)}
        answer_sets = {frozenset(r.answers) for r in reports.values()}
        assert len(answer_sets) == 1, f"{name}: systems disagree"
        rows.append(
            {
                "query": name,
                "tps": len(q.patterns),
                "sig": "".join(
                    reports[s].job_signature for s in ("CSQ", "SHAPE-2f", "H2RDF+")
                ),
                "CSQ": reports["CSQ"].response_time,
                "SHAPE-2f": reports["SHAPE-2f"].response_time,
                "H2RDF+": reports["H2RDF+"].response_time,
                "shape_pwoc": reports["SHAPE-2f"].pwoc,
                "csq_pwoc": reports["CSQ"].pwoc,
            }
        )
    return rows


def test_fig21_system_comparison(benchmark, record_table):
    rows = once(benchmark, run_fig21)
    by_name = {r["query"]: r for r in rows}

    # paper's figure lists selective queries first
    ordering = [n for n in FIG21_JOB_SIGNATURES]
    table_rows = []
    for name in ordering:
        r = by_name[name]
        table_rows.append(
            [
                f"{name}({r['tps']}|{r['sig']})",
                FIG21_JOB_SIGNATURES[name],
                "selective" if name in SELECTIVE else "non-selective",
                f"{r['CSQ']:,.0f}",
                f"{r['SHAPE-2f']:,.0f}",
                f"{r['H2RDF+']:,.0f}",
            ]
        )
    totals = {
        s: sum(r[s] for r in rows) for s in ("CSQ", "SHAPE-2f", "H2RDF+")
    }
    table_rows.append(
        ["TOTAL", "", "", f"{totals['CSQ']:,.0f}", f"{totals['SHAPE-2f']:,.0f}",
         f"{totals['H2RDF+']:,.0f}"]
    )
    record_table(
        "fig21_system_comparison",
        format_table(
            ["query(tps|jobs)", "paper jobs", "class", "CSQ", "SHAPE-2f", "H2RDF+"],
            table_rows,
            title=(
                "Fig. 21 — simulated query evaluation time: CSQ vs SHAPE-2f "
                "vs H2RDF+ (scaled LUBM)"
            ),
        ),
    )

    # PWOC structure matches the paper exactly.
    for name in FIG21_SHAPE_PWOC:
        assert by_name[name]["shape_pwoc"], name
    for name in set(QUERY_NAMES) - set(FIG21_SHAPE_PWOC):
        assert not by_name[name]["shape_pwoc"], name
    for name in FIG21_CSQ_PWOC:
        assert by_name[name]["csq_pwoc"], name

    # Each system wins the selective queries its partitioning localizes.
    for name in FIG21_SHAPE_PWOC:
        assert by_name[name]["SHAPE-2f"] < by_name[name]["CSQ"], name

    # CSQ wins the non-selective class: every query against H2RDF+, and
    # all but at most one (noise-level margins, e.g. Q8's two-fragment
    # SHAPE plan) against SHAPE; the class total must favour CSQ clearly.
    for name in NON_SELECTIVE:
        assert by_name[name]["CSQ"] < by_name[name]["H2RDF+"], name
    shape_losses = [
        n for n in NON_SELECTIVE if by_name[n]["CSQ"] >= by_name[n]["SHAPE-2f"]
    ]
    assert len(shape_losses) <= 1, shape_losses
    for system in ("SHAPE-2f", "H2RDF+"):
        assert sum(by_name[n]["CSQ"] for n in NON_SELECTIVE) < 0.75 * sum(
            by_name[n][system] for n in NON_SELECTIVE
        )

    # Workload totals: CSQ < SHAPE < H2RDF+ (paper: 44 min / 77 min / 23 h).
    assert totals["CSQ"] < totals["SHAPE-2f"] < totals["H2RDF+"]
