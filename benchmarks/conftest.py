"""Shared helpers for the figure-regeneration benchmarks.

Every ``test_figNN_*`` benchmark regenerates one table/figure of the
paper (see DESIGN.md's per-experiment index), prints a paper-vs-measured
table, writes it to ``benchmarks/results/``, and asserts the qualitative
shape that the paper's conclusion rests on.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Print a table and persist it under benchmarks/results/<name>.txt."""

    def _record(name: str, table: str) -> None:
        print()
        print(table)
        (results_dir / f"{name}.txt").write_text(table + "\n")

    return _record


def once(benchmark, fn):
    """Run a heavyweight figure computation exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
