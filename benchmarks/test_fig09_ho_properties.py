"""Fig. 9 — HO classification of the eight variants.

Reproduces the classification empirically:

* HO-partial variants (SC+, MSC+, MSC) find a height-optimal plan on
  every panel query;
* HO-lossy variants fail on the paper's counterexamples — MXC+/XC+ find
  *no* plan for Fig. 10's query, MXC/XC miss the optimum on Fig. 14's;
* SC (HO-complete) finds every HO plan that any variant finds.
"""

import random

from repro.bench.harness import format_table
from repro.bench.paper_data import FIG9_HO_CLASSIFICATION
from repro.core.algorithm import cliquesquare
from repro.core.decomposition import ALL_OPTIONS, OPTIONS_BY_NAME, SC
from repro.core.properties import height, optimal_height, plan_space_signatures
from repro.sparql.parser import parse_query
from tests.conftest import FIG10, FIG11_QX, fig14_query, random_connected_query

from benchmarks.conftest import once


def panel():
    rng = random.Random(20141014)
    queries = [random_connected_query(rng, n) for n in (3, 4, 4, 5)]
    queries += [parse_query(FIG10, name="fig10"), parse_query(FIG11_QX, name="QX")]
    queries.append(fig14_query())
    return queries


def classify():
    queries = panel()
    outcome: dict[str, dict[str, int]] = {
        o.name: {"queries": 0, "found_plan": 0, "found_ho": 0} for o in ALL_OPTIONS
    }
    for q in queries:
        opt = optimal_height(q, timeout_s=30)
        for option in ALL_OPTIONS:
            result = cliquesquare(q, option, max_plans=100_000, timeout_s=20)
            outcome[option.name]["queries"] += 1
            if result.plans:
                outcome[option.name]["found_plan"] += 1
                if min(height(p) for p in result.plans) == opt:
                    outcome[option.name]["found_ho"] += 1
    return outcome


def paper_class(name: str) -> str:
    for cls, names in FIG9_HO_CLASSIFICATION.items():
        if name in names:
            return cls
    raise KeyError(name)


def test_fig09_ho_classification(benchmark, record_table):
    outcome = once(benchmark, classify)
    total = next(iter(outcome.values()))["queries"]
    rows = []
    for option in ALL_OPTIONS:
        o = outcome[option.name]
        measured = "HO-partial" if o["found_ho"] == total else "HO-lossy"
        rows.append(
            [option.name, paper_class(option.name),
             f"{o['found_plan']}/{total}", f"{o['found_ho']}/{total}", measured]
        )
    record_table(
        "fig09_ho_properties",
        format_table(
            ["option", "paper class", "plans found", "HO found", "measured class"],
            rows,
            title="Fig. 9 — HO properties (panel includes Figs. 10/11/14 witnesses)",
        ),
    )
    for cls in ("HO-complete", "HO-partial"):
        for name in FIG9_HO_CLASSIFICATION[cls]:
            assert outcome[name]["found_ho"] == total, name
    for name in FIG9_HO_CLASSIFICATION["HO-lossy"]:
        assert outcome[name]["found_ho"] < total, name


def test_fig09_sc_contains_all_ho_plans(benchmark):
    """HO-completeness of SC: every HO plan any variant finds is in P_SC."""

    def check():
        rng = random.Random(7)
        for n in (3, 4):
            q = random_connected_query(rng, n)
            opt = optimal_height(q)
            sc_space = plan_space_signatures(
                cliquesquare(q, SC, max_plans=None, timeout_s=30)
            )
            for option in ALL_OPTIONS:
                result = cliquesquare(q, option, max_plans=None, timeout_s=30)
                for plan in result.plans:
                    if height(plan) == opt:
                        assert plan.signature() in sc_space
        return True

    assert once(benchmark, check)
