"""Backend scaling: serial vs thread vs process wall-clock on a LUBM mix.

Not a paper figure — this benchmark characterizes the pluggable
execution backends added to the simulator:

* **serial** is the reference: one Python thread runs every map/reduce
  task, so a CPU-bound mix is limited to a single core;
* **thread** fans tasks out on a thread pool: identical answers, but the
  GIL serializes the CPU-bound task bodies, so it measures dispatch
  overhead more than parallelism;
* **process** fans each level's tasks across a ``ProcessPoolExecutor``:
  the store snapshot ships to workers once per pool, per-task traffic is
  the task spec plus its declared HDFS inputs, and results merge in
  submission order — answers are byte-identical to serial (asserted
  below and in tests/test_backends.py), only wall-clock changes.

On a multi-core machine the process backend must clear a >= 1.5x
speedup over serial on >= 4 workers; on starved machines (1 CPU —
common in sandboxes) true parallel speedup is physically impossible,
so the run degrades to a smoke test that still asserts correctness and
records the observed table.  Set BACKEND_BENCH_STRICT=0 to skip the
wall-clock gate on noisy shared runners.

Results land in ``benchmarks/results/backend_scaling.txt``.
"""

from __future__ import annotations

import os
import time

from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC
from repro.mapreduce.backends import ProcessBackend, ThreadBackend
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.workloads import lubm, lubm_queries

#: Non-selective LUBM queries: scans and joins over the whole dataset,
#: which is what makes the mix CPU-bound rather than overhead-bound.
MIX = ("Q1", "Q3", "Q5", "Q6", "Q7", "Q8")
UNIVERSITIES = 12
NUM_NODES = 7
WORKERS = 4
ROUNDS = 5
REQUIRED_SPEEDUP = 1.5

STRICT = os.environ.get("BACKEND_BENCH_STRICT", "1") != "0"


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _process_pools_work() -> bool:
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(abs, -1).result(timeout=60) == 1
    except Exception:
        return False


def test_backend_scaling(record_table):
    graph = lubm.generate(lubm.LUBMConfig(universities=UNIVERSITIES))
    store = partition_graph(graph, NUM_NODES)
    serial = PlanExecutor(store)

    plans = []
    for name in MIX:
        query = lubm_queries.query(name)
        plan = cliquesquare(query, MSC, timeout_s=30).plans[0]
        plans.append((name, serial.prepare(plan)))

    reference = {name: serial.execute_prepared(p).rows for name, p in plans}

    def measure(executor) -> tuple[float, dict[str, set]]:
        answers = {}
        for name, prepared in plans:  # warm-up: starts pools, fills caches
            answers[name] = executor.execute_prepared(prepared).rows
        # Best-of-N: scheduler noise on shared runners only ever slows a
        # pass down, so the minimum is the stable, gateable figure.
        best = float("inf")
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            for _, prepared in plans:
                executor.execute_prepared(prepared)
            best = min(best, time.perf_counter() - t0)
        return best, answers

    process_ok = _process_pools_work()
    rows = []
    serial_time, _ = measure(serial)
    rows.append(("serial", 1, serial_time, 1.0, "yes"))

    thread = PlanExecutor(store, backend=ThreadBackend(WORKERS))
    try:
        thread_time, thread_answers = measure(thread)
    finally:
        thread.close()
    rows.append(
        (
            "thread",
            WORKERS,
            thread_time,
            serial_time / thread_time,
            "yes" if thread_answers == reference else "NO",
        )
    )

    process_speedup = None
    process_identical = None
    if process_ok:
        process = PlanExecutor(store, backend=ProcessBackend(WORKERS, fallback=False))
        try:
            process_time, process_answers = measure(process)
        finally:
            process.close()
        process_identical = process_answers == reference
        process_speedup = serial_time / process_time
        rows.append(
            (
                "process",
                WORKERS,
                process_time,
                process_speedup,
                "yes" if process_identical else "NO",
            )
        )

    cpus = _cpus()
    lines = [
        "backend_scaling: wall-clock per pass over a CPU-bound LUBM mix",
        f"(LUBM universities={UNIVERSITIES}, |G|={len(graph)}, "
        f"{NUM_NODES} simulated nodes, mix={'+'.join(MIX)}, "
        f"best of {ROUNDS} rounds, {cpus} CPU(s) available)",
        "",
        f"{'backend':<10} {'workers':>7} {'s/pass':>10} {'speedup':>9} {'answers==serial':>16}",
    ]
    for name, workers, seconds, speedup, identical in rows:
        lines.append(
            f"{name:<10} {workers:>7} {seconds:>10.4f} {speedup:>8.2f}x {identical:>16}"
        )
    if not process_ok:
        lines.append("")
        lines.append("process backend: UNAVAILABLE on this machine (skipped)")
    if cpus < 2:
        lines.append("")
        lines.append(
            f"note: {cpus} CPU available — parallel speedup is not "
            f"achievable here; the >= {REQUIRED_SPEEDUP}x gate applies on "
            ">= 4 CPUs (see CI backend-smoke)"
        )
    record_table("backend_scaling", "\n".join(lines))

    # Correctness is asserted unconditionally.
    assert thread_answers == reference
    if process_ok:
        assert process_identical, "process backend answers diverged from serial"

    # Wall-clock is gated only where parallelism is physically possible.
    if STRICT and process_ok and cpus >= 4:
        assert process_speedup >= REQUIRED_SPEEDUP, (
            f"process backend speedup {process_speedup:.2f}x < "
            f"{REQUIRED_SPEEDUP}x on {cpus} CPUs"
        )
