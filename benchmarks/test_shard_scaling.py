"""Shard scaling: answer equality and wall-clock across shard counts.

Not a paper figure — this benchmark characterizes the ``repro.cluster``
distribution layer behind the query service:

* **shards=1** is the degenerate sharded deployment: one shard worker
  holds the whole §5.1 layout and the router's exchange step is a
  no-op in space (but still exercised in code);
* **shards=4** hash-partitions the layout across four shard workers.
  Node placement is unchanged, so answers are identical by
  construction — asserted here for **all 14 LUBM queries**, submitted
  through the service's ``submit_batch`` on both the serial and (where
  available) the process backend;
* with ``backend="process"`` every shard owns a process pool of its
  own and the router dispatches shard batches concurrently, so a
  CPU-bound mix scales with shards × per-shard workers.

On a multi-core machine the sharded process deployment must clear a
>= 1.3x speedup over the single-shard serial reference; on starved
machines (< 4 CPUs) the run degrades to a smoke test that still asserts
answer equality and records the observed table.  Set
SHARD_BENCH_STRICT=0 to skip the wall-clock gate on noisy runners.

Results land in ``benchmarks/results/shard_scaling.txt``.
"""

from __future__ import annotations

import os
import time

from repro.service import QueryService, ServiceConfig
from repro.workloads import lubm, lubm_queries

UNIVERSITIES = 12
NUM_NODES = 7
#: non-selective queries that make the timed mix CPU-bound
MIX = ("Q1", "Q3", "Q5", "Q7")
ROUNDS = 3
REQUIRED_SPEEDUP = 1.3

STRICT = os.environ.get("SHARD_BENCH_STRICT", "1") != "0"


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _process_pools_work() -> bool:
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(abs, -1).result(timeout=60) == 1
    except Exception:
        return False


def test_shard_scaling(record_table):
    graph = lubm.generate(lubm.LUBMConfig(universities=UNIVERSITIES))
    all_queries = lubm_queries.all_queries()
    mix = [lubm_queries.query(name) for name in MIX]
    process_ok = _process_pools_work()

    configs: list[tuple[str, ServiceConfig]] = [
        ("shards=1 serial", ServiceConfig(shards=1, result_cache_size=0)),
        ("shards=4 serial", ServiceConfig(shards=4, result_cache_size=0)),
    ]
    if process_ok:
        configs += [
            (
                "shards=1 process",
                ServiceConfig(
                    shards=1, backend="process", result_cache_size=0
                ),
            ),
            (
                "shards=4 process",
                ServiceConfig(
                    shards=4, backend="process", result_cache_size=0
                ),
            ),
        ]

    def measure(service: QueryService) -> tuple[float, list[frozenset]]:
        # Warm-up: optimizes the mix, starts pools, fills plan caches.
        for query in mix:
            service.submit(query)
        best = float("inf")
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            for query in mix:
                service.submit(query)
            best = min(best, time.perf_counter() - t0)
        # All 14 LUBM answers, via submit_batch (the result cache is
        # disabled, so every member truly executes).
        outcomes = service.submit_batch(all_queries)
        return best, [frozenset(o.rows) for o in outcomes]

    reference: list[frozenset] | None = None
    baseline_time: float | None = None
    rows = []
    identical_everywhere = True
    for label, config in configs:
        service = QueryService(graph, config)
        try:
            seconds, answers = measure(service)
        finally:
            service.close()
        if reference is None:
            reference, baseline_time = answers, seconds
        identical = answers == reference
        identical_everywhere = identical_everywhere and identical
        rows.append(
            (
                label,
                seconds,
                baseline_time / seconds,
                "yes" if identical else "NO",
            )
        )

    cpus = _cpus()
    lines = [
        "shard_scaling: wall-clock per pass over a CPU-bound LUBM mix",
        f"(LUBM universities={UNIVERSITIES}, |G|={len(graph)}, "
        f"{NUM_NODES} simulated nodes, mix={'+'.join(MIX)}, "
        f"best of {ROUNDS} rounds, {cpus} CPU(s) available; "
        f"equality checked on all 14 LUBM queries via submit_batch)",
        "",
        f"{'configuration':<18} {'s/pass':>10} {'speedup':>9} {'answers==ref':>13}",
    ]
    for label, seconds, speedup, identical in rows:
        lines.append(
            f"{label:<18} {seconds:>10.4f} {speedup:>8.2f}x {identical:>13}"
        )
    if not process_ok:
        lines.append("")
        lines.append("process backend: UNAVAILABLE on this machine (skipped)")
    if cpus < 4:
        lines.append("")
        lines.append(
            f"note: {cpus} CPU(s) available — the >= {REQUIRED_SPEEDUP}x "
            "gate applies on >= 4 CPUs (see CI shard-smoke)"
        )
    record_table("shard_scaling", "\n".join(lines))

    # Correctness is asserted unconditionally: every configuration must
    # answer all 14 LUBM queries identically to shards=1 serial.
    assert identical_everywhere, "sharded answers diverged (see table)"

    # Wall-clock is gated only where parallelism is physically possible.
    if STRICT and process_ok and cpus >= 4:
        sharded_process = dict(
            (label, speedup) for label, _, speedup, _ in rows
        )["shards=4 process"]
        assert sharded_process >= REQUIRED_SPEEDUP, (
            f"shards=4 process speedup {sharded_process:.2f}x < "
            f"{REQUIRED_SPEEDUP}x on {cpus} CPUs"
        )
