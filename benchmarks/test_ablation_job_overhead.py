"""Ablation — MapReduce job-initialization overhead vs plan flatness.

The paper's whole argument for flat plans is that successive joins turn
into successive MapReduce jobs, whose latency adds up into the response
time.  This ablation sweeps the per-job overhead and shows the flat
(MSC) plan's advantage over the deep (best linear) plan growing with it
— at zero overhead the plans differ only by their work; at Hadoop-like
overheads the job count dominates.
"""

from repro.bench.harness import format_table, lubm_csq, lubm_graph
from repro.cost.params import CostParams
from repro.mapreduce.engine import ClusterConfig
from repro.core.binary import best_linear_plan
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.workloads.lubm_queries import query

from benchmarks.conftest import once

OVERHEADS = (0.0, 200.0, 800.0, 3200.0)
QUERY = "Q12"  # 9 patterns: 1 job flat vs 7 jobs linear in the paper


def run_sweep():
    csq = lubm_csq()
    graph = lubm_graph()
    q = query(QUERY)
    msc_plan, _ = csq.optimize(q)
    linear_plan, _ = best_linear_plan(q, csq.coster.cost)
    store = partition_graph(graph, 7)
    rows = []
    for overhead in OVERHEADS:
        executor = PlanExecutor(
            store, ClusterConfig(num_nodes=7), CostParams(job_overhead=overhead)
        )
        flat = executor.execute(msc_plan)
        deep = executor.execute(linear_plan)
        assert flat.rows == deep.rows
        rows.append(
            {
                "overhead": overhead,
                "flat_jobs": flat.num_jobs,
                "deep_jobs": deep.num_jobs,
                "flat_time": flat.response_time,
                "deep_time": deep.response_time,
            }
        )
    return rows


def test_ablation_job_overhead(benchmark, record_table):
    rows = once(benchmark, run_sweep)
    record_table(
        "ablation_job_overhead",
        format_table(
            ["job overhead", "flat jobs", "deep jobs", "flat time", "deep time", "deep/flat"],
            [
                [
                    f"{r['overhead']:.0f}",
                    r["flat_jobs"],
                    r["deep_jobs"],
                    f"{r['flat_time']:,.0f}",
                    f"{r['deep_time']:,.0f}",
                    f"{r['deep_time'] / r['flat_time']:.2f}x",
                ]
                for r in rows
            ],
            title=f"Ablation — job overhead sweep on {QUERY} (flat MSC vs best linear)",
        ),
    )
    # The flat plan runs fewer jobs...
    assert all(r["flat_jobs"] < r["deep_jobs"] for r in rows)
    # ... so its advantage grows monotonically with the job overhead.
    ratios = [r["deep_time"] / r["flat_time"] for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > ratios[0]
