"""Service throughput: warm vs cold latency, batch vs serial submission.

Not a paper figure — this benchmark characterizes the serving layer
(``repro.service``) added on top of the reproduction:

* **warm vs cold**: the first submission of each LUBM query pays the
  full CliqueSquare optimization (clique decomposition + cost model over
  up to 20k plans); repeats hit the plan cache and only execute.  The
  optimizer's work depends on query *structure* only, so the smaller the
  store, the more serving latency is dominated by planning — we measure
  at LUBM scale ``universities=4`` where the warm path must be ≥ 5×
  faster across the mix.  The result cache is disabled here so the warm
  figures isolate the plan cache (a result hit would skip execution too
  and trivially win).
* **batch vs serial**: a repeated workload mix submitted as one batch
  coalesces duplicate shapes into a single flight (each distinct query
  optimizes and executes once, answers fan out), so the batch finishes
  in strictly less wall-clock than the same mix submitted serially under
  the same configuration.

Results land in ``benchmarks/results/service_throughput.txt``.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from repro.service.service import QueryService, ServiceConfig
from repro.workloads import lubm, lubm_queries

ALL_NAMES = [f"Q{i}" for i in range(1, 15)]
WARM_ROUNDS = 3
MIX_REPEATS = 6
#: Wall-clock thresholds hold comfortably on a quiet machine but can
#: flake on noisy shared CI runners; SERVICE_BENCH_STRICT=0 keeps the
#: runs + recorded tables as a smoke test without gating on timings.
STRICT = os.environ.get("SERVICE_BENCH_STRICT", "1") != "0"


@pytest.fixture(scope="module")
def graph():
    return lubm.generate(lubm.LUBMConfig(universities=4))


def _no_result_cache() -> ServiceConfig:
    return ServiceConfig(result_cache_size=0)


def test_warm_plan_cache_speedup(graph, record_table):
    """Plan-cache hits cut the repeated-mix latency by >= 5x."""
    with QueryService(graph, _no_result_cache()) as service:
        cold: dict[str, float] = {}
        warm: dict[str, float] = {}
        answers: dict[str, int] = {}
        for name in ALL_NAMES:
            query = lubm_queries.query(name)
            outcome = service.submit(query)
            assert not outcome.plan_cache_hit
            cold[name] = outcome.timings.total_s
            answers[name] = outcome.cardinality
            repeats = []
            for _ in range(WARM_ROUNDS):
                again = service.submit(query)
                assert again.plan_cache_hit and not again.result_cache_hit
                assert again.cardinality == answers[name]
                repeats.append(again.timings.total_s)
            warm[name] = statistics.median(repeats)

        total_cold = sum(cold.values())
        total_warm = sum(warm.values())
        speedup = total_cold / total_warm

        lines = [
            "service_throughput: warm (plan-cache hit) vs cold submission",
            f"(LUBM universities=4, |G|={len(graph)}, result cache off, "
            f"median of {WARM_ROUNDS} warm rounds)",
            "",
            f"{'query':>6} {'cold_ms':>10} {'warm_ms':>10} {'speedup':>9} {'|Q|':>7}",
        ]
        for name in ALL_NAMES:
            lines.append(
                f"{name:>6} {1e3 * cold[name]:>10.2f} {1e3 * warm[name]:>10.2f} "
                f"{cold[name] / warm[name]:>8.1f}x {answers[name]:>7}"
            )
        lines.append(
            f"{'TOTAL':>6} {1e3 * total_cold:>10.2f} {1e3 * total_warm:>10.2f} "
            f"{speedup:>8.1f}x"
        )
        snap = service.snapshot_stats()
        lines += ["", snap.format()]
        record_table("service_throughput", "\n".join(lines))

        assert snap.plan_misses == len(ALL_NAMES)
        assert snap.plan_hits == WARM_ROUNDS * len(ALL_NAMES)
        if STRICT:
            assert speedup >= 5.0, (
                f"warm mix should be >=5x faster than cold, got {speedup:.1f}x"
            )


def test_batch_beats_serial_submission(graph, record_table):
    """One batch of a repeated mix beats serial submission wall-clock."""
    mix = [lubm_queries.query(n) for n in ALL_NAMES] * MIX_REPEATS

    with QueryService(graph, _no_result_cache()) as serial_service:
        t0 = time.perf_counter()
        serial = [serial_service.submit(q) for q in mix]
        serial_s = time.perf_counter() - t0

    with QueryService(graph, _no_result_cache()) as batch_service:
        t0 = time.perf_counter()
        batched = batch_service.submit_batch(mix)
        batch_s = time.perf_counter() - t0

    # Identical answers, in submission order.
    assert [o.rows for o in batched] == [o.rows for o in serial]
    coalesced = sum(o.coalesced for o in batched)
    assert coalesced == len(mix) - len(ALL_NAMES)

    qps_serial = len(mix) / serial_s
    qps_batch = len(mix) / batch_s
    table = "\n".join(
        [
            "service_throughput: batch vs serial submission of a repeated mix",
            f"(14 LUBM queries x{MIX_REPEATS} = {len(mix)} submissions, "
            "result cache off in both services)",
            "",
            f"serial: {serial_s:8.3f}s  ({qps_serial:6.1f} q/s)",
            f"batch:  {batch_s:8.3f}s  ({qps_batch:6.1f} q/s, "
            f"{coalesced} duplicates coalesced)",
            f"batch speedup: {serial_s / batch_s:.2f}x",
        ]
    )
    record_table("service_batch_vs_serial", table)

    if STRICT:
        assert batch_s < serial_s, (
            f"batch ({batch_s:.3f}s) should beat serial ({serial_s:.3f}s)"
        )


def test_result_cache_serves_repeats_instantly(graph, record_table):
    """With the result cache on, steady-state repeats skip execution too."""
    with QueryService(graph) as service:
        for name in ALL_NAMES:
            service.submit(lubm_queries.query(name))
        t0 = time.perf_counter()
        rounds = 5
        for _ in range(rounds):
            for name in ALL_NAMES:
                outcome = service.submit(lubm_queries.query(name))
                assert outcome.result_cache_hit
        steady_s = time.perf_counter() - t0
        qps = rounds * len(ALL_NAMES) / steady_s
        snap = service.snapshot_stats()
        table = "\n".join(
            [
                "service_throughput: steady-state result-cache throughput",
                "",
                f"{rounds * len(ALL_NAMES)} repeat submissions in "
                f"{steady_s:.3f}s = {qps:.0f} q/s",
                f"result-cache hit rate: {100 * snap.result_hit_rate:.1f}%",
            ]
        )
        record_table("service_result_cache", table)
        if STRICT:
            assert qps > 100, (
                f"result-cache throughput suspiciously low: {qps:.0f} q/s"
            )
