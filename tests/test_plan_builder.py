"""Unit tests for CREATEQUERYPLANS (§4.2)."""

import pytest

from repro.core.logical import Join, Match, Project
from repro.core.plan_builder import create_query_plan
from repro.core.properties import height
from repro.core.variable_graph import VariableGraph
from repro.sparql.parser import parse_query


def chain3():
    return parse_query("SELECT ?x WHERE { ?t p1 ?x . ?x p2 ?y . ?y p3 ?u }")


class TestCreateQueryPlan:
    def test_single_pattern_plan(self):
        q = parse_query("SELECT ?x WHERE { ?x p ?y }")
        g = VariableGraph.from_query(q)
        plan = create_query_plan(q, [g])
        assert isinstance(plan.root, Project)
        assert isinstance(plan.root.child, Match)
        assert height(plan) == 0

    def test_two_step_reduction(self):
        q = chain3()
        g0 = VariableGraph.from_query(q)
        g1 = g0.reduce([frozenset({0, 1}), frozenset({2})])
        g2 = g1.reduce([frozenset({0, 1})])
        plan = create_query_plan(q, [g0, g1, g2])
        assert height(plan) == 2
        top = plan.body
        assert isinstance(top, Join)
        # one child is the lower join, the other the carried match
        kinds = {type(c) for c in top.inputs}
        assert kinds == {Join, Match}

    def test_singleton_cliques_reuse_operators(self):
        q = chain3()
        g0 = VariableGraph.from_query(q)
        g1 = g0.reduce([frozenset({0, 1}), frozenset({2})])
        g2 = g1.reduce([frozenset({0, 1})])
        plan = create_query_plan(q, [g0, g1, g2])
        matches = [op for op in plan.root.iter_operators() if isinstance(op, Match)]
        assert len(matches) == 3  # one per pattern, no duplication

    def test_one_shot_star_reduction(self):
        q = parse_query("SELECT ?c WHERE { ?c p1 ?x . ?c p2 ?y . ?c p3 ?z }")
        g0 = VariableGraph.from_query(q)
        g1 = g0.reduce([frozenset({0, 1, 2})])
        plan = create_query_plan(q, [g0, g1])
        assert height(plan) == 1
        body = plan.body
        assert isinstance(body, Join)
        assert len(body.inputs) == 3
        assert body.on == ("?c",)

    def test_join_attrs_are_clique_variables(self, paper_q1):
        """Fig. 4: the first-level join of {t3,t4,t5,t6} is J_d."""
        g0 = VariableGraph.from_query(paper_q1)
        d = [
            frozenset({0, 1}),
            frozenset({2, 3, 4, 5}),
            frozenset({6, 7, 8}),
            frozenset({9, 10}),
        ]
        g1 = g0.reduce(d)
        g2 = g1.reduce([frozenset({0, 1}), frozenset({2, 3})])
        g3 = g2.reduce([frozenset({0, 1})])
        plan = create_query_plan(paper_q1, [g0, g1, g2, g3])
        assert height(plan) == 3
        joins = [op for op in plan.root.iter_operators() if isinstance(op, Join)]
        join_keys = {j.on for j in joins}
        assert ("?d",) in join_keys  # J_d over t3..t6
        assert ("?a",) in join_keys  # J_a over t1, t2

    def test_requires_initial_graph_with_single_patterns(self):
        q = chain3()
        g0 = VariableGraph.from_query(q)
        g1 = g0.reduce([frozenset({0, 1}), frozenset({2})])
        with pytest.raises(ValueError):
            create_query_plan(q, [g1])  # g1 has a 2-pattern node

    def test_requires_final_single_node(self):
        q = chain3()
        g0 = VariableGraph.from_query(q)
        g1 = g0.reduce([frozenset({0, 1}), frozenset({2})])
        with pytest.raises(ValueError):
            create_query_plan(q, [g0, g1])

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            create_query_plan(chain3(), [])
