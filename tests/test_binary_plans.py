"""Tests for binary plan spaces and DP best plans (repro.core.binary)."""

import random

import pytest

from repro.core.binary import (
    best_bushy_plan,
    best_linear_plan,
    connected_subsets,
    count_bushy_plans,
    iter_bushy_plans,
    iter_linear_plans,
)
from repro.core.logical import Join
from repro.core.properties import height, is_binary
from repro.sparql.parser import parse_query
from repro.workloads.synthetic import chain_query, star_query
from tests.conftest import random_connected_query


def trivial_coster(op) -> float:
    """A structure-only cost: count operators (ties broken arbitrarily)."""
    return float(len(list(op.iter_operators())))


class TestEnumeration:
    def test_chain3_bushy_count(self):
        # chain t1-t2-t3: trees = (t1 t2) t3, t1 (t2 t3) -> 2
        assert count_bushy_plans(chain_query(3)) == 2

    def test_star_count_is_catalan_times_orders(self):
        # star(3): any pairing works: 3 (which pair joins first)
        assert count_bushy_plans(star_query(3)) == 3

    def test_enumerated_count_matches_counter(self):
        for q in (chain_query(4), star_query(4)):
            assert len(set(iter_bushy_plans(q))) == count_bushy_plans(q)

    def test_all_bushy_plans_are_binary_and_complete(self):
        q = chain_query(4)
        for plan in iter_bushy_plans(q):
            assert is_binary(plan)
            assert plan.body.patterns() == frozenset(q.patterns)

    def test_linear_plans_are_left_deep(self):
        q = chain_query(4)
        for plan in iter_linear_plans(q):
            op = plan.body
            while isinstance(op, Join):
                # right child of a left-deep join is always a leaf
                assert not isinstance(op.inputs[-1], Join) or not isinstance(
                    op.inputs[0], Join
                )
                op = next(c for c in op.inputs if isinstance(c, Join)) if any(
                    isinstance(c, Join) for c in op.inputs
                ) else None
                if op is None:
                    break

    def test_linear_chain_count(self):
        # chain of 4: orders keeping prefixes connected
        plans = set(iter_linear_plans(chain_query(4)))
        assert len(plans) >= 4
        for p in plans:
            assert height(p) == 3

    def test_max_plans_cap(self):
        q = star_query(5)
        assert len(list(iter_bushy_plans(q, max_plans=3))) == 3

    def test_connected_subsets_chain(self):
        q = chain_query(3)
        # connected subsets of a 3-chain: 3 singles + 2 pairs + 1 triple
        assert len(connected_subsets(q)) == 6


class TestBestPlans:
    def test_dp_matches_exhaustive_bushy(self, university_coster):
        rng = random.Random(3)
        for n in (2, 3, 4, 5):
            q = random_connected_query(rng, n)
            _, dp_cost = best_bushy_plan(q, university_coster.cost)
            exhaustive = min(
                university_coster.cost(p.body) for p in iter_bushy_plans(q)
            )
            assert dp_cost == pytest.approx(exhaustive)

    def test_dp_matches_exhaustive_linear(self, university_coster):
        rng = random.Random(4)
        for n in (2, 3, 4, 5):
            q = random_connected_query(rng, n)
            _, dp_cost = best_linear_plan(q, university_coster.cost)
            exhaustive = min(
                university_coster.cost(p.body) for p in iter_linear_plans(q)
            )
            assert dp_cost == pytest.approx(exhaustive)

    def test_best_bushy_not_worse_than_best_linear(self, university_coster):
        """Linear plans are a subset of bushy plans."""
        rng = random.Random(5)
        for n in (3, 4, 5, 6):
            q = random_connected_query(rng, n)
            _, bushy_cost = best_bushy_plan(q, university_coster.cost)
            _, linear_cost = best_linear_plan(q, university_coster.cost)
            assert bushy_cost <= linear_cost + 1e-9

    def test_linear_plan_height_is_n_minus_1(self):
        q = chain_query(5)
        plan, _ = best_linear_plan(q, trivial_coster)
        assert height(plan) == 4

    def test_bushy_plan_can_be_flatter(self):
        q = chain_query(4)
        plan, _ = best_bushy_plan(q, lambda op: float(
            max((height_of(op)), 0)
        ))
        assert height(plan) == 2

    def test_single_pattern(self):
        q = parse_query("SELECT ?x WHERE { ?x p ?y }")
        plan, _ = best_bushy_plan(q, trivial_coster)
        assert height(plan) == 0

    def test_plans_are_binary(self, university_coster):
        q = star_query(6)
        bushy, _ = best_bushy_plan(q, university_coster.cost)
        linear, _ = best_linear_plan(q, university_coster.cost)
        assert is_binary(bushy) and is_binary(linear)


def height_of(op):
    from repro.core.properties import operator_height

    return operator_height(op)
