"""Elastic shard topology: slot tables, live rebalance, fault injection.

Covers the :mod:`repro.cluster.slots` layer (deterministic assignment,
plan validation, minimal-movement resize plans, skew shedding, snapshot
delta merging — plus hypothesis property tests where hypothesis is
installed), the in-process and RPC rebalance surfaces (grow/shrink/
deskew with answers invariant at every epoch, migration shipping only
the moved slots' data), and the failure paths: a destination worker
that cannot spawn mid-migration rolls the topology back typed, a killed
survivor recovers through the respawn-retry path, duplicate
``TableUpdate``/``PrimeSlots`` deliveries are idempotent, and an
execute frame stamped with a stale epoch is rejected typed worker-side
and transparently re-routed driver-side.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.cluster import ShardedPlanExecutor, shard_graph
from repro.cluster.rpc import (
    ExecuteLevel,
    OkReply,
    Prime,
    PrimeSlots,
    Request,
    RpcShardRouter,
    ShardUnavailable,
    ShardWorkerClient,
    StaleEpoch,
    Stats,
    TableUpdate,
)
from repro.cluster.slots import (
    DEFAULT_SLOTS,
    SlotTable,
    initial_table,
    merge_slots,
    plan_resize,
    plan_skew,
)
from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC
from repro.partitioning.triple_partitioner import partition_graph
from repro.service import QueryService, ServiceConfig
from repro.sparql.parser import parse_query
from tests.conformance import needs_rpc
from tests.conftest import make_university_graph

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment-dependent
    HAVE_HYPOTHESIS = False

NUM_NODES = 8

STAR_QUERY = (
    "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
    "?p rdf:type ub:FullProfessor . ?s rdf:type ub:Student }"
)

CHAIN_QUERY = (
    "SELECT ?p WHERE { ?p ub:worksFor <dept0> . "
    "?p rdf:type ub:FullProfessor }"
)


@pytest.fixture(scope="module")
def university():
    return make_university_graph()


def sharded_service(graph, **overrides) -> QueryService:
    config = ServiceConfig(
        shards=overrides.pop("shards", 4),
        num_nodes=overrides.pop("num_nodes", NUM_NODES),
        slots=overrides.pop("slots", NUM_NODES),
        result_cache_size=0,
        **overrides,
    )
    return QueryService(graph, config)


# -- SlotTable unit tests ------------------------------------------------------


class TestSlotTable:
    def test_initial_table_reproduces_modulus_layout(self):
        for shards in (1, 2, 3, 4):
            table = initial_table(shards, num_nodes=7)
            assert table.version == 0
            assert table.slots == max(DEFAULT_SLOTS, 7)
            for node in range(7):
                assert table.shard_of_node(node) == node % shards

    def test_assignment_is_total_and_partitions_nodes(self):
        table = initial_table(3, num_nodes=10, slots=16)
        owners = [table.shard_of_node(n) for n in range(10)]
        assert all(0 <= s < 3 for s in owners)
        by_shard = [table.nodes_of_shard(s, 10) for s in range(3)]
        assert sorted(n for nodes in by_shard for n in nodes) == list(range(10))

    def test_apply_moves_ownership_and_bumps_version_once(self):
        table = initial_table(2, num_nodes=4, slots=4)
        moved = table.apply([(0, 0, 1)])
        assert moved.version == table.version + 1
        assert moved.shard_of_node(0) == 1
        assert moved.owners[1:] == table.owners[1:]
        # The original is immutable.
        assert table.shard_of_node(0) == 0

    def test_apply_rejects_stale_and_malformed_plans(self):
        table = initial_table(2, num_nodes=4, slots=4)
        with pytest.raises(ValueError, match="stale plan"):
            table.apply([(0, 1, 0)])  # slot 0 is owned by shard 0, not 1
        with pytest.raises(ValueError, match="moved twice"):
            table.apply([(0, 0, 1), (0, 1, 0)])
        with pytest.raises(ValueError, match="outside"):
            table.apply([(99, 0, 1)])
        with pytest.raises(ValueError, match="outside"):
            table.apply([(0, 0, 7)])  # destination shard does not exist

    def test_inverse_restores_ownership(self):
        table = initial_table(3, num_nodes=6, slots=6)
        moves = plan_resize(table, 2)
        shrunk = table.apply(moves, 2)
        restored = shrunk.apply(shrunk.inverse(moves), 3)
        assert restored.owners == table.owners
        assert restored.version == table.version + 2

    def test_plan_resize_is_deterministic_balanced_and_minimal(self):
        table = initial_table(4, num_nodes=7)  # 64-slot ring
        grow = plan_resize(table, 5)
        assert grow == plan_resize(table, 5)
        grown = table.apply(grow, 5)
        counts = grown.counts()
        assert max(counts) - min(counts) <= 1
        # Growing by one moves about slots/new_N slots, never more than
        # the new shard's fair share.
        assert 0 < len(grow) <= math.ceil(table.slots / 5)
        assert all(dst == 4 for _slot, _src, dst in grow)
        shrink = plan_resize(grown, 3)
        shrunk = grown.apply(shrink, 3)
        assert max(shrunk.counts()) - min(shrunk.counts()) <= 1
        # Shrinking moves exactly what the departing shards owned.
        departing = sum(counts[3:])
        assert len(shrink) == departing

    def test_plan_resize_validates_bounds(self):
        table = initial_table(2, num_nodes=4, slots=4)
        with pytest.raises(ValueError, match=">= 1"):
            plan_resize(table, 0)
        with pytest.raises(ValueError, match="at most one shard per slot"):
            plan_resize(table, 5)

    def test_plan_skew_moves_busiest_to_idlest(self):
        table = initial_table(3, num_nodes=6, slots=6)
        moves = plan_skew(table, {0: 100.0, 1: 1.0, 2: 50.0}, max_moves=2)
        assert moves
        assert all(src == 0 and dst == 1 for _slot, src, dst in moves)
        # The busiest shard owns two slots and must keep one.
        assert len(moves) == 1
        rebalanced = table.apply(moves)
        assert rebalanced.counts()[1] == 3

    def test_plan_skew_noop_cases(self):
        table = initial_table(3, num_nodes=6, slots=6)
        assert plan_skew(table, {}) == ()  # no signal, no imbalance
        assert plan_skew(table, {0: 5.0, 1: 5.0, 2: 5.0}) == ()
        assert plan_skew(initial_table(1, 4, slots=4), {0: 9.0}) == ()

    def test_plan_skew_donor_keeps_a_slot(self):
        table = initial_table(2, num_nodes=4, slots=4)
        moves = plan_skew(table, {0: 10.0, 1: 0.0}, max_moves=99)
        assert 0 < len(moves) < len(table.slots_of_shard(0)) + 1
        moved = table.apply(moves)
        assert moved.counts()[0] >= 1

    def test_merge_slots_applies_adds_and_drops(self, university):
        snapshot = partition_graph(university, 4).snapshot()
        adds = {2: dict(snapshot.files[1])}
        merged = merge_slots(snapshot, adds, drops=(0,), token=(99, 1))
        assert merged.token == (99, 1)
        assert merged.files[0] == {}
        assert merged.files[2] == snapshot.files[1]
        assert merged.files[3] == snapshot.files[3]
        # Deterministic: equal inputs produce equal snapshots.
        again = merge_slots(snapshot, adds, drops=(0,), token=(99, 1))
        assert again.files == merged.files


# -- hypothesis property tests (auto-skip without hypothesis) ------------------


if HAVE_HYPOTHESIS:

    @st.composite
    def slot_tables(draw):
        num_shards = draw(st.integers(min_value=1, max_value=8))
        width = draw(st.integers(min_value=num_shards, max_value=48))
        owners = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_shards - 1),
                min_size=width,
                max_size=width,
            )
        )
        version = draw(st.integers(min_value=0, max_value=5))
        return SlotTable(
            num_shards=num_shards, owners=tuple(owners), version=version
        )

    @settings(max_examples=60, deadline=None)
    @given(table=slot_tables(), node=st.integers(min_value=0, max_value=500))
    def test_assignment_deterministic_and_total(table, node):
        shard = table.shard_of_node(node)
        assert 0 <= shard < table.num_shards
        assert table.shard_of_node(node) == shard
        assert table.slot_of_node(node) == node % table.slots

    @settings(max_examples=60, deadline=None)
    @given(
        table=slot_tables(),
        new_shards=st.integers(min_value=1, max_value=8),
    )
    def test_plan_resize_minimal_movement(table, new_shards):
        if new_shards > table.slots:
            with pytest.raises(ValueError):
                plan_resize(table, new_shards)
            return
        moves = plan_resize(table, new_shards)
        resized = table.apply(moves, new_shards)
        counts = resized.counts()
        assert sum(counts) == table.slots
        assert max(counts) - min(counts) <= 1
        # Minimality: every move was forced — a slot on a removed shard,
        # or the excess above a surviving shard's fair-share target.
        base, extra = divmod(table.slots, new_shards)
        target = [base + (1 if s < extra else 0) for s in range(new_shards)]
        old = table.counts()
        forced = sum(old[s] for s in range(new_shards, table.num_shards))
        forced += sum(
            max(0, old[s] - target[s]) for s in range(min(new_shards, table.num_shards))
        )
        assert len(moves) == forced

    @settings(max_examples=60, deadline=None)
    @given(
        num_shards=st.integers(min_value=2, max_value=8),
        width=st.integers(min_value=9, max_value=64),
    )
    def test_single_step_resize_moves_fair_share(num_shards, width):
        """From a balanced table, growing or shrinking by one shard
        moves about ``ceil(slots / N)`` slots — the "-ish" bound."""
        table = initial_table(num_shards, num_nodes=width, slots=width)
        grow = plan_resize(table, num_shards + 1)
        assert len(grow) <= math.ceil(table.slots / (num_shards + 1))
        shrink = plan_resize(table, num_shards - 1)
        assert len(shrink) <= math.ceil(table.slots / num_shards)

    @settings(max_examples=60, deadline=None)
    @given(
        table=slot_tables(),
        targets=st.lists(
            st.integers(min_value=1, max_value=8), min_size=2, max_size=4
        ),
    )
    def test_plans_compose(table, targets):
        """A chain of resize plans applies cleanly step by step (each
        plan is computed against the table the previous one produced),
        and inverting a step undoes exactly that step."""
        current = table
        for target in targets:
            if target > current.slots:
                continue
            moves = plan_resize(current, target)
            stepped = current.apply(moves, target)
            assert stepped.version == current.version + 1
            undone = stepped.apply(stepped.inverse(moves), current.num_shards)
            assert undone.owners == current.owners
            current = stepped


# -- in-process rebalance ------------------------------------------------------


class TestInprocRebalance:
    def test_grow_and_shrink_answers_invariant(self, university):
        service = sharded_service(university)
        try:
            expected = service.submit(STAR_QUERY).rows
            chain = service.submit(CHAIN_QUERY).rows
            report = service.rebalance(target_shards=5)
            assert (report.old_shards, report.new_shards) == (4, 5)
            assert report.new_epoch == report.old_epoch + 1
            assert report.slots_moved > 0
            assert report.moved_nodes
            assert service.submit(STAR_QUERY).rows == expected
            assert service.submit(CHAIN_QUERY).rows == chain
            report = service.rebalance(target_shards=3)
            assert (report.old_shards, report.new_shards) == (5, 3)
            assert service.submit(STAR_QUERY).rows == expected
            assert service.submit(CHAIN_QUERY).rows == chain
            stats = service.snapshot_stats()
            assert stats.rebalances == 2
            assert "rebalances: 2" in stats.format()
        finally:
            service.close()

    def test_explicit_skew_moves(self, university):
        service = sharded_service(university, shards=2)
        try:
            expected = service.submit(STAR_QUERY).rows
            store = service.executor.store
            moves = plan_skew(store.table, {0: 10.0, 1: 0.0})
            assert moves
            report = service.rebalance(moves=moves)
            assert report.moves == moves
            assert report.new_shards == 2
            assert service.submit(STAR_QUERY).rows == expected
        finally:
            service.close()

    def test_suggest_rebalance_falls_back_to_stored_triples(self, university):
        service = sharded_service(university, shards=3)
        try:
            suggestion = service.suggest_rebalance()
            store = service.executor.store
            per_shard = store.triples_per_shard()
            if len(set(per_shard)) == 1:
                assert suggestion == ()
            else:
                assert suggestion
                (slot, src, dst), *_ = suggestion
                assert per_shard[src] == max(per_shard)
                assert per_shard[dst] == min(per_shard)
                expected = service.submit(STAR_QUERY).rows
                service.rebalance(moves=suggestion)
                assert service.submit(STAR_QUERY).rows == expected
        finally:
            service.close()

    def test_noop_rebalance_keeps_epoch(self, university):
        service = sharded_service(university)
        try:
            report = service.rebalance(target_shards=4)
            assert report.slots_moved == 0
            assert report.new_epoch == report.old_epoch
            assert service.snapshot_stats().rebalances == 1
        finally:
            service.close()

    def test_catalog_invariant_across_rebalance(self, university):
        service = sharded_service(university)
        try:
            store = service.executor.store
            before = store.aggregate_statistics()
            service.rebalance(target_shards=6)
            assert store.aggregate_statistics() == before
            service.rebalance(target_shards=2)
            assert store.aggregate_statistics() == before
        finally:
            service.close()

    def test_rebalance_requires_sharded_deployment(self, university):
        service = QueryService(university, ServiceConfig(num_nodes=4))
        try:
            with pytest.raises(ValueError, match="sharded deployment"):
                service.rebalance(target_shards=2)
            with pytest.raises(ValueError, match="sharded deployment"):
                service.suggest_rebalance()
        finally:
            service.close()

    def test_rebalance_needs_a_plan_or_target(self, university):
        service = sharded_service(university)
        try:
            with pytest.raises(ValueError, match="target_shards"):
                service.rebalance()
        finally:
            service.close()

    def test_slots_config_validated(self, university):
        with pytest.raises(ValueError, match="slots"):
            QueryService(university, ServiceConfig(shards=2, slots=0))

    def test_mutation_after_rebalance(self, university):
        service = sharded_service(university, shards=2)
        try:
            before = service.submit(CHAIN_QUERY).rows
            service.rebalance(target_shards=3)
            added = service.add_triples(
                [
                    ("<newprof>", "ub:worksFor", "<dept0>"),
                    ("<newprof>", "rdf:type", "ub:FullProfessor"),
                ]
            )
            assert added == 2
            rows = service.submit(CHAIN_QUERY).rows
            assert rows == before | {("<newprof>",)}
        finally:
            service.close()


# -- rpc rebalance and fault injection -----------------------------------------


@needs_rpc
class TestRpcRebalance:
    def test_migration_ships_only_moved_slots(self, university):
        service = sharded_service(university, shard_transport="rpc")
        try:
            expected = service.submit(STAR_QUERY).rows
            report = service.rebalance(target_shards=5)
            assert report.bytes_shipped is not None
            shipped = sum(report.bytes_shipped)
            assert shipped > 0
            # The elasticity claim: a migration ships the moved slots'
            # slices, not the cluster's data — strictly less than the
            # bytes a naive full re-prime of the new topology would put
            # on the wire.
            snapshot = service.executor.store.snapshot()
            full_reprime = sum(
                len(pickle.dumps(Request(0, Prime(shard_snapshot))))
                for shard_snapshot in snapshot.shards
            )
            assert shipped < full_reprime
            assert service.submit(STAR_QUERY).rows == expected
        finally:
            service.close()

    def test_live_grow_shrink_over_rpc(self, university):
        service = sharded_service(university, shard_transport="rpc")
        try:
            expected = service.submit(STAR_QUERY).rows
            service.rebalance(target_shards=5)
            assert service.submit(STAR_QUERY).rows == expected
            report = service.rebalance(target_shards=3)
            assert report.new_shards == 3
            assert service.submit(STAR_QUERY).rows == expected
            # The fleet really shrank: three live workers, no more.
            router = service.executor.router
            assert router.num_shards == 3
            assert all(
                client is None
                for client in router._clients[3:]
            )
            assert "rebalances: 2" in service.snapshot_stats().format()
        finally:
            service.close()

    def test_destination_spawn_failure_rolls_back(self, university):
        service = sharded_service(university, shard_transport="rpc", shards=2)
        try:
            expected = service.submit(STAR_QUERY).rows
            router = service.executor.router
            store = service.executor.store
            version_before = store.table.version
            original = router._start_worker
            router._start_worker = _spawn_bomb
            try:
                with pytest.raises(ShardUnavailable, match="migration"):
                    service.rebalance(target_shards=3)
            finally:
                router._start_worker = original
            # Clean rollback: the old topology serves, ownership maps
            # restored (the epoch keeps climbing — versions never
            # reuse), and answers are unchanged.
            assert store.num_shards == 2
            assert router.num_shards == 2
            assert store.table.version == version_before + 2
            assert service.submit(STAR_QUERY).rows == expected
            assert service.snapshot_stats().shard_failures >= 1
            # The fleet is not poisoned: a later rebalance succeeds.
            report = service.rebalance(target_shards=3)
            assert report.new_shards == 3
            assert service.submit(STAR_QUERY).rows == expected
        finally:
            service.close()

    def test_killed_survivor_recovers_mid_migration(self, university):
        """A survivor whose worker died before its PrimeSlots delta is
        respawned, re-primed and retried — the migration completes with
        correct answers instead of hanging or corrupting state."""
        service = sharded_service(university, shard_transport="rpc", shards=2)
        try:
            expected = service.submit(STAR_QUERY).rows
            router = service.executor.router
            victim = router._clients[0]
            victim.process.kill()
            victim.process.join(timeout=10)
            report = service.rebalance(target_shards=1)
            assert report.new_shards == 1
            assert service.submit(STAR_QUERY).rows == expected
            assert service.snapshot_stats().shard_failures == 1
        finally:
            service.close()

    def test_duplicate_table_update_is_idempotent(self, university):
        client = ShardWorkerClient(shard=0, num_nodes=NUM_NODES, num_shards=1)
        client.start()
        try:
            snapshot = partition_graph(university, NUM_NODES).snapshot()
            client.request(Prime(snapshot, epoch=1))
            assert client.request(TableUpdate(epoch=3, num_shards=2)) == OkReply(3)
            # Duplicate delivery (crash-retry): acknowledged, no effect.
            assert client.request(TableUpdate(epoch=3, num_shards=2)) == OkReply(3)
            # Stale update: monotonicity wins, the worker stays at 3.
            assert client.request(TableUpdate(epoch=2, num_shards=9)) == OkReply(3)
            # An execute frame stamped with the installed epoch passes
            # the epoch gate: the next failure is the (expected) missing
            # template, not StaleEpoch.
            from repro.cluster.rpc import TemplateNotRegistered

            with pytest.raises(TemplateNotRegistered):
                client.request(
                    ExecuteLevel(key="x", binding=(), level=0, phase="map",
                                 tasks=(), epoch=3)
                )
        finally:
            client.close()

    def test_duplicate_prime_slots_is_idempotent(self, university):
        client = ShardWorkerClient(shard=0, num_nodes=NUM_NODES, num_shards=1)
        client.start()
        try:
            snapshot = partition_graph(university, NUM_NODES).snapshot()
            client.request(Prime(snapshot))
            base = client.request(Stats())
            delta = PrimeSlots(
                adds={}, drops=(0,), token=(snapshot.token[0], 999)
            )
            assert client.request(delta) == OkReply(delta.token)
            after = client.request(Stats())
            assert after.snapshot_token == delta.token
            assert after.primes == base.primes + 1
            # Duplicate delivery: same token, acknowledged without
            # re-merging or re-priming.
            assert client.request(delta) == OkReply(delta.token)
            assert client.request(Stats()).primes == base.primes + 1
        finally:
            client.close()

    def test_prime_slots_without_snapshot_is_typed(self):
        from repro.cluster.rpc import WorkerStateError

        client = ShardWorkerClient(shard=0, num_nodes=NUM_NODES, num_shards=1)
        client.start()
        try:
            with pytest.raises(WorkerStateError, match="no resident snapshot"):
                client.request(
                    PrimeSlots(adds={}, drops=(), token=(1, 1))
                )
        finally:
            client.close()

    def test_stale_epoch_rejected_typed(self, university):
        client = ShardWorkerClient(shard=0, num_nodes=NUM_NODES, num_shards=1)
        client.start()
        try:
            snapshot = partition_graph(university, NUM_NODES).snapshot()
            client.request(Prime(snapshot, epoch=2))
            with pytest.raises(StaleEpoch) as info:
                client.request(
                    ExecuteLevel(
                        key="any", binding=(), level=0, phase="map",
                        tasks=(), epoch=0,
                    )
                )
            assert info.value.shard == 0
            assert info.value.frame_epoch == 0
            assert info.value.worker_epoch == 2
            # The worker survives the rejection and still serves.
            assert client.request(Stats()).snapshot_token == snapshot.token
        finally:
            client.close()

    def test_driver_reroutes_query_across_live_rebalance(self, university):
        """A query routed against epoch v whose levels land after the
        table flipped to v+1 is answered correctly: the worker rejects
        the stale frame typed and the driver re-routes the same tasks
        under the current table (pickle wire: a codec reseed must not
        straddle an in-flight columnar frame, so that path quiesces at
        the service layer instead)."""
        store = shard_graph(university, NUM_NODES, 2, slots=NUM_NODES)
        executor = ShardedPlanExecutor(
            store, transport="rpc", wire_format="pickle"
        )
        try:
            plan = cliquesquare(parse_query(STAR_QUERY), MSC).plans[0]
            prepared = executor.prepare(plan)
            executor.prime()
            expected = executor.execute_prepared(prepared).rows
            router = executor.router
            assert isinstance(router, RpcShardRouter)
            original = router._level_call
            fired = []

            def tripping(shard, msg, exec_ctx):
                if not fired:
                    fired.append(True)
                    executor.rebalance(target_shards=3)
                return original(shard, msg, exec_ctx)

            router._level_call = tripping
            try:
                result = executor.execute_prepared(prepared)
            finally:
                router._level_call = original
            assert fired, "the mid-query rebalance never triggered"
            assert result.rows == expected
            assert store.num_shards == 3
            # Settled topology: the next query runs at the new epoch
            # without any re-routing.
            assert executor.execute_prepared(prepared).rows == expected
        finally:
            executor.close()


def _spawn_bomb(shard):
    raise OSError("no processes left")
