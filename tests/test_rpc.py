"""RPC shard workers (repro.cluster.rpc).

Covers: protocol frame round-trips and typed error paths (oversized
frames, unknown messages, unregistered templates, missing snapshots),
worker lifecycle idempotency (Stats/Shutdown), fault injection (a
killed worker respawns transparently exactly once; sustained failure
raises typed ShardUnavailable and counts in snapshot_stats), mutation
over the RPC transport (only touched shards re-primed, token change
observed worker-side, delta catalog == recompute), and the transport
surface (config validation, explain, per-shard bytes-shipped).
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.cluster import ShardedPlanExecutor, shard_graph
from repro.cluster.rpc import (
    BatchReply,
    BoundSpecs,
    ErrorReply,
    ExecuteBatch,
    ExecuteLevel,
    FrameTooLarge,
    Hello,
    HelloReply,
    InvalidateSnapshot,
    OkReply,
    Prime,
    RegisterTemplate,
    Reply,
    Request,
    ResultsReply,
    RpcError,
    RpcProtocolError,
    RpcShardRouter,
    ShardUnavailable,
    ShardWorkerClient,
    Shutdown,
    Stats,
    StatsReply,
    TemplateNotRegistered,
    WorkerStateError,
    plan_key,
)
from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC
from repro.cost.cardinality import CatalogStatistics
from repro.mapreduce.hdfs import DistributedRelation
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.service import QueryService, ServiceConfig
from repro.sparql.parser import parse_query
from tests.conformance import needs_rpc
from tests.conftest import make_university_graph

NUM_NODES = 7

STAR_QUERY = (
    "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
    "?p rdf:type ub:FullProfessor . ?s rdf:type ub:Student }"
)

TEMPLATE_A = (
    "SELECT ?p WHERE { ?p ub:worksFor <dept0> . "
    "?p rdf:type ub:FullProfessor }"
)
TEMPLATE_B = (
    "SELECT ?p WHERE { ?p ub:worksFor <dept1> . "
    "?p rdf:type ub:FullProfessor }"
)


@pytest.fixture(scope="module")
def university():
    return make_university_graph()


@pytest.fixture(scope="module")
def prepared_star(university):
    store = partition_graph(university, NUM_NODES)
    executor = PlanExecutor(store)
    query = parse_query(STAR_QUERY)
    plan = cliquesquare(query, MSC).plans[0]
    return executor.prepare(plan)


def rpc_service(graph, **overrides) -> QueryService:
    config = ServiceConfig(
        shards=overrides.pop("shards", 2),
        shard_transport="rpc",
        result_cache_size=0,
        **overrides,
    )
    return QueryService(graph, config)


class _JunkMessage:
    """A picklable object no worker dispatch clause recognizes."""

    def __eq__(self, other):
        return isinstance(other, _JunkMessage)


# -- protocol frames -----------------------------------------------------------


class TestProtocolFrames:
    def sample_frames(self, university, prepared_star):
        snapshot = partition_graph(university, NUM_NODES).snapshot()
        relation = DistributedRelation(
            attrs=("?a",), partitions=[[("x",)], [], [("y",)]]
        )
        return [
            Hello(),
            HelloReply(
                shard=1, num_nodes=7, num_shards=2, pid=123,
                snapshot_token=snapshot.token,
            ),
            Prime(snapshot=snapshot),
            InvalidateSnapshot(),
            RegisterTemplate(key="k1", physical=prepared_star.physical),
            BoundSpecs(key="k1", binding=(("$uni", "<univ0>"),)),
            ExecuteLevel(
                key="k1",
                binding=(),
                level=0,
                phase="map",
                tasks=(("job-rj1", 0, 3), ("job-rj1", 1, 3)),
                inputs={"rj0": relation},
            ),
            ExecuteLevel(
                key="k1",
                binding=(),
                level=1,
                phase="reduce",
                tasks=(("job-rj1", 4, {0: [("x",)], 1: [("y",)]}),),
            ),
            Stats(),
            StatsReply(
                shard=0, pid=9, snapshot_token=None, templates=2,
                bound_instances=3, tasks_run=17, levels_run=4, primes=1,
                bytes_received=1024, backend="serial", warnings=("w",),
                pipeline=4, inflight=2, queue_depth=1, peak_inflight=3,
                batches=5, deduped=1,
            ),
            Shutdown(),
            OkReply(value=("k1", ())),
            ResultsReply(results=[([], [("r",)], None)]),
            ExecuteBatch(
                items=(
                    (11, ExecuteLevel(
                        key="k1", binding=(), level=0, phase="reduce",
                        tasks=(),
                    )),
                )
            ),
            BatchReply(
                replies=(
                    (11, ResultsReply(results=[([], [("r",)], None)])),
                    (12, ResultsReply(results=[])),
                )
            ),
            Request(id=7, msg=Hello()),
            Reply(id=7, payload=OkReply(value="bye")),
        ]

    def test_every_frame_pickles_to_equality(self, university, prepared_star):
        frames = self.sample_frames(university, prepared_star)
        for frame in frames:
            clone = pickle.loads(pickle.dumps(frame))
            assert type(clone) is type(frame)
            if isinstance(frame, (Prime, RegisterTemplate)):
                # Snapshots/plans compare field-wise through their own
                # dataclass equality; spot-check the heavy payloads.
                assert pickle.dumps(clone) == pickle.dumps(frame)
            else:
                assert clone == frame, type(frame).__name__

    def test_error_reply_round_trips_typed(self):
        reply = ErrorReply(
            error=TemplateNotRegistered("shard 0 holds no template 'k'"),
            kind="TemplateNotRegistered",
        )
        clone = pickle.loads(pickle.dumps(reply))
        assert isinstance(clone.error, TemplateNotRegistered)
        assert clone.kind == "TemplateNotRegistered"
        assert str(clone.error) == str(reply.error)

    def test_plan_key_is_deterministic_per_plan(self, prepared_star):
        assert plan_key(prepared_star.physical) == plan_key(
            prepared_star.physical
        )
        clone = pickle.loads(pickle.dumps(prepared_star.physical))
        assert plan_key(clone) == plan_key(prepared_star.physical)

    def test_shard_unavailable_survives_pickling(self):
        error = ShardUnavailable(3, "boom")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, ShardUnavailable)
        assert clone.shard == 3
        assert str(clone) == str(error)


class TestWorkerState:
    """In-process checks of the shard server's resident state."""

    def test_bound_plan_cache_is_lru_bounded(self, prepared_star, monkeypatch):
        from repro.cluster import rpc as rpc_mod

        monkeypatch.setattr(rpc_mod, "MAX_BOUND_PLANS", 2)
        state = rpc_mod._WorkerState(0, NUM_NODES, 1, "serial", None)
        try:
            state.register("k", prepared_star.physical)
            bind = lambda i: ((f"<nope{i}>", f"<x{i}>"),)
            b0 = state.bound_for("k", bind(0))
            state.bound_for("k", bind(1))
            # Touching b0 makes binding 1 the eviction candidate.
            assert state.bound_for("k", bind(0)) is b0
            state.bound_for("k", bind(2))
            assert len(state.bound) == 2
            assert ("k", bind(1)) not in state.bound
            assert ("k", bind(0)) in state.bound
            # An evicted binding rebinds on demand from the template.
            assert state.bound_for("k", bind(1)).compiled.num_jobs >= 1
        finally:
            state.close()

    def test_bare_execute_raises_typed_error(self, university, prepared_star):
        router = RpcShardRouter(num_nodes=NUM_NODES, num_shards=2)
        try:
            snapshot = shard_graph(university, NUM_NODES, 2).snapshot()
            with pytest.raises(RpcError, match="execute_prepared"):
                router.execute(prepared_star.compiled, snapshot)
        finally:
            router.close()


# -- worker lifecycle ----------------------------------------------------------


@needs_rpc
class TestWorkerLifecycle:
    @pytest.fixture()
    def client(self, university):
        client = ShardWorkerClient(shard=0, num_nodes=NUM_NODES, num_shards=1)
        hello = client.start()
        assert isinstance(hello, HelloReply)
        yield client
        client.close()

    def test_hello_reports_topology(self, client):
        hello = client.request(Hello())
        assert hello.shard == 0
        assert hello.num_nodes == NUM_NODES
        assert hello.num_shards == 1
        assert hello.snapshot_token is None
        assert hello.pid != 0

    def test_stats_is_idempotent(self, client, university, prepared_star):
        client.request(RegisterTemplate("k", prepared_star.physical))
        client.request(BoundSpecs("k", ()))
        first = client.request(Stats())
        second = client.request(Stats())
        assert isinstance(first, StatsReply)
        assert (first.templates, first.bound_instances, first.tasks_run,
                first.primes, first.snapshot_token) == (
            second.templates, second.bound_instances, second.tasks_run,
            second.primes, second.snapshot_token,
        )
        assert first.templates == 1
        assert first.bound_instances == 1

    def test_shutdown_and_close_are_idempotent(self, university):
        client = ShardWorkerClient(shard=0, num_nodes=3, num_shards=1)
        client.start()
        process = client.process
        client.close()
        assert not process.is_alive()
        client.close()  # second close is a no-op
        with pytest.raises(ConnectionError):
            client.request(Stats())

    def test_unknown_message_type_is_typed(self, client):
        with pytest.raises(RpcProtocolError, match="unknown message type"):
            client.request(_JunkMessage())
        # The worker survives a protocol error and keeps serving.
        assert isinstance(client.request(Stats()), StatsReply)

    def test_oversized_request_rejected_driver_side(self, university):
        client = ShardWorkerClient(
            shard=0, num_nodes=NUM_NODES, num_shards=1, max_frame_bytes=2048
        )
        client.start()
        try:
            snapshot = partition_graph(university, NUM_NODES).snapshot()
            with pytest.raises(FrameTooLarge, match="exceeds"):
                client.request(Prime(snapshot))
            # Nothing was sent; the worker still serves.
            assert isinstance(client.request(Stats()), StatsReply)
        finally:
            client.close()

    def test_oversized_frame_rejected_worker_side(self, university):
        """A frame that slips past the driver cap still fails typed at
        the worker's recv (which then stops serving that connection):
        the worker broadcasts the error on request id -1, failing every
        in-flight waiter on the connection."""
        client = ShardWorkerClient(
            shard=0, num_nodes=NUM_NODES, num_shards=1, max_frame_bytes=4096
        )
        client.start()
        try:
            client.max_frame_bytes = 1 << 30  # disarm the driver-side cap
            snapshot = partition_graph(university, NUM_NODES).snapshot()
            assert len(pickle.dumps(Prime(snapshot))) > 4096
            with pytest.raises(FrameTooLarge, match="exceeded"):
                client.request(Prime(snapshot))
        finally:
            client.close(kill=True)

    def test_unregistered_template_is_typed(self, client):
        with pytest.raises(TemplateNotRegistered):
            client.request(BoundSpecs("no-such-key", ()))
        with pytest.raises(TemplateNotRegistered):
            client.request(
                ExecuteLevel(
                    key="no-such-key", binding=(), level=0, phase="map",
                    tasks=(),
                )
            )

    def test_bad_phase_is_typed(self, client, prepared_star):
        client.request(RegisterTemplate("k", prepared_star.physical))
        with pytest.raises(RpcProtocolError, match="phase"):
            client.request(
                ExecuteLevel(
                    key="k", binding=(), level=0, phase="sideways", tasks=()
                )
            )

    def test_map_without_snapshot_is_typed(self, client, prepared_star):
        client.request(RegisterTemplate("k", prepared_star.physical))
        with pytest.raises(WorkerStateError, match="no snapshot"):
            client.request(
                ExecuteLevel(
                    key="k", binding=(), level=0, phase="map",
                    tasks=(("job-rj1", 0, 0),),
                )
            )

    def test_invalidate_snapshot_is_idempotent(self, client, university):
        snapshot = partition_graph(university, NUM_NODES).snapshot()
        assert client.request(Prime(snapshot)) == OkReply(snapshot.token)
        assert client.request(Stats()).snapshot_token == snapshot.token
        client.request(InvalidateSnapshot())
        client.request(InvalidateSnapshot())
        assert client.request(Stats()).snapshot_token is None

    def test_duplicate_request_id_is_idempotent(self, client, prepared_star):
        """A retried execute frame (same request id) is answered from
        the worker's dedup cache, never run twice — what makes the
        respawn-retry path safe for levels with side effects."""
        client.request(RegisterTemplate("k", prepared_star.physical))
        base = client.request(Stats())
        frame = pickle.dumps(Request(777, ExecuteLevel(
            key="k", binding=(), level=0, phase="reduce", tasks=()
        )))
        client.conn.send_bytes(frame)  # raw: reply has no waiter, dropped
        stats = self._poll_stats(
            client, lambda s: s.levels_run == base.levels_run + 1
        )
        assert stats.levels_run == base.levels_run + 1
        # The retry: identical request id, answered without re-running.
        client.conn.send_bytes(frame)
        stats = self._poll_stats(client, lambda s: s.deduped >= 1)
        assert stats.deduped == 1
        assert stats.levels_run == base.levels_run + 1

    @staticmethod
    def _poll_stats(client, done, timeout=10.0):
        deadline = time.monotonic() + timeout
        while True:
            stats = client.request(Stats())
            if done(stats) or time.monotonic() >= deadline:
                return stats
            time.sleep(0.01)

    def test_serial_mode_client_still_round_trips(self, prepared_star):
        """pipeline=0 keeps the strict request-response discipline (the
        benchmark baseline) on the same protocol."""
        client = ShardWorkerClient(
            shard=0, num_nodes=NUM_NODES, num_shards=1, pipeline=0
        )
        client.start()
        try:
            client.request(RegisterTemplate("k", prepared_star.physical))
            stats = client.request(Stats())
            assert stats.templates == 1
            assert stats.pipeline == 1  # worker-side floor
        finally:
            client.close()

    def test_concurrent_requests_interleave_on_one_socket(self, client):
        """Multiplexing: many driver threads share the connection, every
        reply lands with its own waiter."""
        errors: list[BaseException] = []

        def probe() -> None:
            try:
                for _ in range(20):
                    assert isinstance(client.request(Stats()), StatsReply)
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert all(not t.is_alive() for t in threads)


# -- fault injection -----------------------------------------------------------


@needs_rpc
class TestFaultInjection:
    def test_killed_worker_respawns_transparently_once(self, university):
        service = rpc_service(make_university_graph())
        try:
            expected = service.submit(STAR_QUERY).rows
            router = service.executor.router
            assert isinstance(router, RpcShardRouter)
            victim = router._clients[0]
            old_pid = victim.process.pid
            victim.process.kill()
            victim.process.join(timeout=10)
            # The next query hits the dead worker mid-execution; the
            # router respawns it and retries the request transparently.
            outcome = service.submit(STAR_QUERY)
            assert outcome.rows == expected
            assert router._clients[0].process.pid != old_pid
            snapshot = service.snapshot_stats()
            assert snapshot.shard_failures == 1
            assert any("shard 0" in w for w in snapshot.warnings)
            assert "shard failures: 1" in snapshot.format()
        finally:
            service.close()

    def test_double_failure_raises_shard_unavailable(self, university):
        service = rpc_service(make_university_graph())
        try:
            expected = service.submit(STAR_QUERY).rows
            router = service.executor.router
            original = router._start_worker
            router._start_worker = _respawn_bomb
            try:
                router._clients[1].process.kill()
                router._clients[1].process.join(timeout=10)
                with pytest.raises(ShardUnavailable, match="shard 1"):
                    service.submit(STAR_QUERY)
            finally:
                router._start_worker = original
            assert service.snapshot_stats().shard_failures >= 2
            # Not deadlocked: once spawning works again the shard
            # recovers and the service serves correct answers.
            assert service.submit(STAR_QUERY).rows == expected
        finally:
            service.close()

    def test_spawn_failure_at_init_is_typed(self, university, monkeypatch):
        monkeypatch.setattr(
            ShardWorkerClient, "start", _start_bomb
        )
        with pytest.raises(ShardUnavailable):
            rpc_service(make_university_graph())


def _respawn_bomb(shard):
    raise OSError("no processes left")


def _start_bomb(self):
    raise OSError("fork denied")


# -- multiplexing and coalescing -----------------------------------------------


MEMBER_QUERY = (
    "SELECT ?s WHERE { ?s ub:memberOf <dept0> . ?s rdf:type ub:Student }"
)

MIXED_QUERIES = (TEMPLATE_A, TEMPLATE_B, STAR_QUERY, MEMBER_QUERY)


@needs_rpc
class TestMultiplexing:
    """The concurrent transport surface: per-query byte attribution,
    worker load gauges, and cross-query level coalescing."""

    def test_concurrent_submissions_attribute_bytes_per_query(self):
        service = rpc_service(make_university_graph())
        try:
            # Warm templates, bound plans and the columnar dictionaries:
            # afterwards repeat submissions ship byte-identical frames.
            for query in MIXED_QUERIES:
                service.submit(query)
                service.submit(query)
            serial = {
                query: service.submit(query).report.shard_bytes
                for query in MIXED_QUERIES
            }
            assert all(
                b is not None and all(x > 0 for x in b)
                for b in serial.values()
            )
            concurrent: dict[str, tuple] = {}

            def run(query: str) -> None:
                concurrent[query] = service.submit(query).report.shard_bytes

            threads = [
                threading.Thread(target=run, args=(query,))
                for query in MIXED_QUERIES
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert all(not t.is_alive() for t in threads)
            # No racing router-global counter: every query sees exactly
            # its own bytes, concurrency notwithstanding.
            assert concurrent == serial
        finally:
            service.close()

    def test_snapshot_stats_surfaces_worker_gauges(self):
        service = rpc_service(make_university_graph(), rpc_pipeline=3)
        try:
            service.submit(STAR_QUERY)
            snapshot = service.snapshot_stats()
            assert [g.shard for g in snapshot.shard_workers] == [0, 1]
            for gauge in snapshot.shard_workers:
                assert gauge.max_concurrency == 3
                assert gauge.tasks_run > 0
                assert gauge.inflight == 0
                assert gauge.queue_depth == 0
                assert gauge.peak_inflight >= 1
                assert gauge.batches == 0  # coalescing off by default
            assert "shard 0 worker:" in snapshot.format()
        finally:
            service.close()

    def test_inproc_deployments_report_no_worker_gauges(self, university):
        service = QueryService(university, ServiceConfig(shards=2))
        try:
            service.submit(STAR_QUERY)
            assert service.snapshot_stats().shard_workers == ()
        finally:
            service.close()

    def test_coalescing_merges_concurrent_levels(self):
        service = rpc_service(
            make_university_graph(),
            rpc_pipeline=8,
            coalesce_window_ms=150.0,
            coalesce_max_batch=8,
        )
        reference = QueryService(make_university_graph())
        try:
            # Register every template first so the measured runs need no
            # TemplateNotRegistered retry frames.
            expected = {q: service.submit(q).rows for q in MIXED_QUERIES}
            router = service.executor.router
            base_requests = router.level_requests
            base_frames = router.level_frames
            outcomes = service.submit_batch(list(MIXED_QUERIES))
            for query, outcome in zip(MIXED_QUERIES, outcomes):
                assert outcome.rows == expected[query]
                assert outcome.rows == reference.submit(query).rows
                assert outcome.report.shard_frames is not None
            requests = router.level_requests - base_requests
            frames = router.level_frames - base_frames
            # Four concurrent queries inside a generous window: at least
            # one ExecuteBatch merged levels across queries, so strictly
            # fewer frames went out than levels were requested.
            assert requests > len(MIXED_QUERIES)
            assert 0 < frames < requests
            assert any(s.batches > 0 for s in router.worker_stats())
        finally:
            service.close()
            reference.close()

    def test_worker_kill_mid_batch_recovers_or_fails_typed(self):
        """Killing a worker while coalesced batches are in flight never
        hangs a query: every submission either recovers transparently
        (respawn + idempotent retry) or fails with ShardUnavailable."""
        service = rpc_service(
            make_university_graph(),
            rpc_pipeline=8,
            coalesce_window_ms=50.0,
            coalesce_max_batch=8,
        )
        try:
            expected = {q: service.submit(q).rows for q in MIXED_QUERIES}
            router = service.executor.router
            workload = list(MIXED_QUERIES) * 2
            results: dict[int, object] = {}

            def run(i: int, query: str) -> None:
                try:
                    results[i] = service.submit(query).rows
                except BaseException as exc:
                    results[i] = exc

            threads = [
                threading.Thread(target=run, args=(i, q))
                for i, q in enumerate(workload)
            ]
            for t in threads:
                t.start()
            time.sleep(0.05)
            victim = router._clients[0]
            if victim is not None and victim.process is not None:
                victim.process.kill()
            for t in threads:
                t.join(timeout=60)
            assert all(not t.is_alive() for t in threads), "hung queries"
            assert len(results) == len(workload)
            for i, query in enumerate(workload):
                outcome = results[i]
                if isinstance(outcome, BaseException):
                    assert isinstance(outcome, ShardUnavailable), outcome
                else:
                    assert outcome == expected[query]
            # The transport recovered: fresh submissions are correct.
            for query in MIXED_QUERIES:
                assert service.submit(query).rows == expected[query]
        finally:
            service.close()

    def test_serial_connection_mode_still_serves(self):
        """rpc_pipeline=0 (the benchmark baseline) keeps full service
        semantics on the enveloped protocol."""
        service = rpc_service(make_university_graph(), rpc_pipeline=0)
        reference = QueryService(make_university_graph())
        try:
            for query in MIXED_QUERIES:
                assert (
                    service.submit(query).rows
                    == reference.submit(query).rows
                )
        finally:
            service.close()
            reference.close()


# -- mutation over RPC ---------------------------------------------------------


@needs_rpc
class TestMutationUnderRpc:
    def test_mutation_reprimes_only_touched_shards(self):
        service = rpc_service(make_university_graph(), shards=4)
        try:
            service.submit(STAR_QUERY)
            router = service.executor.router
            before = {s.shard: s for s in router.worker_stats()}
            triple = ("<mut-subj>", "<mut-prop>", "<mut-obj>")
            touched = {
                service.store.shard_of_value(value) for value in triple
            }
            assert touched and touched != set(range(4)), (
                "pick a triple that leaves at least one shard untouched"
            )
            service.add_triples([triple])
            after = {s.shard: s for s in router.worker_stats()}
            for shard in range(4):
                if shard in touched:
                    # Token change observed worker-side, exactly one
                    # additional Prime delivered.
                    assert (
                        after[shard].snapshot_token
                        != before[shard].snapshot_token
                    ), shard
                    assert after[shard].primes == before[shard].primes + 1
                else:
                    assert (
                        after[shard].snapshot_token
                        == before[shard].snapshot_token
                    ), shard
                    assert after[shard].primes == before[shard].primes
        finally:
            service.close()

    def test_queries_see_new_triples_and_catalog_stays_exact(self):
        service = rpc_service(make_university_graph(), shards=3)
        reference = QueryService(make_university_graph())
        try:
            before = service.submit(STAR_QUERY)
            new_triples = [
                ("<pNew>", "ub:worksFor", "<dept0>"),
                ("<pNew>", "rdf:type", "ub:FullProfessor"),
                ("<sNew>", "ub:memberOf", "<dept0>"),
                ("<sNew>", "rdf:type", "ub:Student"),
            ]
            service.add_triples(new_triples)
            reference.add_triples(new_triples)
            after = service.submit(STAR_QUERY)
            assert len(after.rows) > len(before.rows)
            assert after.rows == reference.submit(STAR_QUERY).rows
            # Incremental delta catalog == full recompute, over RPC too.
            assert service.catalog == CatalogStatistics.from_graph(
                service.graph
            )
        finally:
            service.close()
            reference.close()


# -- transport surface ---------------------------------------------------------


@needs_rpc
class TestRpcSurface:
    def test_templates_ship_once_bindings_per_query(self):
        service = rpc_service(make_university_graph())
        try:
            service.submit(TEMPLATE_A)
            router = service.executor.router
            stats = router.worker_stats()
            templates_after_first = [s.templates for s in stats]
            service.submit(TEMPLATE_B)  # same shape, different constant
            stats = router.worker_stats()
            assert [s.templates for s in stats] == templates_after_first
            assert all(s.bound_instances >= 2 for s in stats)
        finally:
            service.close()

    def test_report_carries_transport_and_bytes(self):
        service = rpc_service(make_university_graph())
        try:
            outcome = service.submit(STAR_QUERY)
            assert outcome.report.transport == "rpc"
            assert outcome.report.shards == 2
            assert outcome.report.shard_bytes is not None
            assert len(outcome.report.shard_bytes) == 2
            assert all(b > 0 for b in outcome.report.shard_bytes)
        finally:
            service.close()

    def test_executor_result_carries_bytes(self, university, prepared_star):
        executor = ShardedPlanExecutor(
            shard_graph(university, NUM_NODES, 2), transport="rpc"
        )
        try:
            executor.prime()
            result = executor.execute(prepared_star.plan)
            assert result.shard_bytes is not None and len(result.shard_bytes) == 2
            reference = PlanExecutor(
                partition_graph(university, NUM_NODES)
            ).execute(prepared_star.plan)
            assert result.rows == reference.rows
            assert reference.report.transport == "local"
        finally:
            executor.close()

    def test_explain_names_the_transport(self):
        service = rpc_service(make_university_graph())
        try:
            assert "transport rpc" in service.explain(STAR_QUERY)
        finally:
            service.close()

    def test_worker_backend_fallback_surfaces_as_service_warning(
        self, monkeypatch
    ):
        """A process pool dying *inside* a shard server surfaces through
        the service's stats, just like an in-process fallback would."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method required to inject into workers")
        from repro.mapreduce.backends import ProcessBackend

        monkeypatch.setattr(
            ProcessBackend,
            "_create_pool",
            lambda self, ctx: (_ for _ in ()).throw(OSError("no pools in worker")),
        )
        service = rpc_service(
            make_university_graph(), backend="process", backend_workers=2
        )
        try:
            assert service.submit(STAR_QUERY).rows
            warnings = service.snapshot_stats().warnings
            assert any("no pools in worker" in w for w in warnings), warnings
            assert any("shard" in w for w in warnings)
        finally:
            service.close()

    def test_invalidate_reprimes_on_next_query(self):
        service = rpc_service(make_university_graph())
        try:
            expected = service.submit(STAR_QUERY).rows
            router = service.executor.router
            router.invalidate(0)
            assert router.worker_stats()[0].snapshot_token is None
            assert service.submit(STAR_QUERY).rows == expected
            assert router.worker_stats()[0].snapshot_token is not None
        finally:
            service.close()


class TestRpcConfigValidation:
    def test_rpc_requires_shards(self, university):
        with pytest.raises(ValueError, match="requires shards"):
            QueryService(
                university, ServiceConfig(shard_transport="rpc", shards=0)
            )

    def test_unknown_transport_rejected(self, university):
        with pytest.raises(ValueError, match="shard_transport"):
            QueryService(
                university,
                ServiceConfig(shard_transport="carrier-pigeon", shards=2),
            )

    def test_executor_rejects_backend_instance_over_rpc(self, university):
        from repro.mapreduce.backends import SerialBackend

        store = shard_graph(university, NUM_NODES, 2)
        with pytest.raises(ValueError, match="backend"):
            ShardedPlanExecutor(
                store, transport="rpc", backend=SerialBackend()
            )

    def test_router_rejects_unknown_worker_backend(self):
        with pytest.raises(ValueError, match="worker backend"):
            RpcShardRouter(
                num_nodes=4, num_shards=2, worker_backend="quantum"
            )

    @pytest.mark.parametrize(
        "overrides",
        [
            {"rpc_pipeline": -1},
            {"coalesce_window_ms": -0.5},
            {"coalesce_max_batch": 0},
        ],
    )
    def test_service_rejects_bad_concurrency_knobs(self, university, overrides):
        with pytest.raises(ValueError):
            QueryService(
                university,
                ServiceConfig(shards=2, shard_transport="rpc", **overrides),
            )

    def test_router_rejects_bad_concurrency_knobs(self):
        with pytest.raises(ValueError, match="pipeline"):
            RpcShardRouter(num_nodes=4, num_shards=2, pipeline=-1)
        with pytest.raises(ValueError, match="coalesce_window_ms"):
            RpcShardRouter(num_nodes=4, num_shards=2, coalesce_window_ms=-1)
        with pytest.raises(ValueError, match="coalesce_max_batch"):
            RpcShardRouter(num_nodes=4, num_shards=2, coalesce_max_batch=0)
