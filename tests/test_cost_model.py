"""Tests for the §5.4 cost model and cardinality estimator."""

import pytest

from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC
from repro.core.logical import Match, make_join
from repro.cost.cardinality import CardinalityEstimator, CatalogStatistics
from repro.cost.model import PlanCoster, is_first_level_join, select_best_plan
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.sparql.ast import TriplePattern
from repro.sparql.parser import parse_query


class TestCatalogStatistics:
    def test_counts(self, university_graph):
        stats = CatalogStatistics.from_graph(university_graph)
        assert stats.triple_count == len(university_graph)
        assert stats.distinct_properties == len(university_graph.properties)
        assert stats.per_property["ub:worksFor"].count == 60

    def test_per_property_distincts(self, university_graph):
        stats = CatalogStatistics.from_graph(university_graph)
        ps = stats.per_property["ub:worksFor"]
        assert ps.distinct_subjects == 60
        assert 1 <= ps.distinct_objects <= 8


class TestEstimator:
    @pytest.fixture
    def est(self, university_graph):
        return CardinalityEstimator(CatalogStatistics.from_graph(university_graph))

    def test_scan_cardinality_bound_property(self, est):
        assert est.scan_cardinality(TriplePattern("?x", "ub:worksFor", "?d")) == 60

    def test_scan_cardinality_unbound_property(self, est, university_graph):
        tp = TriplePattern("?x", "?p", "?d")
        assert est.scan_cardinality(tp) == len(university_graph)

    def test_unknown_property_zero(self, est):
        assert est.scan_cardinality(TriplePattern("?x", "zz:np", "?y")) == 0

    def test_constant_reduces_estimate(self, est):
        unbound = est.pattern_cardinality(TriplePattern("?x", "ub:worksFor", "?d"))
        bound = est.pattern_cardinality(TriplePattern("?x", "ub:worksFor", "<dept0>"))
        assert bound < unbound

    def test_join_estimate_below_product(self, est, university_graph):
        t1 = TriplePattern("?p", "ub:worksFor", "?d")
        t2 = TriplePattern("?s", "ub:memberOf", "?d")
        joint = est.subset_cardinality(frozenset((t1, t2)))
        product = est.pattern_cardinality(t1) * est.pattern_cardinality(t2)
        assert 0 < joint < product

    def test_subset_estimate_is_cached_and_deterministic(self, est):
        t1 = TriplePattern("?p", "ub:worksFor", "?d")
        t2 = TriplePattern("?s", "ub:memberOf", "?d")
        s = frozenset((t1, t2))
        assert est.subset_cardinality(s) == est.subset_cardinality(s)

    def test_variable_distinct_capped_by_cardinality(self, est):
        t1 = TriplePattern("?p", "ub:worksFor", "?d")
        assert est.variable_distinct(frozenset((t1,)), "?d") <= est.pattern_cardinality(t1)


class TestPlanCoster:
    @pytest.fixture
    def coster(self, university_coster):
        return university_coster

    def test_first_level_join_detection(self):
        t1 = TriplePattern("?a", "p1", "?b")
        t2 = TriplePattern("?a", "p2", "?c")
        t3 = TriplePattern("?c", "p3", "?d")
        mj = make_join([Match(t1), Match(t2)])
        assert is_first_level_join(mj)
        rj = make_join([mj, Match(t3)])
        assert not is_first_level_join(rj)

    def test_match_cost_is_scan_cost(self, coster):
        tp = TriplePattern("?x", "ub:worksFor", "?d")
        bd = coster.operator_cost(Match(tp))
        assert bd.io == pytest.approx(60 * coster.params.c_read)
        assert bd.cpu == 0  # no constants, no filter

    def test_match_with_constant_adds_filter(self, coster):
        tp = TriplePattern("?x", "ub:worksFor", "<dept0>")
        bd = coster.operator_cost(Match(tp))
        assert bd.cpu > 0

    def test_reduce_join_charges_network(self, coster):
        t1 = TriplePattern("?a", "ub:worksFor", "?b")
        t2 = TriplePattern("?a", "ub:memberOf", "?c")
        t3 = TriplePattern("?c", "ub:subOrganizationOf", "?d")
        rj = make_join([make_join([Match(t1), Match(t2)]), Match(t3)])
        bd = coster.operator_cost(rj)
        assert bd.net > 0

    def test_map_join_has_no_network(self, coster):
        t1 = TriplePattern("?a", "ub:worksFor", "?b")
        t2 = TriplePattern("?a", "ub:memberOf", "?c")
        bd = coster.operator_cost(make_join([Match(t1), Match(t2)]))
        assert bd.net == 0
        assert bd.cpu > 0 and bd.io > 0

    def test_plan_cost_additive_over_operators(self, coster):
        q = parse_query(
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?d ub:subOrganizationOf <univ0> }"
        )
        plan = cliquesquare(q, MSC).plans[0]
        total = coster.cost(plan)
        summed = sum(
            coster.operator_cost(op).total for op in plan.root.iter_operators()
        )
        assert total == pytest.approx(summed)

    def test_shuffle_cost_hits_only_reduce_plans(self, university_graph):
        """c_shuffle is charged by reduce joins only: a map-only (single
        clique) plan's cost is invariant, a deep binary plan's grows."""
        from repro.core.binary import best_linear_plan

        stats = CatalogStatistics.from_graph(university_graph)
        est = CardinalityEstimator(stats)
        cheap = PlanCoster(est, CostParams(c_shuffle=0.1))
        expensive = PlanCoster(est, CostParams(c_shuffle=50.0))
        q = parse_query(
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?d ub:subOrganizationOf <univ0> }"
        )
        msc_plan = cliquesquare(q, MSC).plans[0]  # one clique -> map join
        lin_plan, _ = best_linear_plan(q, cheap.cost)
        assert cheap.cost(msc_plan) == pytest.approx(expensive.cost(msc_plan))
        assert expensive.cost(lin_plan) > cheap.cost(lin_plan)

    def test_select_best_plan(self, coster):
        q = parse_query(
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?d ub:subOrganizationOf <univ0> }"
        )
        plans = cliquesquare(q, MSC).unique_plans()
        best, cost = select_best_plan(plans, coster)
        assert best in plans
        assert cost == min(coster.cost(p) for p in plans)

    def test_select_best_plan_empty_raises(self, coster):
        with pytest.raises(ValueError):
            select_best_plan([], coster)


class TestCostParams:
    def test_scaled_returns_copy(self):
        p = DEFAULT_PARAMS.scaled(c_shuffle=9.0)
        assert p.c_shuffle == 9.0
        assert DEFAULT_PARAMS.c_shuffle != 9.0
        assert p.c_read == DEFAULT_PARAMS.c_read
