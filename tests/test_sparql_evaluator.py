"""Unit tests for the reference evaluator (repro.sparql.evaluator)."""

from repro.rdf.graph import RDFGraph
from repro.sparql.evaluator import count, evaluate
from repro.sparql.parser import parse_query


def g() -> RDFGraph:
    return RDFGraph(
        [
            ("<p1>", "ub:worksFor", "<d1>"),
            ("<p2>", "ub:worksFor", "<d1>"),
            ("<p3>", "ub:worksFor", "<d2>"),
            ("<s1>", "ub:memberOf", "<d1>"),
            ("<s2>", "ub:memberOf", "<d2>"),
            ("<d1>", "ub:subOrganizationOf", "<u0>"),
            ("<d2>", "ub:subOrganizationOf", "<u1>"),
            ("<p1>", "rdf:type", "ub:FullProfessor"),
            ("<p1>", "ub:knows", "<p1>"),
        ]
    )


class TestEvaluate:
    def test_single_pattern(self):
        q = parse_query("SELECT ?x WHERE { ?x ub:worksFor ?d }")
        assert evaluate(q, g()) == {("<p1>",), ("<p2>",), ("<p3>",)}

    def test_two_way_join(self):
        q = parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }")
        assert evaluate(q, g()) == {
            ("<p1>", "<s1>"),
            ("<p2>", "<s1>"),
            ("<p3>", "<s2>"),
        }

    def test_three_way_join_with_constant(self):
        q = parse_query(
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?d ub:subOrganizationOf <u0> }"
        )
        assert evaluate(q, g()) == {("<p1>",), ("<p2>",)}

    def test_type_filter(self):
        q = parse_query(
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?p rdf:type ub:FullProfessor }"
        )
        assert evaluate(q, g()) == {("<p1>",)}

    def test_empty_result(self):
        q = parse_query("SELECT ?p WHERE { ?p ub:worksFor <nowhere> }")
        assert evaluate(q, g()) == set()

    def test_repeated_variable_in_pattern(self):
        q = parse_query("SELECT ?x WHERE { ?x ub:knows ?x }")
        assert evaluate(q, g()) == {("<p1>",)}

    def test_variable_property(self):
        q = parse_query("SELECT ?p WHERE { <p1> ?p ?o }")
        assert evaluate(q, g()) == {("ub:worksFor",), ("rdf:type",), ("ub:knows",)}

    def test_count(self):
        q = parse_query("SELECT ?x WHERE { ?x ub:worksFor ?d }")
        assert count(q, g()) == 3

    def test_projection_deduplicates(self):
        # two workers in d1 but one department value
        q = parse_query("SELECT ?d WHERE { ?p ub:worksFor ?d }")
        assert evaluate(q, g()) == {("<d1>",), ("<d2>",)}

    def test_distinguished_order_respected(self):
        q = parse_query("SELECT ?s ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }")
        assert ("<s1>", "<p1>") in evaluate(q, g())
