"""Tests for physical translation (§5.2) and job compilation (§5.3)."""

import pytest

from repro.core.algorithm import cliquesquare
from repro.core.binary import best_linear_plan
from repro.core.decomposition import MSC
from repro.physical.job_compiler import compile_plan
from repro.physical.operators import (
    Filter,
    MapJoin,
    MapScan,
    MapShuffler,
    PhysProject,
    ReduceJoin,
    needs_filter,
)
from repro.physical.translate import bind_triple, scan_placement, translate
from repro.sparql.ast import TriplePattern
from repro.sparql.parser import parse_query


def msc_plan(text, **kw):
    q = parse_query(text, **kw)
    return cliquesquare(q, MSC).plans[0]


class TestScanPlacement:
    def test_follows_join_variable_position(self):
        tp = TriplePattern("?p", "ub:worksFor", "?d")
        assert scan_placement(tp, ("?d",)) == "o"
        assert scan_placement(tp, ("?p",)) == "s"

    def test_property_position(self):
        tp = TriplePattern("?s", "?p", "?o")
        assert scan_placement(tp, ("?p",)) == "p"

    def test_defaults_to_subject(self):
        tp = TriplePattern("?p", "ub:worksFor", "?d")
        assert scan_placement(tp, None) == "s"
        assert scan_placement(tp, ("?zz",)) == "s"


class TestNeedsFilter:
    def test_no_constants(self):
        tp = TriplePattern("?s", "ub:p", "?o")
        assert not needs_filter(tp, MapScan(tp, "s"))

    def test_object_constant(self):
        tp = TriplePattern("?s", "ub:p", '"C1"')
        assert needs_filter(tp, MapScan(tp, "s"))

    def test_rdf_type_object_handled_by_file(self):
        tp = TriplePattern("?s", "rdf:type", "ub:Dept")
        scan = MapScan(tp, "s")
        assert scan.type_object == "ub:Dept"
        assert not needs_filter(tp, scan)

    def test_repeated_variable(self):
        tp = TriplePattern("?x", "ub:p", "?x")
        assert needs_filter(tp, MapScan(tp, "s"))


class TestTranslate:
    def test_first_level_join_becomes_map_join(self):
        plan = msc_plan("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }")
        phys = translate(plan)
        assert isinstance(phys.root, PhysProject)
        body = phys.root.child
        assert isinstance(body, MapJoin)
        assert body.on == ("?d",)
        # both scans placed on the object replica (d is the object)
        scans = [op for op in phys.operators() if isinstance(op, MapScan)]
        assert all(s.placement == "o" for s in scans)

    def test_higher_join_becomes_reduce_join(self):
        plan = msc_plan(
            "SELECT ?x WHERE { ?x p1 ?y . ?y p2 ?z . ?z p3 ?w . ?w p4 ?u }"
        )
        phys = translate(plan)
        assert len(phys.reduce_joins) >= 1

    def test_mf_between_reduce_joins(self):
        q = parse_query(
            "SELECT ?x WHERE { ?a p1 ?x . ?x p2 ?y . ?y p3 ?z . ?z p4 ?w . "
            "?w p5 ?v . ?v p6 ?u . ?u p7 ?t . ?t p8 ?s }"
        )
        plan, _ = best_linear_plan(
            q, lambda op: float(len(list(op.iter_operators())))
        )
        phys = translate(plan)
        shufflers = [op for op in phys.operators() if isinstance(op, MapShuffler)]
        assert shufflers  # RJ over RJ requires a map shuffler
        for mf in shufflers:
            assert any(rj.output_name == mf.source for rj in phys.reduce_joins)

    def test_filter_inserted_for_constants(self):
        plan = msc_plan('SELECT ?j WHERE { ?i p10 ?j . ?j p11 "C1" }')
        phys = translate(plan)
        filters = [op for op in phys.operators() if isinstance(op, Filter)]
        assert len(filters) == 1

    def test_scan_file_descriptions(self):
        tp = TriplePattern("?i", "p10", "?j")
        scan = MapScan(tp, "o")
        assert scan.file_description() == "p10-O"  # like Fig. 15's *p10-O


class TestBindTriple:
    def test_binds_variables(self):
        tp = TriplePattern("?s", "p", "?o")
        assert bind_triple(tp, ("<a>", "p", "<b>")) == ("<a>", "<b>")

    def test_constant_mismatch(self):
        tp = TriplePattern("?s", "p", '"C1"')
        assert bind_triple(tp, ("<a>", "p", '"C2"')) is None
        assert bind_triple(tp, ("<a>", "p", '"C1"')) == ("<a>",)

    def test_repeated_variable_consistency(self):
        tp = TriplePattern("?x", "p", "?x")
        assert bind_triple(tp, ("<a>", "p", "<a>")) == ("<a>",)
        assert bind_triple(tp, ("<a>", "p", "<b>")) is None


class TestJobCompilation:
    def test_map_only_plan(self):
        plan = msc_plan("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }")
        compiled = compile_plan(translate(plan))
        assert compiled.num_jobs == 1
        assert compiled.jobs[0].map_only
        assert compiled.job_signature() == "M"

    def test_single_pattern_plan(self):
        plan = msc_plan("SELECT ?s WHERE { ?s ub:worksFor ?d }")
        compiled = compile_plan(translate(plan))
        assert compiled.job_signature() == "M"

    def test_one_job_per_reduce_join(self):
        q = parse_query(
            "SELECT ?x WHERE { ?a p1 ?x . ?x p2 ?y . ?y p3 ?z . ?z p4 ?w . "
            "?w p5 ?v . ?v p6 ?u }"
        )
        plan, _ = best_linear_plan(
            q, lambda op: float(len(list(op.iter_operators())))
        )
        phys = translate(plan)
        compiled = compile_plan(phys)
        assert compiled.num_jobs == len(phys.reduce_joins)

    def test_terminal_job_projects(self):
        plan = msc_plan(
            "SELECT ?x WHERE { ?x p1 ?y . ?y p2 ?z . ?z p3 ?w . ?w p4 ?u }"
        )
        compiled = compile_plan(translate(plan))
        terminal = [j for j in compiled.jobs if j.output_name == "result"]
        assert len(terminal) == 1
        assert terminal[0].project == ("?x",)

    def test_dependencies_follow_shufflers(self):
        q = parse_query(
            "SELECT ?x WHERE { ?a p1 ?x . ?x p2 ?y . ?y p3 ?z . ?z p4 ?w . "
            "?w p5 ?v . ?v p6 ?u . ?u p7 ?t . ?t p8 ?s }"
        )
        plan, _ = best_linear_plan(
            q, lambda op: float(len(list(op.iter_operators())))
        )
        compiled = compile_plan(translate(plan))
        by_name = {j.name: j for j in compiled.jobs}
        for job in compiled.jobs:
            for dep in job.depends:
                assert dep in by_name

    def test_job_signature_counts(self):
        plan = msc_plan(
            "SELECT ?x WHERE { ?x p1 ?y . ?y p2 ?z . ?z p3 ?w . ?w p4 ?u }"
        )
        compiled = compile_plan(translate(plan))
        assert compiled.job_signature() == str(compiled.num_jobs)
        assert compiled.num_jobs >= 1
