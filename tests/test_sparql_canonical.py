"""Unit tests for repro.sparql.canonical (query structure signatures)."""

import random

import pytest

from repro.sparql.canonical import (
    CanonicalizationBudgetExceeded,
    canonicalize,
    structure_signature,
)
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import parse_query
from repro.workloads import lubm, lubm_queries

ALL_NAMES = [f"Q{i}" for i in range(1, 15)]


def _rename_and_shuffle(query, rng):
    """An isomorphic copy: variables renamed, patterns reordered."""
    variables = list(query.variables())
    renamed = {v: f"?renamed{i}" for i, v in enumerate(variables)}
    rng.shuffle(variables)
    patterns = [
        " ".join(renamed.get(t, t) for t in (tp.s, tp.p, tp.o))
        for tp in query.patterns
    ]
    rng.shuffle(patterns)
    head = " ".join(renamed[v] for v in query.distinguished)
    return parse_query(f"SELECT {head} WHERE {{ {' . '.join(patterns)} }}")


class TestInvariance:
    def test_variable_renaming(self):
        q1 = parse_query("SELECT ?x WHERE { ?x p ?y . ?y q ?z }")
        q2 = parse_query("SELECT ?a WHERE { ?a p ?b . ?b q ?c }")
        assert structure_signature(q1) == structure_signature(q2)

    def test_pattern_reordering(self):
        q1 = parse_query("SELECT ?x WHERE { ?x p ?y . ?y q ?z }")
        q2 = parse_query("SELECT ?x WHERE { ?y q ?z . ?x p ?y }")
        assert structure_signature(q1) == structure_signature(q2)

    def test_renaming_plus_reordering_fuzz(self):
        rng = random.Random(7)
        for name in ALL_NAMES:
            q = lubm_queries.query(name)
            sig = structure_signature(q)
            for _ in range(5):
                assert structure_signature(_rename_and_shuffle(q, rng)) == sig

    def test_symmetric_query(self):
        q1 = parse_query("SELECT ?x ?y WHERE { ?x p ?y . ?y p ?x }")
        q2 = parse_query("SELECT ?b ?a WHERE { ?b p ?a . ?a p ?b }")
        assert structure_signature(q1) == structure_signature(q2)

    def test_name_is_ignored(self):
        q1 = parse_query("SELECT ?x WHERE { ?x p ?y }", name="first")
        q2 = parse_query("SELECT ?x WHERE { ?x p ?y }", name="second")
        assert structure_signature(q1) == structure_signature(q2)


class TestDiscrimination:
    def test_different_constants_differ(self):
        q1 = parse_query("SELECT ?x WHERE { ?x p ?y }")
        q2 = parse_query("SELECT ?x WHERE { ?x q ?y }")
        assert structure_signature(q1) != structure_signature(q2)

    def test_different_distinguished_set_differs(self):
        q1 = parse_query("SELECT ?x WHERE { ?x p ?y . ?y q ?z }")
        q2 = parse_query("SELECT ?y WHERE { ?x p ?y . ?y q ?z }")
        assert structure_signature(q1) != structure_signature(q2)

    def test_different_topology_differs(self):
        chain = parse_query("SELECT ?x WHERE { ?x p ?y . ?y p ?z }")
        star = parse_query("SELECT ?x WHERE { ?x p ?y . ?x p ?z }")
        assert structure_signature(chain) != structure_signature(star)

    def test_intra_pattern_equality_differs(self):
        loop = parse_query("SELECT ?x WHERE { ?x p ?x }")
        edge = parse_query("SELECT ?x WHERE { ?x p ?y }")
        assert structure_signature(loop) != structure_signature(edge)

    def test_pattern_multiplicity_differs(self):
        once = parse_query("SELECT ?x WHERE { ?x p ?y }")
        twice = parse_query("SELECT ?x WHERE { ?x p ?y . ?x p ?y }")
        assert structure_signature(once) != structure_signature(twice)

    def test_workload_queries_all_distinct(self):
        signatures = {
            structure_signature(lubm_queries.query(n)) for n in ALL_NAMES
        }
        assert len(signatures) == len(ALL_NAMES)


class TestCanonicalQuery:
    def test_mapping_rebuilds_canonical_form(self):
        q = lubm_queries.query("Q7")
        canon = canonicalize(q)
        renamed = sorted(
            tuple(canon.mapping.get(t, t) for t in (tp.s, tp.p, tp.o))
            for tp in q.patterns
        )
        assert [tuple((tp.s, tp.p, tp.o)) for tp in canon.query.patterns] == renamed
        assert sorted(canon.mapping[v] for v in q.distinguished) == list(
            canon.query.distinguished
        )

    def test_canonical_query_answers_match(self):
        graph = lubm.generate(lubm.LUBMConfig(universities=4))
        for name in ("Q2", "Q4", "Q9"):
            q = lubm_queries.query(name)
            canon = canonicalize(q)
            original = evaluate(q, graph)
            canonical = evaluate(canon.query, graph)
            wanted = [canon.mapping[v] for v in q.distinguished]
            index = [canon.query.distinguished.index(w) for w in wanted]
            remapped = {tuple(r[i] for i in index) for r in canonical}
            assert original == remapped, name

    def test_budget_exhaustion_raises(self):
        # Swapping ?x and ?y is an automorphism, so colour refinement
        # cannot discriminate them and the search must branch — which a
        # budget of 2 nodes (root + one branch) does not allow.
        q = parse_query("SELECT ?x ?y WHERE { ?x p ?y . ?y p ?x }")
        with pytest.raises(CanonicalizationBudgetExceeded):
            canonicalize(q, budget=2)
        # With the default budget the same query canonicalizes fine.
        sig = structure_signature(q)
        assert structure_signature(
            parse_query("SELECT ?b ?a WHERE { ?a p ?b . ?b p ?a }")
        ) == sig
