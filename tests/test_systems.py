"""Integration tests: the three Fig. 21 systems agree with the reference
evaluator on the LUBM workload, and expose the paper's PWOC structure."""

import pytest

from repro.sparql.evaluator import evaluate
from repro.sparql.parser import parse_query
from repro.systems.csq import CSQ, CSQConfig
from repro.systems.h2rdf import H2RDFPlus
from repro.systems.shape import ShapeSystem, decompose_2f, is_pwoc_2f
from repro.workloads import lubm
from repro.workloads.lubm_queries import all_queries, query


@pytest.fixture(scope="module")
def small_lubm():
    # The default (20-university) scale: large enough that H2RDF+'s
    # non-selective joins exceed its centralized threshold, as in Fig. 21.
    return lubm.generate()


@pytest.fixture(scope="module")
def systems(small_lubm):
    return (
        CSQ(small_lubm, CSQConfig(num_nodes=7)),
        ShapeSystem(small_lubm, num_nodes=7),
        H2RDFPlus(small_lubm, num_nodes=7),
    )


@pytest.fixture(scope="module")
def reference(small_lubm):
    return {q.name: evaluate(q, small_lubm) for q in all_queries()}


class TestAnswersAgree:
    @pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 15)])
    def test_all_systems_correct(self, systems, reference, name):
        q = query(name)
        for system in systems:
            report = system.run(q)
            assert report.answers == reference[name], (system.name, name)


class TestPWOCStructure:
    def test_shape_pwoc_queries_match_paper(self, systems):
        """Fig. 21: Q2, Q4, Q9, Q10 are PWOC for SHAPE (not for CSQ);
        Q3 is PWOC for CSQ (not for SHAPE)."""
        csq, shape, _ = systems
        for name in ("Q2", "Q4", "Q9", "Q10"):
            assert shape.run(query(name)).pwoc, name
        for name in ("Q1", "Q3", "Q5", "Q8"):
            assert not shape.run(query(name)).pwoc, name

    def test_csq_map_only_queries(self, systems):
        csq = systems[0]
        for name in ("Q1", "Q2", "Q3"):
            assert csq.run(query(name)).job_signature == "M", name
        assert csq.run(query("Q4")).job_signature != "M"

    def test_is_pwoc_2f_on_simple_shapes(self):
        star = parse_query("SELECT ?x WHERE { ?x p1 ?a . ?x p2 ?b }")
        assert is_pwoc_2f(star)
        chain3 = parse_query("SELECT ?x WHERE { ?x p1 ?y . ?y p2 ?z . ?z p3 ?w }")
        assert not is_pwoc_2f(chain3)
        two_hop = parse_query("SELECT ?x WHERE { ?x p1 ?y . ?y p2 ?z }")
        assert is_pwoc_2f(two_hop)

    def test_decompose_2f_covers_all_patterns(self):
        for name in ("Q1", "Q7", "Q11", "Q14"):
            q = query(name)
            fragments = decompose_2f(q)
            covered = {tp for frag in fragments for tp in frag}
            assert covered == set(q.patterns), name


class TestSystemBehaviour:
    def test_csq_flat_plans_few_jobs(self, systems):
        """CSQ's flat plans keep job counts low even on 9-10 pattern
        queries (Fig. 21: Q12 runs in a single job)."""
        csq = systems[0]
        assert csq.run(query("Q12")).num_jobs <= 2
        assert csq.run(query("Q14")).num_jobs <= 3

    def test_h2rdf_centralized_on_selective(self, systems):
        """Very selective queries run centralized in H2RDF+ (0 jobs)."""
        h2 = systems[2]
        assert h2.run(query("Q2")).num_jobs == 0

    def test_h2rdf_sequential_jobs_on_nonselective(self, systems):
        h2 = systems[2]
        assert h2.run(query("Q1")).num_jobs >= 1

    def test_csq_beats_comparators_on_nonselective(self, systems):
        """The headline Fig. 21 shape: CSQ wins non-selective queries."""
        csq, shape, h2 = systems
        for name in ("Q1", "Q12"):
            q = query(name)
            t_csq = csq.run(q).response_time
            assert t_csq < shape.run(q).response_time, name
            assert t_csq < h2.run(q).response_time, name

    def test_shape_wins_its_pwoc_queries(self, systems):
        csq, shape, _ = systems
        for name in ("Q2", "Q4", "Q9"):
            q = query(name)
            assert shape.run(q).response_time < csq.run(q).response_time, name

    def test_csq_optimize_exposes_plan(self, systems):
        csq = systems[0]
        plan, result = csq.optimize(query("Q9"))
        assert plan in result.unique_plans()

    def test_report_fields(self, systems):
        report = systems[0].run(query("Q6"))
        assert report.system == "CSQ"
        assert report.query_name == "Q6"
        assert report.cardinality == len(report.answers)
        assert report.response_time > 0
