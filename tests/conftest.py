"""Shared fixtures: paper example queries, small datasets, estimators."""

from __future__ import annotations

import random

import pytest

from repro.cost.cardinality import CardinalityEstimator, CatalogStatistics
from repro.cost.model import PlanCoster
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import BGPQuery, TriplePattern
from repro.sparql.parser import parse_query

# --- paper queries -----------------------------------------------------------

#: Q1 of Fig. 1 — the paper's running example (11 triple patterns).
PAPER_Q1 = """
SELECT ?a ?b WHERE {
    ?a p1 ?b .
    ?a p2 ?c .
    ?d p3 ?a .
    ?d p4 ?e .
    ?l p5 ?d .
    ?f p6 ?d .
    ?f p7 ?g .
    ?g p8 ?h .
    ?g p9 ?i .
    ?i p10 ?j .
    ?j p11 "C1" }
"""

#: Fig. 10 — the 3-pattern chain on which MXC+/XC+ fail to find any plan.
FIG10 = "SELECT ?x ?y WHERE { ?t1 p1 ?x . ?x p2 ?y . ?y p3 ?t3 }"

#: Fig. 11 — the 4-pattern chain QX (minimum covers miss an HO plan).
FIG11_QX = "SELECT ?x WHERE { ?t1 p1 ?x . ?x p2 ?y . ?y p3 ?z . ?z p4 ?t4 }"


def fig14_query() -> BGPQuery:
    """Fig. 14 — the query on which exact-cover variants are HO-lossy.

    t2 shares w with t1, x with t3 and y with t4 (three distinct
    variables on one pattern => a fully variable triple pattern).
    """
    return BGPQuery(
        distinguished=("?w",),
        patterns=(
            TriplePattern("?w", "p1", "?c1"),
            TriplePattern("?w", "?x", "?y"),
            TriplePattern("?x", "p3", "?c3"),
            TriplePattern("?y", "p4", "?c4"),
        ),
        name="fig14",
    )


@pytest.fixture
def paper_q1() -> BGPQuery:
    return parse_query(PAPER_Q1, name="Q1")


@pytest.fixture
def fig10_query() -> BGPQuery:
    return parse_query(FIG10, name="fig10")


@pytest.fixture
def fig11_qx() -> BGPQuery:
    return parse_query(FIG11_QX, name="QX")


@pytest.fixture
def fig14() -> BGPQuery:
    return fig14_query()


# --- small data --------------------------------------------------------------


def make_university_graph(seed: int = 7, people: int = 60, depts: int = 8) -> RDFGraph:
    """A small organization graph exercising s-s, s-o and o-o joins."""
    rng = random.Random(seed)
    g = RDFGraph()
    dept_names = [f"<dept{i}>" for i in range(depts)]
    for i in range(people):
        person = f"<person{i}>"
        g.add(person, "ub:worksFor", rng.choice(dept_names))
        g.add(person, "ub:memberOf", rng.choice(dept_names))
        g.add(
            person,
            "rdf:type",
            "ub:FullProfessor" if rng.random() < 0.4 else "ub:Student",
        )
        if rng.random() < 0.5:
            g.add(person, "ub:emailAddress", f'"person{i}@example.org"')
    for d in dept_names:
        g.add(d, "ub:subOrganizationOf", "<univ0>")
        g.add(d, "rdf:type", "ub:Department")
    return g


@pytest.fixture(scope="session")
def university_graph() -> RDFGraph:
    return make_university_graph()


@pytest.fixture(scope="session")
def university_coster(university_graph: RDFGraph) -> PlanCoster:
    stats = CatalogStatistics.from_graph(university_graph)
    return PlanCoster(CardinalityEstimator(stats))


# --- random query generation for property tests ------------------------------


def random_connected_query(rng: random.Random, n: int) -> BGPQuery:
    """A random connected query of *n* patterns (small variable pool)."""
    if n == 1:
        return BGPQuery(("?v0",), (TriplePattern("?v0", "p1", "?v1"),))
    while True:
        pool = [f"?v{i}" for i in range(max(2, (n * 2) // 2))]
        patterns = []
        for i in range(n):
            s, o = rng.sample(pool, 2)
            patterns.append(TriplePattern(s, f"p{i}", o))
        head = (patterns[0].variables()[0],)
        q = BGPQuery(head, tuple(patterns))
        if q.is_connected() and q.join_variables():
            return q
