"""Unit tests for repro.sparql.parser."""

import pytest

from repro.sparql.parser import SPARQLSyntaxError, parse_query, tokenize


class TestTokenizer:
    def test_iris_literals_words(self):
        toks = tokenize('SELECT ?x WHERE { ?x ub:name "a b" . ?x p <http://e/x> }')
        assert '"a b"' in toks
        assert "<http://e/x>" in toks
        assert "{" in toks and "}" in toks and "." in toks


class TestParser:
    def test_basic(self):
        q = parse_query("SELECT ?x WHERE { ?x ub:worksFor ?y . ?y a ub:Dept }")
        assert q.distinguished == ("?x",)
        assert len(q.patterns) == 2
        assert q.patterns[1].p == "rdf:type"  # 'a' normalized

    def test_select_star(self):
        q = parse_query("SELECT * WHERE { ?x p ?y . ?y q ?z }")
        assert q.distinguished == ("?x", "?y", "?z")

    def test_missing_dots_tolerated(self):
        q = parse_query("SELECT ?x WHERE { ?x p ?y ?y q ?z }")
        assert len(q.patterns) == 2

    def test_literal_with_spaces(self):
        q = parse_query('SELECT ?u WHERE { ?u ub:name "University 3" }')
        assert q.patterns[0].o == '"University 3"'

    def test_prefix_declarations_ignored(self):
        q = parse_query(
            "PREFIX ub: <http://lubm/> SELECT ?x WHERE { ?x ub:p ?y }"
        )
        assert q.patterns[0].p == "ub:p"

    def test_trailing_dot(self):
        q = parse_query("SELECT ?x WHERE { ?x p ?y . }")
        assert len(q.patterns) == 1

    def test_case_insensitive_keywords(self):
        q = parse_query("select ?x where { ?x p ?y }")
        assert q.distinguished == ("?x",)

    def test_name_is_attached(self):
        q = parse_query("SELECT ?x WHERE { ?x p ?y }", name="Q0")
        assert q.name == "Q0"


class TestParserErrors:
    def test_must_start_with_select(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("ASK { ?x p ?y }")

    def test_missing_where(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?x { ?x p ?y }")

    def test_unbalanced_braces(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?x WHERE { ?x p ?y")

    def test_dangling_terms(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?x WHERE { ?x p ?y . ?z q }")

    def test_empty_body(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?x WHERE { }")

    def test_constant_in_select(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT foo WHERE { ?x p ?y }")

    def test_nested_groups_rejected(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?x WHERE { { ?x p ?y } }")

    def test_trailing_tokens(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?x WHERE { ?x p ?y } LIMIT 5")


class TestErrorDiagnostics:
    """SparqlSyntaxError carries the offending token and its position."""

    def test_alias_spelling(self):
        from repro.sparql.parser import SparqlSyntaxError

        assert SparqlSyntaxError is SPARQLSyntaxError
        assert issubclass(SparqlSyntaxError, ValueError)

    def test_bad_select_token_position(self):
        with pytest.raises(SPARQLSyntaxError) as excinfo:
            parse_query("SELECT foo WHERE { ?x p ?y }")
        assert excinfo.value.token == "foo"
        assert excinfo.value.position == (1, 8)
        assert "line 1, column 8" in str(excinfo.value)
        assert "'foo'" in str(excinfo.value)

    def test_position_tracks_lines(self):
        with pytest.raises(SPARQLSyntaxError) as excinfo:
            parse_query("SELECT ?x WHERE {\n  ?x p ?y .\n  ?z q }")
        assert excinfo.value.token == "?z"
        assert excinfo.value.position == (3, 3)

    def test_eof_errors_point_past_the_end(self):
        with pytest.raises(SPARQLSyntaxError) as excinfo:
            parse_query("SELECT ?x")
        assert excinfo.value.token is None
        assert excinfo.value.position == (1, 10)

    def test_wrong_keyword_start(self):
        with pytest.raises(SPARQLSyntaxError) as excinfo:
            parse_query("ASK { ?x p ?y }")
        assert excinfo.value.token == "ASK"
        assert excinfo.value.position == (1, 1)

    def test_literal_in_subject_position_reported(self):
        with pytest.raises(SPARQLSyntaxError) as excinfo:
            parse_query('SELECT ?x WHERE { ?x p ?y . "lit" p ?x }')
        assert excinfo.value.token == '"lit"'
        assert excinfo.value.position == (1, 29)

    def test_nested_group_position(self):
        with pytest.raises(SPARQLSyntaxError) as excinfo:
            parse_query("SELECT ?x WHERE { { ?x p ?y } }")
        assert excinfo.value.position == (1, 19)

    def test_lex_positions(self):
        from repro.sparql.parser import lex

        tokens = lex('SELECT ?x\nWHERE { ?x "a b" ?y }')
        assert [t.text for t in tokens][:3] == ["SELECT", "?x", "WHERE"]
        where = tokens[2]
        assert (where.line, where.column) == (2, 1)
        literal = next(t for t in tokens if t.text == '"a b"')
        assert literal.line == 2

    def test_distinguished_not_in_body_is_syntax_error(self):
        with pytest.raises(SPARQLSyntaxError) as excinfo:
            parse_query("SELECT ?z WHERE { ?x p ?y }")
        assert excinfo.value.token == "?z"
        assert excinfo.value.position == (1, 8)
