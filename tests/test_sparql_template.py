"""Tests for template extraction (repro.sparql.canonical.extract_template)."""

from __future__ import annotations

import pytest

from repro.sparql.ast import BGPQuery, TriplePattern
from repro.sparql.canonical import (
    CanonicalizationBudgetExceeded,
    canonicalize,
    extract_template,
)
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.workloads import lubm_queries

ALL_NAMES = [f"Q{i}" for i in range(1, 15)]


class TestExtraction:
    def test_constant_variants_share_a_signature(self):
        t1 = extract_template(
            parse_query(
                "SELECT ?x WHERE { ?x rdf:type ub:Lecturer . "
                "?x ub:worksFor <deptA> }"
            )
        )
        t2 = extract_template(
            parse_query(
                "SELECT ?y WHERE { ?y ub:worksFor <deptB> . "
                "?y rdf:type ub:Professor }"
            )
        )
        assert t1.signature == t2.signature
        assert t1.digest() == t2.digest()

    def test_property_constants_are_structural(self):
        t1 = extract_template(
            parse_query("SELECT ?x WHERE { ?x ub:worksFor <d> }")
        )
        t2 = extract_template(
            parse_query("SELECT ?x WHERE { ?x ub:memberOf <d> }")
        )
        assert t1.signature != t2.signature

    def test_variable_vs_constant_positions_differ(self):
        # Q12 (variable ?U) and Q13 (constant university) must not merge.
        t12 = extract_template(lubm_queries.query("Q12"))
        t13 = extract_template(lubm_queries.query("Q13"))
        assert t12.signature != t13.signature

    def test_literal_and_iri_kinds_differ(self):
        t1 = extract_template(
            parse_query('SELECT ?x WHERE { ?x ub:name "Alice" }')
        )
        t2 = extract_template(
            parse_query("SELECT ?x WHERE { ?x ub:name <alice> }")
        )
        assert t1.signature != t2.signature
        assert t1.params[0].kind == "literal"
        assert t2.params[0].kind == "iri"

    def test_auto_param_names_follow_occurrence_order(self):
        t = extract_template(
            parse_query(
                "SELECT ?x WHERE { <s0> ub:p ?x . ?x ub:q <o1> . "
                "?x ub:r <o2> }"
            )
        )
        by_name = {p.name: p for p in t.params}
        assert set(by_name) == {"p0", "p1", "p2"}
        assert by_name["p0"].default == "<s0>"
        assert by_name["p1"].default == "<o1>"
        assert by_name["p2"].default == "<o2>"
        assert t.param_names == ("p0", "p1", "p2")

    def test_roundtrip_every_lubm_query(self):
        """extract -> bind original constants -> the original query."""
        for name in ALL_NAMES:
            q = lubm_queries.query(name)
            t = extract_template(q)
            values = t.check_values(t.default_values())
            assert t.bind_source(values) == q, name
            # The bound canonical query is isomorphic to the original.
            bound = t.bind_canonical(values)
            assert (
                canonicalize(bound).signature == canonicalize(q).signature
            ), name

    def test_isomorphic_queries_same_template_and_mapping_consistency(self):
        q = lubm_queries.query("Q4")
        renamed = {v: f"?zz{i}" for i, v in enumerate(q.variables())}
        iso = BGPQuery(
            distinguished=tuple(renamed[v] for v in q.distinguished),
            patterns=tuple(
                TriplePattern(
                    renamed.get(tp.s, tp.s), tp.p, renamed.get(tp.o, tp.o)
                )
                for tp in reversed(q.patterns)
            ),
        )
        t, ti = extract_template(q), extract_template(iso)
        assert t.signature == ti.signature
        assert t.instance_key(t.check_values(t.default_values())) == (
            ti.instance_key(ti.check_values(ti.default_values()))
        )

    def test_instance_keys_differ_per_binding(self):
        t = extract_template(
            parse_query("SELECT ?x WHERE { ?x ub:worksFor <d1> }")
        )
        k1 = t.instance_key(("<d1>",))
        k2 = t.instance_key(("<d2>",))
        assert k1 != k2
        assert k1 == t.instance_key(("<d1>",))

    def test_lift_disabled_degenerates_to_classic_signature(self):
        q = lubm_queries.query("Q2")
        t = extract_template(q, lift_constants=False)
        assert t.arity == 0
        assert t.signature == canonicalize(q).signature

    def test_budget_still_enforced(self):
        sym = parse_query(
            "SELECT ?a ?b WHERE { ?a ub:advisor ?b . ?b ub:advisor ?a }"
        )
        with pytest.raises(CanonicalizationBudgetExceeded):
            extract_template(sym, budget=2)

    def test_param_order_subject_before_object_within_a_pattern(self):
        q = parse_query(
            "SELECT ?k WHERE { <Alice> ?rel <Bob> . ?rel <kind> ?k }"
        )
        t = extract_template(q)
        names = t.param_names
        by_name = {p.name: p for p in t.params}
        # Positional order must follow query text: subject before object.
        assert [by_name[n].source for n in names] == [
            (0, "s"),
            (0, "o"),
        ]
        # Positional rebinding keeps subject/object untouched.
        values = [None] * t.arity
        for i, p in enumerate(t.params):
            values[i] = {"p0": "<Carol>", "p1": "<Dave>"}[p.name]
        bound = t.bind_source(t.check_values(tuple(values)))
        assert bound.patterns[0].s == "<Carol>"
        assert bound.patterns[0].o == "<Dave>"

    def test_rdf_type_objects_are_liftable(self):
        t = extract_template(
            parse_query("SELECT ?x WHERE { ?x rdf:type ub:Course }")
        )
        assert t.arity == 1
        assert t.params[0].default == "ub:Course"


class TestExplicitPlaceholders:
    def test_parser_accepts_dollar_params(self):
        q = parse_query("SELECT ?x WHERE { ?x ub:worksFor $dept }")
        assert q.placeholders() == ("$dept",)
        assert q.patterns[0].placeholders() == ("$dept",)

    def test_parser_rejects_property_position(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x ?y WHERE { ?x $p ?y }")

    def test_parser_rejects_malformed_placeholder(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x ub:p $9bad }")

    def test_ast_rejects_property_placeholder(self):
        with pytest.raises(ValueError):
            TriplePattern("?x", "$p", "?y")

    def test_explicit_params_have_no_default(self):
        t = extract_template(
            parse_query("SELECT ?x WHERE { ?x ub:worksFor $dept }")
        )
        (param,) = t.params
        assert param.name == "dept"
        assert param.explicit and param.default is None
        with pytest.raises(ValueError, match="unbound"):
            t.check_values(t.default_values())

    def test_shared_placeholder_spans_two_slots(self):
        t = extract_template(
            parse_query(
                "SELECT ?x ?y WHERE { ?x ub:worksFor $d . ?y ub:memberOf $d }"
            )
        )
        assert t.arity == 2
        assert {p.name for p in t.params} == {"d"}
        assert t.param_names == ("d",)

    def test_auto_names_avoid_explicit_collisions(self):
        t = extract_template(
            parse_query(
                "SELECT ?x WHERE { ?x ub:worksFor $p0 . ?x ub:memberOf <d> }"
            )
        )
        names = {p.name for p in t.params}
        assert "p0" in names and len(names) == 2


class TestValueValidation:
    def _template(self):
        return extract_template(
            parse_query(
                'SELECT ?x WHERE { <s> ub:p ?x . ?x ub:name "n" }'
            )
        )

    def test_arity_mismatch(self):
        with pytest.raises(ValueError, match="parameters"):
            self._template().check_values(("<a>",))

    def test_variable_rejected(self):
        t = extract_template(parse_query("SELECT ?x WHERE { ?x ub:p <o> }"))
        with pytest.raises(ValueError, match="constant"):
            t.check_values(("?y",))

    def test_literal_cannot_bind_subject(self):
        t = extract_template(parse_query("SELECT ?x WHERE { <s> ub:p ?x }"))
        with pytest.raises(ValueError, match="subject|resource"):
            t.check_values(('"lit"',))

    def test_kind_mismatch_rejected(self):
        t = extract_template(
            parse_query('SELECT ?x WHERE { ?x ub:name "n" }')
        )
        with pytest.raises(ValueError, match="literal"):
            t.check_values(("<iri>",))

    def test_placeholder_value_rejected(self):
        t = extract_template(parse_query("SELECT ?x WHERE { ?x ub:p <o> }"))
        with pytest.raises(ValueError, match="constant"):
            t.check_values(("$again",))


class TestSyntaxErrorName:
    def test_name_attached_and_in_message(self):
        with pytest.raises(SparqlSyntaxError) as exc:
            parse_query("SELECT ?x WHERE { ?x p }", name="Q99")
        assert exc.value.name == "Q99"
        assert "Q99" in str(exc.value)

    def test_anonymous_parse_keeps_empty_name(self):
        with pytest.raises(SparqlSyntaxError) as exc:
            parse_query("not a query")
        assert exc.value.name == ""
