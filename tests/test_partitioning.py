"""Tests for the §5.1 partitioner and storage layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.layout import file_name, parse_file_name, triple_file
from repro.partitioning.triple_partitioner import (
    PartitionedStore,
    partition_graph,
    place,
)
from repro.rdf.graph import RDFGraph


class TestLayout:
    def test_file_name(self):
        assert file_name("s", "ub:worksFor") == "s|ub:worksFor"

    def test_rdf_type_object_split(self):
        assert (
            file_name("p", "rdf:type", "ub:FullProfessor")
            == "p|rdf:type|ub:FullProfessor"
        )

    def test_object_split_only_for_rdf_type(self):
        with pytest.raises(ValueError):
            file_name("s", "ub:worksFor", "<d>")

    def test_bad_placement(self):
        with pytest.raises(ValueError):
            file_name("x", "p")

    def test_triple_file_routes_rdf_type(self):
        assert triple_file("o", "rdf:type", "ub:Dept") == "o|rdf:type|ub:Dept"
        assert triple_file("o", "ub:worksFor", "<d>") == "o|ub:worksFor"

    def test_parse_roundtrip(self):
        assert parse_file_name("s|p") == ("s", "p", None)
        assert parse_file_name("p|rdf:type|ub:X") == ("p", "rdf:type", "ub:X")
        with pytest.raises(ValueError):
            parse_file_name("nope")


class TestPlace:
    def test_deterministic(self):
        assert place("<a>", 7) == place("<a>", 7)

    def test_in_range(self):
        for value in ("<a>", "ub:p", '"lit"'):
            assert 0 <= place(value, 7) < 7

    def test_spread(self):
        nodes = {place(f"<e{i}>", 7) for i in range(100)}
        assert len(nodes) == 7  # all nodes receive data


class TestPartitionedStore:
    @pytest.fixture
    def store(self, university_graph) -> PartitionedStore:
        return partition_graph(university_graph, 7)

    def test_three_replicas(self, store, university_graph):
        assert store.total_stored() == 3 * len(university_graph)

    def test_each_replica_is_complete(self, store, university_graph):
        for placement in ("s", "p", "o"):
            assert store.replica_triples(placement) == set(university_graph)

    def test_colocation_by_subject(self, store, university_graph):
        """All triples sharing a subject live on hash(subject) in 's'."""
        for s, p, o in university_graph:
            node = store.node_of(s)
            assert (s, p, o) in store.scan(node, "s", p, o if p == "rdf:type" else None)

    def test_colocation_by_object(self, store, university_graph):
        for s, p, o in university_graph:
            node = store.node_of(o)
            found = store.scan(node, "o", p, o if p == "rdf:type" else None)
            assert (s, p, o) in found

    def test_scan_by_property_matches_graph(self, store, university_graph):
        for prop in university_graph.properties:
            scanned = []
            for node in range(7):
                scanned.extend(store.scan(node, "s", prop))
            expected = set(university_graph.match("?s", prop, "?o"))
            assert set(scanned) == expected
            assert len(scanned) == len(expected)  # no duplicates in a replica

    def test_rdf_type_files_are_object_split(self, store):
        names = set()
        for node in range(7):
            names.update(store.file_names(node))
        type_files = [n for n in names if "rdf:type" in n]
        assert type_files
        assert all(n.count("|") == 2 for n in type_files)

    def test_scan_type_with_object(self, store, university_graph):
        rows = []
        for node in range(7):
            rows.extend(store.scan(node, "s", "rdf:type", "ub:Department"))
        assert set(rows) == set(university_graph.match("?s", "rdf:type", "ub:Department"))

    def test_scan_unbound_property_returns_replica(self, store, university_graph):
        rows = []
        for node in range(7):
            rows.extend(store.scan(node, "s"))
        assert len(rows) == len(university_graph)

    def test_scan_missing_property_empty(self, store):
        assert store.scan(0, "s", "zz:nothing") == []


class TestFirstLevelJoinColocation:
    """The §5.1 property: any first-level join is PWOC."""

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_ss_join_colocated(self, seed):
        import random

        rng = random.Random(seed)
        g = RDFGraph(validate=False)
        for i in range(50):
            g.add(f"<s{rng.randrange(10)}>", f"p{rng.randrange(3)}", f"<o{i}>")
        store = partition_graph(g, 5)
        # s-s join on any shared subject: both triples on hash(subject)
        for s, p1, o1 in g:
            for _, p2, o2 in g.match(s, "?p", "?o"):
                node = store.node_of(s)
                assert (s, p1, o1) in store.scan(node, "s", p1, o1 if p1 == "rdf:type" else None)
                assert (s, p2, o2) in store.scan(node, "s", p2, o2 if p2 == "rdf:type" else None)

    def test_so_join_colocated(self, university_graph):
        """s-o joins: subject replica of one triple meets object replica
        of the other on the shared value's node."""
        store = partition_graph(university_graph, 7)
        for s, p, o in university_graph.match("?s", "ub:worksFor", "?o"):
            node = store.node_of(o)
            # the department's subOrganizationOf triple, by subject
            for t in university_graph.match(o, "ub:subOrganizationOf", "?u"):
                assert t in store.scan(node, "s", "ub:subOrganizationOf")
                assert (s, p, o) in store.scan(node, "o", "ub:worksFor")


class TestPlaceMemoization:
    """place() memoizes the polynomial term hash (loading hot path)."""

    def test_cached_hash_matches_direct_computation(self):
        from repro.partitioning.triple_partitioner import _HASH_CACHE, _term_hash

        def reference(value: str) -> int:
            h = 0
            for ch in value:
                h = (h * 131 + ord(ch)) & 0x7FFFFFFF
            return h

        for value in ("", "a", "ub:worksFor", "<http://www.University0.edu>"):
            assert _term_hash(value) == reference(value)
            assert value in _HASH_CACHE
            # The memoized path returns the identical hash.
            assert _term_hash(value) == reference(value)

    def test_place_stable_across_calls(self):
        for num_nodes in (1, 7, 31):
            assert place("ub:takesCourse", num_nodes) == place(
                "ub:takesCourse", num_nodes
            )
