"""Property and edge-case tests for the comparator systems.

The Fig. 21 comparators are simulations; what must hold *exactly* is
answer correctness on arbitrary queries and the structural behaviours
the comparison relies on (PWOC detection, fragment decomposition,
centralized-vs-distributed switching).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.graph import RDFGraph
from repro.sparql.ast import BGPQuery, TriplePattern
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import parse_query
from repro.systems.h2rdf import H2RDFPlus
from repro.systems.shape import (
    ShapeSystem,
    decompose_2f,
    is_pwoc_2f,
    pwoc_anchor_2f,
)


def random_graph(seed: int, n_props: int = 4, size: int = 80) -> RDFGraph:
    rng = random.Random(seed)
    g = RDFGraph(validate=False)
    values = [f"<e{i}>" for i in range(6)]
    for _ in range(size):
        g.add(rng.choice(values), f"p{rng.randrange(n_props)}", rng.choice(values))
    return g


def random_query(seed: int, n: int, n_props: int = 4) -> BGPQuery:
    rng = random.Random(seed)
    while True:
        pool = [f"?v{i}" for i in range(max(2, n))]
        patterns = []
        for i in range(n):
            s, o = rng.sample(pool, 2)
            patterns.append(TriplePattern(s, f"p{rng.randrange(n_props)}", o))
        q = BGPQuery((patterns[0].variables()[0],), tuple(patterns))
        if q.is_connected():
            return q


class TestShapePartitioning:
    def test_local_stores_cover_dataset(self):
        g = random_graph(1)
        shape = ShapeSystem(g, num_nodes=5)
        union = set()
        for store in shape.local_stores:
            union |= set(store)
        assert union == set(g)

    def test_two_hop_expansion_present(self):
        g = RDFGraph([("<a>", "p", "<b>"), ("<b>", "q", "<c>")])
        shape = ShapeSystem(g, num_nodes=4)
        from repro.partitioning.triple_partitioner import place

        node = place("<a>", 4)
        # the anchor's triple and its 1-hop-forward neighbour's triple
        assert ("<a>", "p", "<b>") in shape.local_stores[node]
        assert ("<b>", "q", "<c>") in shape.local_stores[node]

    def test_anchor_detection(self):
        q = parse_query("SELECT ?x WHERE { ?x p1 ?y . ?x p2 ?z . ?y p3 ?w }")
        assert pwoc_anchor_2f(q.patterns) == "?x"
        assert is_pwoc_2f(q)

    def test_three_hop_chain_not_pwoc(self):
        q = parse_query("SELECT ?x WHERE { ?x p ?y . ?y p ?z . ?z p ?w }")
        assert not is_pwoc_2f(q)

    def test_decompose_fragments_are_pwoc(self):
        q = parse_query(
            "SELECT ?x WHERE { ?x p ?y . ?y p ?z . ?z p ?w . ?w p ?u . ?u p ?t }"
        )
        for fragment in decompose_2f(q):
            assert pwoc_anchor_2f(fragment) is not None

    def test_decompose_single_fragment_iff_pwoc(self):
        pwoc = parse_query("SELECT ?x WHERE { ?x p ?y . ?y q ?z }")
        assert len(decompose_2f(pwoc)) == 1
        non_pwoc = parse_query("SELECT ?x WHERE { ?x p ?y . ?z q ?y }")
        assert len(decompose_2f(non_pwoc)) >= 2


class TestComparatorCorrectness:
    @given(st.integers(0, 3_000), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_shape_answers_match_reference(self, seed, n):
        g = random_graph(seed)
        q = random_query(seed + 7, n)
        shape = ShapeSystem(g, num_nodes=4)
        assert shape.run(q).answers == evaluate(q, g)

    @given(st.integers(0, 3_000), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_h2rdf_answers_match_reference(self, seed, n):
        g = random_graph(seed)
        q = random_query(seed + 11, n)
        h2 = H2RDFPlus(g, num_nodes=4)
        assert h2.run(q).answers == evaluate(q, g)


class TestH2RDFBehaviour:
    def test_centralized_threshold_switch(self):
        g = random_graph(3, size=120)
        q = random_query(5, 3)
        always_mr = H2RDFPlus(g, centralized_threshold=0)
        always_local = H2RDFPlus(g, centralized_threshold=10**9)
        mr_report = always_mr.run(q)
        local_report = always_local.run(q)
        assert mr_report.answers == local_report.answers
        assert mr_report.num_jobs >= 1
        assert local_report.num_jobs == 0

    def test_job_overhead_only_on_mr_jobs(self):
        from repro.cost.params import CostParams

        g = random_graph(4, size=120)
        q = random_query(9, 3)
        cheap = H2RDFPlus(g, params=CostParams(job_overhead=0.0), centralized_threshold=0)
        costly = H2RDFPlus(g, params=CostParams(job_overhead=999.0), centralized_threshold=0)
        jobs = cheap.run(q).num_jobs
        assert jobs >= 1
        delta = costly.run(q).response_time - cheap.run(q).response_time
        assert delta == pytest.approx(999.0 * jobs)

    def test_left_deep_steps_cover_all_patterns(self):
        g = random_graph(6)
        q = random_query(12, 4)
        report = H2RDFPlus(g).run(q)
        steps = report.details["steps"]
        covered = {tp for s in steps for tp in s.patterns}
        assert len(covered) == len(q.patterns) - 1  # all but the seed pattern

    def test_single_pattern_query(self):
        g = random_graph(8)
        q = BGPQuery(("?s",), (TriplePattern("?s", "p0", "?o"),))
        report = H2RDFPlus(g).run(q)
        assert report.answers == evaluate(q, g)
        assert report.num_jobs == 0


class TestShapeBehaviour:
    def test_pwoc_query_zero_jobs(self):
        g = random_graph(10)
        q = parse_query("SELECT ?x WHERE { ?x p0 ?y . ?x p1 ?z }")
        report = ShapeSystem(g, num_nodes=3).run(q)
        assert report.pwoc and report.num_jobs == 0
        assert report.job_signature == "M"

    def test_non_pwoc_query_one_job_per_fragment_join(self):
        g = random_graph(11)
        q = parse_query("SELECT ?x WHERE { ?x p0 ?y . ?z p1 ?y . ?z p2 ?w }")
        report = ShapeSystem(g, num_nodes=3).run(q)
        fragments = decompose_2f(q)
        assert report.num_jobs == len(fragments) - 1

    def test_local_cost_factor_scales_pwoc_time(self):
        g = random_graph(12)
        q = parse_query("SELECT ?x WHERE { ?x p0 ?y . ?x p1 ?z }")
        fast = ShapeSystem(g, num_nodes=3, local_cost_factor=0.1).run(q)
        slow = ShapeSystem(g, num_nodes=3, local_cost_factor=1.0).run(q)
        assert slow.response_time > fast.response_time
        assert slow.answers == fast.answers
