"""Unit tests for repro.rdf.ntriples."""

import io

import pytest

from repro.rdf import ntriples


class TestParseLine:
    def test_simple(self):
        assert ntriples.parse_line("<a> p <b> .") == ("<a>", "p", "<b>")

    def test_trailing_dot_optional(self):
        assert ntriples.parse_line("<a> p <b>") == ("<a>", "p", "<b>")

    def test_literal_with_spaces(self):
        line = '<a> ub:name "University of Testing" .'
        assert ntriples.parse_line(line) == ("<a>", "ub:name", '"University of Testing"')

    def test_blank_and_comment_lines(self):
        assert ntriples.parse_line("") is None
        assert ntriples.parse_line("   ") is None
        assert ntriples.parse_line("# comment") is None

    def test_wrong_arity(self):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line("<a> p .")
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line("<a> p <b> <c> .")

    def test_unterminated_literal(self):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line('<a> p "oops .')


class TestRoundTrip:
    TRIPLES = [
        ("<a>", "p1", "<b>"),
        ("<a>", "ub:name", '"hello world"'),
        ("_:b0", "p2", '"x"'),
    ]

    def test_serialize_parse_roundtrip(self):
        text = ntriples.serialize(self.TRIPLES)
        assert sorted(ntriples.parse(text)) == sorted(self.TRIPLES)

    def test_serialize_is_sorted_and_deterministic(self):
        assert ntriples.serialize(self.TRIPLES) == ntriples.serialize(
            list(reversed(self.TRIPLES))
        )

    def test_file_io(self):
        buf = io.StringIO()
        assert ntriples.write(self.TRIPLES, buf) == 3
        buf.seek(0)
        assert sorted(ntriples.read(buf)) == sorted(self.TRIPLES)

    def test_parse_skips_comments(self):
        text = "# header\n<a> p <b> .\n\n<c> p <d> ."
        assert len(list(ntriples.parse(text))) == 2
