"""Tests for the prepared-query surface: prepare/bind/execute, template
caching, unified routing, stats and explain provenance."""

from __future__ import annotations

import threading
import warnings

import pytest

from repro.physical.executor import PreparedPlan
from repro.service.service import (
    PreparedQuery,
    QueryService,
    ServiceConfig,
)
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.systems.csq import CSQ, CSQConfig
from repro.workloads import lubm, lubm_queries

ALL_NAMES = [f"Q{i}" for i in range(1, 15)]

#: Same shape as LUBM Q3, with the university constant as a parameter.
VARYING = (
    "SELECT ?P ?S WHERE {{ ?P ub:worksFor ?D . ?S ub:memberOf ?D . "
    "?D ub:subOrganizationOf {uni} }}"
)


@pytest.fixture(scope="module")
def graph():
    return lubm.generate(lubm.LUBMConfig(universities=4))


@pytest.fixture(scope="module")
def expected(graph):
    return {
        name: evaluate(lubm_queries.query(name), graph) for name in ALL_NAMES
    }


class TestRoundTripAllBackends:
    """Acceptance: every LUBM query round-trips through template
    extraction — prepare, bind the original constants, execute — with
    answers identical to a cold (template-free) submit, on all three
    backends."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_prepared_equals_cold_submit(self, graph, expected, backend):
        config = ServiceConfig(backend=backend, result_cache_size=0)
        with QueryService(graph, config) as svc:
            for name in ALL_NAMES:
                q = lubm_queries.query(name)
                prepared = svc.prepare(q)
                assert isinstance(prepared, PreparedQuery)
                out = prepared.execute()
                assert out.rows == expected[name], (backend, name)
                # The handle's defaults reproduce the source query.
                assert prepared.bind().query == q

    def test_cold_submit_without_templates_matches(self, graph, expected):
        config = ServiceConfig(enable_templates=False, result_cache_size=0)
        with QueryService(graph, config) as svc:
            for name in ALL_NAMES:
                out = svc.submit(lubm_queries.query(name))
                assert out.rows == expected[name], name
            # Every constant combination is its own template: all cold.
            snap = svc.snapshot_stats()
            assert snap.optimizer_runs == len(ALL_NAMES)


class TestSingleOptimization:
    """Acceptance: a constant-varying workload (same shape, 50 distinct
    constants) triggers exactly one optimizer invocation."""

    N = 50

    def _queries(self):
        return [
            VARYING.format(uni=lubm.university_iri(i)) for i in range(self.N)
        ]

    def test_via_submit(self, graph):
        with QueryService(graph) as svc:
            rows = [svc.submit(q).rows for q in self._queries()]
            snap = svc.snapshot_stats()
            assert snap.optimizer_runs == 1
            assert snap.plan_misses == 1
            assert snap.template_hits == self.N - 1
            assert snap.templates_cached == 1
            # The four real universities answer non-trivially and
            # distinctly; unseen constants answer empty.
            assert all(rows[i] for i in range(4))
            assert all(not rows[i] for i in range(4, self.N))
            for i in range(4):
                want = evaluate(
                    parse_query(VARYING.format(uni=lubm.university_iri(i))),
                    graph,
                )
                assert rows[i] == want, i

    def test_via_prepare_bind(self, graph):
        with QueryService(graph) as svc:
            prepared = svc.prepare(
                VARYING.format(uni="$uni"), name="members-of"
            )
            for i in range(self.N):
                out = prepared.bind(uni=lubm.university_iri(i)).execute()
                assert out.template_digest == prepared.digest()
            snap = svc.snapshot_stats()
            assert snap.optimizer_runs == 1
            assert snap.plan_misses == 0  # prepare paid the optimization

    def test_via_submit_batch(self, graph):
        with QueryService(graph) as svc:
            outcomes = svc.submit_batch(self._queries())
            assert len(outcomes) == self.N
            assert svc.snapshot_stats().optimizer_runs == 1

    def test_concurrent_submissions_single_flight(self, graph):
        with QueryService(graph) as svc:
            queries = self._queries()[:16]
            errors: list[BaseException] = []
            barrier = threading.Barrier(8)

            def worker(ix: int) -> None:
                try:
                    barrier.wait()
                    for q in queries[ix::8]:
                        svc.submit(q)
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert svc.snapshot_stats().optimizer_runs == 1


class TestExplicitParams:
    def test_bind_by_name_and_position(self, graph):
        with QueryService(graph) as svc:
            prepared = svc.prepare(VARYING.format(uni="$uni"))
            uni = lubm.university_iri(1)
            by_name = prepared.bind(uni=uni).execute()
            by_pos = prepared.bind(uni).execute()
            assert by_name.rows == by_pos.rows
            assert by_pos.result_cache_hit  # identical instance

    def test_unbound_param_errors(self, graph):
        with QueryService(graph) as svc:
            prepared = svc.prepare(VARYING.format(uni="$uni"))
            with pytest.raises(ValueError, match="unbound"):
                prepared.bind()

    def test_unknown_and_duplicate_params(self, graph):
        with QueryService(graph) as svc:
            prepared = svc.prepare(VARYING.format(uni="$uni"))
            with pytest.raises(ValueError, match="unknown parameter"):
                prepared.bind(nope="<x>")
            with pytest.raises(ValueError, match="twice"):
                prepared.bind("<x>", uni="<y>")

    def test_rebinding_lifted_constants(self, graph):
        """Constants lifted from the text rebind by their auto names."""
        with QueryService(graph) as svc:
            prepared = svc.prepare(lubm_queries.query("Q2"))
            assert prepared.param_names == ("p0", "p1")
            out = prepared.bind(p1=lubm.university_iri(2)).execute()
            want = evaluate(
                parse_query(
                    "SELECT ?X WHERE { ?X rdf:type ub:AssistantProfessor . "
                    f"?X ub:doctoralDegreeFrom {lubm.university_iri(2)} }}"
                ),
                graph,
            )
            assert out.rows == want

    def test_positional_bind_keeps_subject_object_order(self, graph):
        with QueryService(graph) as svc:
            prepared = svc.prepare(
                "SELECT ?d WHERE { $prof ub:worksFor ?d . "
                "?d ub:subOrganizationOf $uni }"
            )
            assert prepared.param_names == ("prof", "uni")
            by_pos = prepared.bind("<P>", lubm.university_iri(0)).query
            by_name = prepared.bind(
                prof="<P>", uni=lubm.university_iri(0)
            ).query
            assert by_pos == by_name
            assert by_pos.patterns[0].s == "<P>"
            assert by_pos.patterns[1].o == lubm.university_iri(0)

    def test_submit_rejects_unbound_placeholders(self, graph):
        with QueryService(graph) as svc:
            with pytest.raises(ValueError, match="unbound parameters"):
                svc.submit(VARYING.format(uni="$uni"))
            with pytest.raises(ValueError, match="unbound parameters"):
                svc.submit_batch([VARYING.format(uni="$uni")])


class TestUnifiedRouting:
    def test_csq_run_and_prepare_share_the_service_caches(self, graph):
        with CSQ(graph, CSQConfig()) as csq:
            report = csq.run(lubm_queries.query("Q4"))
            assert report.details["provenance"]["served_by"] == "optimizer"
            prepared = csq.prepare(lubm_queries.query("Q4"))
            assert prepared.template_cache_hit
            again = csq.run(lubm_queries.query("Q4"))
            assert again.details["provenance"]["served_by"] == "result-cache"
            assert again.answers == report.answers

    def test_provenance_ladder(self, graph):
        shape = VARYING.format(uni=lubm.university_iri(0))
        other = VARYING.format(uni=lubm.university_iri(1))
        with QueryService(graph) as svc:
            cold = svc.submit(shape)
            assert cold.provenance["served_by"] == "optimizer"
            assert cold.template_digest
            tmpl = svc.submit(other)
            assert tmpl.provenance["served_by"] == "template"
            assert tmpl.template_digest == cold.template_digest
            repeat = svc.submit(other)
            assert repeat.provenance["served_by"] == "result-cache"
            svc.result_cache.clear()
            bound = svc.submit(other)
            assert bound.provenance["served_by"] == "plan-cache"
            assert {p[0] for p in bound.parameters} == {"p0"}

    def test_deprecated_prepare_plan_shim(self, graph):
        with QueryService(graph) as svc:
            plan, _ = svc.optimize(lubm_queries.query("Q1"))
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                prepared = svc.prepare(plan)
            assert any(
                issubclass(w.category, DeprecationWarning) for w in caught
            )
            assert isinstance(prepared, PreparedPlan)
            result = svc.execute_prepared(prepared)
            assert result.rows == evaluate(lubm_queries.query("Q1"), graph)

    def test_live_handle_survives_template_eviction(self, graph):
        """A held PreparedQuery never re-optimizes, even after its
        template is evicted from the shared cache."""
        config = ServiceConfig(template_cache_size=1, result_cache_size=0)
        with QueryService(graph, config) as svc:
            pa = svc.prepare(VARYING.format(uni="$uni"))
            pb = svc.prepare(lubm_queries.query("Q2"))  # evicts pa's entry
            assert len(svc.template_cache) == 1
            out = pa.bind(uni=lubm.university_iri(1)).execute()
            assert out.template_hit
            want = evaluate(
                parse_query(VARYING.format(uni=lubm.university_iri(1))),
                graph,
            )
            assert out.rows == want
            assert svc.snapshot_stats().optimizer_runs == 2
            assert pb.execute().rows  # the survivor still works too

    def test_invalidate_plans_on_mutation_drops_templates(self):
        graph = lubm.generate(lubm.LUBMConfig(universities=4))
        config = ServiceConfig(invalidate_plans_on_mutation=True)
        with QueryService(graph, config) as svc:
            q = lubm_queries.query("Q2")
            svc.submit(q)
            svc.add_triples([("<s>", "<p-new>", "<o>")])
            assert len(svc.template_cache) == 0
            assert len(svc.plan_cache) == 0
            out = svc.submit(q)
            assert not out.plan_cache_hit and not out.template_hit
            # The re-optimization really ran against the new statistics.
            assert svc.snapshot_stats().optimizer_runs == 2

    def test_plan_cache_bounded_by_default_but_templates_survive(self, graph):
        config = ServiceConfig(plan_cache_size=4, result_cache_size=0)
        with QueryService(graph, config) as svc:
            for i in range(12):
                svc.submit(VARYING.format(uni=lubm.university_iri(i)))
            snap = svc.snapshot_stats()
            assert snap.optimizer_runs == 1  # evictions never re-optimize
            assert len(svc.plan_cache) == 4
            assert svc.plan_cache.evictions == 8

    def test_mutation_invalidates_bound_results(self):
        graph = lubm.generate(lubm.LUBMConfig(universities=4))
        with QueryService(graph) as svc:
            prepared = svc.prepare(
                "SELECT ?X WHERE { ?X rdf:type ub:AssistantProfessor . "
                "?X ub:doctoralDegreeFrom $uni }"
            )
            bound = prepared.bind(uni=lubm.UNIVERSITY0)
            before = bound.execute()
            svc.add_triples(
                [
                    ("<NewProf>", "rdf:type", "ub:AssistantProfessor"),
                    ("<NewProf>", "ub:doctoralDegreeFrom", lubm.UNIVERSITY0),
                ]
            )
            after = bound.execute()
            assert not after.result_cache_hit
            assert after.rows == before.rows | {("<NewProf>",)}
            # No re-optimization: the bound plan survived the mutation.
            assert svc.snapshot_stats().optimizer_runs == 1


class TestStatsAndExplain:
    def test_template_counters_in_snapshot_and_format(self, graph):
        with QueryService(graph, ServiceConfig(result_cache_size=0)) as svc:
            for i in range(4):
                svc.submit(VARYING.format(uni=lubm.university_iri(i)))
            svc.submit(VARYING.format(uni=lubm.university_iri(0)))
            snap = svc.snapshot_stats()
            assert snap.plan_misses == 1
            assert snap.template_hits == 3
            assert snap.plan_hits == 1
            assert snap.optimizer_runs == 1
            assert snap.templates_cached == 1
            text = snap.format()
            assert "template hits" in text
            assert "optimizer runs" in text

    def test_explain_prints_template_signature(self, graph):
        with QueryService(graph) as svc:
            prepared = svc.prepare(lubm_queries.query("Q4"))
            text = prepared.explain()
            assert f"template {prepared.digest()}" in text
            assert "$s" in text  # parameter slots listed
            assert "MapReduce jobs" in text
            assert f"template {prepared.digest()}" in svc.explain(
                lubm_queries.query("Q4")
            )

    def test_parse_errors_carry_query_name(self, graph):
        with QueryService(graph) as svc:
            with pytest.raises(SparqlSyntaxError) as exc:
                svc.submit("SELECT ?x WHERE { ?x p }", name="broken")
            assert exc.value.name == "broken"
            assert "broken" in str(exc.value)
            assert svc.snapshot_stats().errors == 1

    def test_prepare_parse_errors_carry_query_name(self, graph):
        with QueryService(graph) as svc:
            with pytest.raises(SparqlSyntaxError) as exc:
                svc.prepare("SELECT nope", name="bad-prep")
            assert exc.value.name == "bad-prep"
