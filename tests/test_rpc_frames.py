"""Pickle round-trip registry for every RPC wire frame (FRAME001).

``FRAME_EXAMPLES`` is the registry the static linter cross-checks:
every frame class in :data:`repro.cluster.rpc.MESSAGE_TYPES` must have
an entry here, and every entry must survive a pickle round trip (the
wire is pickled dataclasses).  Values are zero-argument factories so
the heavy frames (``Prime``'s snapshot, ``RegisterTemplate``'s physical
plan) are built only when the test actually runs.
"""

from __future__ import annotations

import functools
import pickle

import pytest

from repro.cluster.rpc import (
    CLIENT_HANDLED,
    MESSAGE_TYPES,
    WORKER_HANDLED,
    BatchReply,
    BoundSpecs,
    ErrorReply,
    ExecuteBatch,
    ExecuteLevel,
    Hello,
    HelloReply,
    InvalidateSnapshot,
    OkReply,
    Prime,
    PrimeSlots,
    RegisterTemplate,
    Reply,
    Request,
    ResultsReply,
    RpcProtocolError,
    Shutdown,
    Stats,
    StatsReply,
    TableUpdate,
)
from repro.columnar.wire import ColumnarFrame
from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.sparql.parser import parse_query
from tests.conftest import make_university_graph

NUM_NODES = 3

_QUERY = (
    "SELECT ?p WHERE { ?p ub:worksFor <dept0> . "
    "?p rdf:type ub:FullProfessor }"
)


@functools.lru_cache(maxsize=1)
def _store():
    return partition_graph(make_university_graph(), NUM_NODES)


def _snapshot():
    return _store().snapshot()


@functools.lru_cache(maxsize=1)
def _physical():
    plan = cliquesquare(parse_query(_QUERY), MSC).plans[0]
    return PlanExecutor(_store()).prepare(plan).physical


def _level():
    # Carries a non-default trace context and topology epoch: the round
    # trip must preserve those fields, not just the execution payload.
    return ExecuteLevel(
        key="k", binding=(), level=0, phase="map",
        tasks=(("job0", None, 0),),
        trace_ctx=("trace0", 1),
        epoch=2,
    )


#: frame class name -> zero-arg example factory.  The static FRAME001
#: rule parses these keys, so they must stay literal strings.
FRAME_EXAMPLES = {
    "Hello": Hello,
    "HelloReply": lambda: HelloReply(
        shard=0, num_nodes=NUM_NODES, num_shards=2, pid=1234,
        snapshot_token=None,
    ),
    "Prime": lambda: Prime(snapshot=_snapshot(), epoch=3),
    "PrimeSlots": lambda: PrimeSlots(
        # A moved-in node's file map plus a moved-out node: the round
        # trip must preserve both sides of a migration delta.
        adds={1: dict(_snapshot().files[1])},
        drops=(0,),
        token=(17, 2),
        wire="pickle",
    ),
    "TableUpdate": lambda: TableUpdate(epoch=4, num_shards=5),
    "InvalidateSnapshot": InvalidateSnapshot,
    "RegisterTemplate": lambda: RegisterTemplate(
        key="k", physical=_physical()
    ),
    "BoundSpecs": lambda: BoundSpecs(
        key="k", binding=(("$s0", "<dept0>"),)
    ),
    "ExecuteLevel": _level,
    "ExecuteBatch": lambda: ExecuteBatch(items=((7, _level()),)),
    "Stats": Stats,
    "StatsReply": lambda: StatsReply(
        shard=0, pid=1234, snapshot_token=None, templates=1,
        bound_instances=1, tasks_run=4, levels_run=2, primes=1,
        bytes_received=1024, backend="serial", warnings=("w",),
    ),
    "Shutdown": Shutdown,
    "OkReply": lambda: OkReply(value=("k", ())),
    "ResultsReply": lambda: ResultsReply(
        results=[[("row",)]],
        spans=(("bind", -1, 0.0001, 0.002, {"tasks": 2}),),
    ),
    "BatchReply": lambda: BatchReply(replies=((7, OkReply()),)),
    "ErrorReply": lambda: ErrorReply(
        error=RpcProtocolError("boom"), kind="RpcProtocolError"
    ),
    "Request": lambda: Request(id=3, msg=Stats()),
    "Reply": lambda: Reply(id=3, payload=OkReply(), encode_s=0.0005),
    "ColumnarFrame": lambda: ColumnarFrame(
        payload=b"x", delta_start=0, delta_terms=("t",)
    ),
}

#: frames whose fields compare by identity (exceptions, snapshots,
#: plans), so the round trip is checked structurally, not by ==
_IDENTITY_FIELDS = {"Prime", "RegisterTemplate", "ErrorReply"}


def test_registry_covers_every_frame():
    names = {t.__name__ for t in MESSAGE_TYPES}
    assert names == set(FRAME_EXAMPLES), (
        "every MESSAGE_TYPES frame needs a FRAME_EXAMPLES entry "
        "(and vice versa)"
    )


def test_dispatch_tables_partition_the_frames():
    handled = {t.__name__ for t in WORKER_HANDLED + CLIENT_HANDLED}
    assert {t.__name__ for t in MESSAGE_TYPES} <= handled


@pytest.mark.parametrize("name", sorted(FRAME_EXAMPLES))
def test_frame_pickle_round_trip(name):
    frame = FRAME_EXAMPLES[name]()
    clone = pickle.loads(pickle.dumps(frame))
    assert type(clone) is type(frame)
    if name not in _IDENTITY_FIELDS:
        assert clone == frame
