"""The conformance matrix: {serial, thread, process} x {unsharded,
shards=1, shards=4} x {inproc, rpc} x {submit, prepare/bind/execute,
submit_batch} on all 14 LUBM queries.

Every cell must reproduce the single-store serial reference bit for
bit: identical answers and field-wise identical execution reports (see
``tests/conformance.py``).  This suite replaces the per-PR copies of
the answer-equality check that previously lived in ``test_backends.py``
and ``test_cluster.py``.
"""

from __future__ import annotations

import pytest

from repro.workloads import lubm, lubm_queries
from tests.conformance import (
    BACKENDS,
    DEPLOYMENTS,
    RPC_MODES,
    RPC_WIRES,
    SURFACES,
    assert_concurrent_conforms,
    assert_rebalance_conforms,
    assert_surface_conforms,
    make_service,
    reference_answers,
    skip_unless_supported,
)

UNIVERSITIES = 4


@pytest.fixture(scope="module")
def graph():
    return lubm.generate(lubm.LUBMConfig(universities=UNIVERSITIES))


@pytest.fixture(scope="module")
def queries():
    return lubm_queries.all_queries()


@pytest.fixture(scope="module")
def reference(graph, queries):
    with make_service(graph, "serial", "unsharded") as service:
        return reference_answers(service, queries)


@pytest.fixture(scope="module")
def reference8(graph, queries):
    """Serial reference at num_nodes=8 for the rebalance-rpc cell,
    which widens the simulated cluster so every slot holds real data
    (reports depend on node placement, so the reference must match)."""
    with make_service(graph, "serial", "unsharded", num_nodes=8) as service:
        return reference_answers(service, queries)


def test_reference_is_not_vacuous(reference):
    """Answer equality only means something if answers exist."""
    assert len(reference) == 14
    assert all(expected.rows for expected in reference.values())
    assert any(expected.num_jobs > 1 for expected in reference.values())
    assert any(expected.job_signature == "M" for expected in reference.values())


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("deployment", sorted(DEPLOYMENTS))
def test_conformance_matrix(graph, queries, reference, deployment, backend):
    """One service per (deployment, backend) cell; all three submission
    surfaces run the full workload against the shared reference."""
    skip_unless_supported(deployment, backend)
    service = make_service(graph, backend, deployment)
    try:
        for surface in SURFACES:
            assert_surface_conforms(
                service, queries, reference, surface,
                where=f"{deployment}/{backend}",
            )
        assert not service.snapshot_stats().warnings, (
            "a backend silently degraded mid-matrix"
        )
    finally:
        service.close()


@pytest.mark.parametrize("mode", sorted(RPC_MODES))
@pytest.mark.parametrize("wire", RPC_WIRES)
def test_concurrent_rpc_conformance(graph, queries, reference, wire, mode):
    """The concurrent=N dimension: 4 driver threads submit the rotated
    LUBM workload over rpc x {pickle, columnar} x {pipelined,
    coalesced}; answers and reports stay field-wise equal to the serial
    reference under multiplexing and cross-query coalescing."""
    skip_unless_supported("shards4-rpc", "serial")
    service = make_service(
        graph, "serial", "shards4-rpc", wire_format=wire, **RPC_MODES[mode]
    )
    try:
        assert_concurrent_conforms(
            service, queries, reference, threads=4,
            where=f"shards4-rpc/{wire}/{mode}",
        )
    finally:
        service.close()


def test_rebalance_inproc_conformance(graph, queries, reference):
    """The rebalance dimension, in-process: live 4→5 and 5→3 resizes
    with 4 driver threads keeping the workload in flight; answers and
    reports stay field-wise equal to the serial reference at every
    topology epoch."""
    service = make_service(graph, "serial", "shards4-inproc")
    try:
        reports = assert_rebalance_conforms(
            service, queries, reference, plan=(5, 3), threads=4,
            where="shards4-inproc/rebalance",
        )
        assert [r.new_shards for r in reports] == [5, 3]
    finally:
        service.close()


@pytest.mark.parametrize("wire", RPC_WIRES)
def test_rebalance_rpc_conformance(graph, queries, reference8, wire):
    """The rebalance dimension over rpc x {pickle, columnar} with
    cross-query coalescing on: the slot table flips 4→5→3 live, only
    the moved slots' data crosses the wire, and every outcome — before,
    during, or after a migration — conforms.  num_nodes == slots here
    so every slot holds real data and the migrations genuinely move
    triples between worker processes."""
    skip_unless_supported("shards4-rpc", "serial")
    service = make_service(
        graph, "serial", "shards4-rpc", wire_format=wire,
        num_nodes=8, slots=8, **RPC_MODES["coalesced"]
    )
    try:
        reports = assert_rebalance_conforms(
            service, queries, reference8, plan=(5, 3), threads=4,
            where=f"shards4-rpc/{wire}/rebalance",
        )
        assert [r.new_shards for r in reports] == [5, 3]
        for report in reports:
            assert report.bytes_shipped is not None
            assert sum(report.bytes_shipped) > 0
    finally:
        service.close()


@pytest.mark.parametrize("surface", SURFACES)
def test_duplicate_heavy_batch_conforms(graph, queries, reference, surface):
    """A batch with duplicate and template-sharing members (the
    coalescing paths) still conforms on every surface."""
    mix = [queries[0], queries[1], queries[0], queries[3], queries[1]]
    service = make_service(graph, "serial", "shards4-inproc")
    try:
        assert_surface_conforms(
            service, mix, reference, surface, where="dup-mix"
        )
    finally:
        service.close()
