"""Unit tests for repro.rdf.graph (triple store and pattern matching)."""

import pytest

from repro.rdf.graph import RDFGraph

TRIPLES = [
    ("<a>", "p1", "<b>"),
    ("<a>", "p1", "<c>"),
    ("<a>", "p2", "<b>"),
    ("<b>", "p1", "<c>"),
    ("<c>", "p3", '"lit"'),
]


@pytest.fixture
def graph() -> RDFGraph:
    return RDFGraph(TRIPLES)


class TestMutation:
    def test_add_and_len(self, graph):
        assert len(graph) == 5

    def test_duplicate_ignored(self, graph):
        assert graph.add("<a>", "p1", "<b>") is False
        assert len(graph) == 5

    def test_add_all_counts_new(self):
        g = RDFGraph()
        assert g.add_all(TRIPLES) == 5
        assert g.add_all(TRIPLES) == 0

    def test_validation(self):
        g = RDFGraph()
        with pytest.raises(ValueError):
            g.add('"lit"', "p", "<o>")

    def test_validation_can_be_disabled(self):
        g = RDFGraph(validate=False)
        g.add('"odd"', "p", "<o>")
        assert len(g) == 1

    def test_contains(self, graph):
        assert ("<a>", "p1", "<b>") in graph
        assert ("<a>", "p9", "<b>") not in graph


class TestAccessors:
    def test_properties(self, graph):
        assert graph.properties == {"p1", "p2", "p3"}

    def test_subjects_objects(self, graph):
        assert graph.subjects == {"<a>", "<b>", "<c>"}
        assert "<b>" in graph.objects and '"lit"' in graph.objects

    def test_count_property(self, graph):
        assert graph.count_property("p1") == 3
        assert graph.count_property("nope") == 0

    def test_dictionary_tracks_terms(self, graph):
        assert graph.dictionary.lookup("<a>") is not None
        assert graph.dictionary.lookup("?x") is None


class TestMatch:
    def test_fully_bound(self, graph):
        assert list(graph.match("<a>", "p1", "<b>")) == [("<a>", "p1", "<b>")]
        assert list(graph.match("<a>", "p1", "<zz>")) == []

    def test_sp_bound(self, graph):
        assert set(graph.match("<a>", "p1", "?o")) == {
            ("<a>", "p1", "<b>"),
            ("<a>", "p1", "<c>"),
        }

    def test_po_bound(self, graph):
        assert set(graph.match("?s", "p1", "<c>")) == {
            ("<a>", "p1", "<c>"),
            ("<b>", "p1", "<c>"),
        }

    def test_so_bound(self, graph):
        assert set(graph.match("<a>", "?p", "<b>")) == {
            ("<a>", "p1", "<b>"),
            ("<a>", "p2", "<b>"),
        }

    def test_s_bound(self, graph):
        assert len(list(graph.match("<a>", "?p", "?o"))) == 3

    def test_p_bound(self, graph):
        assert len(list(graph.match("?s", "p1", "?o"))) == 3

    def test_o_bound(self, graph):
        assert len(list(graph.match("?s", "?p", "<c>"))) == 2

    def test_all_unbound(self, graph):
        assert set(graph.match()) == set(TRIPLES)

    def test_count_match(self, graph):
        assert graph.count_match("?s", "p1", "?o") == 3

    def test_match_consistency_across_indexes(self, graph):
        """Every bound/unbound combination agrees with a full scan."""
        for s in ("<a>", "?s"):
            for p in ("p1", "?p"):
                for o in ("<b>", "?o"):
                    via_index = set(graph.match(s, p, o))
                    via_scan = {
                        t
                        for t in graph
                        if (s.startswith("?") or t[0] == s)
                        and (p.startswith("?") or t[1] == p)
                        and (o.startswith("?") or t[2] == o)
                    }
                    assert via_index == via_scan
