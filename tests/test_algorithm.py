"""Tests for Algorithm 1 (repro.core.algorithm) on the paper's examples."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import best_effort_plan, cliquesquare
from repro.core.decomposition import (
    ALL_OPTIONS,
    MSC,
    MSC_PLUS,
    MXC,
    MXC_PLUS,
    SC,
    SC_PLUS,
    XC,
    XC_PLUS,
)
from repro.core.logical import Match
from repro.core.properties import height
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import parse_query
from repro.workloads.synthetic import chain_query, star_query
from tests.conftest import random_connected_query


class TestBasics:
    def test_single_pattern_query(self):
        q = parse_query("SELECT ?x WHERE { ?x p ?y }")
        for option in ALL_OPTIONS:
            result = cliquesquare(q, option)
            assert result.plan_count == 1
            assert height(result.plans[0]) == 0

    def test_two_pattern_query_single_plan(self):
        q = parse_query("SELECT ?x WHERE { ?x p ?y . ?y q ?z }")
        for option in ALL_OPTIONS:
            result = cliquesquare(q, option)
            assert result.plan_count == 1, option.name
            assert height(result.plans[0]) == 1

    def test_disconnected_query_rejected(self):
        q = parse_query("SELECT ?x WHERE { ?x p ?y . ?a q ?b }")
        with pytest.raises(ValueError):
            cliquesquare(q, MSC)

    def test_plans_cover_all_patterns(self, paper_q1):
        result = cliquesquare(paper_q1, MSC, timeout_s=30)
        for plan in result.plans:
            assert plan.body.patterns() == frozenset(paper_q1.patterns)

    def test_match_leaves_are_query_patterns(self, paper_q1):
        result = cliquesquare(paper_q1, MSC, timeout_s=30)
        for plan in result.plans:
            leaves = {
                op.pattern
                for op in plan.root.iter_operators()
                if isinstance(op, Match)
            }
            assert leaves == set(paper_q1.patterns)


class TestPaperExamples:
    def test_q1_msc_heights(self, paper_q1):
        """CliqueSquare-MSC reaches Fig. 4's height-3 plan for Q1."""
        result = cliquesquare(paper_q1, MSC, timeout_s=60)
        assert result.plans
        assert min(height(p) for p in result.plans) == 3

    def test_fig10_mxc_plus_and_xc_plus_fail(self, fig10_query):
        """'When MXC+ and XC+ fail' (§4.4): no plan at all."""
        assert cliquesquare(fig10_query, MXC_PLUS).plan_count == 0
        assert cliquesquare(fig10_query, XC_PLUS).plan_count == 0
        assert best_effort_plan(fig10_query, MXC_PLUS) is None

    def test_fig10_sc_plus_single_plan(self, fig10_query):
        """SC+ can produce only one plan for Fig. 10's query."""
        result = cliquesquare(fig10_query, SC_PLUS)
        unique = result.unique_plans()
        assert len(unique) == 1
        assert height(unique[0]) == 2

    def test_fig10_sc_has_more_plans(self, fig10_query):
        """SC also builds the plan using partial clique {t1,t2} + {t3}."""
        result = cliquesquare(fig10_query, SC, timeout_s=30)
        heights = {height(p) for p in result.plans}
        assert 2 in heights
        assert len(result.unique_plans()) > 1

    def test_fig11_msc_produces_single_plan(self, fig11_qx):
        """Fig. 12: the only MSC plan for QX."""
        result = cliquesquare(fig11_qx, MSC)
        unique = result.unique_plans()
        assert len(unique) == 1
        assert height(unique[0]) == 2

    def test_fig11_sc_contains_fig13_plan(self, fig11_qx):
        """Fig. 13: SC builds additional height-2 plans MSC misses."""
        sc = cliquesquare(fig11_qx, SC, timeout_s=30)
        msc = cliquesquare(fig11_qx, MSC)
        sc_h2 = {p.signature() for p in sc.plans if height(p) == 2}
        msc_h2 = {p.signature() for p in msc.plans if height(p) == 2}
        assert msc_h2 < sc_h2  # strictly more HO plans in SC

    def test_fig14_exact_cover_options_lossy(self, fig14):
        """Fig. 14: XC options need an extra stage vs. simple covers."""
        msc_plus = cliquesquare(fig14, MSC_PLUS)
        assert min(height(p) for p in msc_plus.plans) == 2
        for option in (MXC, XC):
            result = cliquesquare(fig14, option, timeout_s=30)
            assert result.plans, option.name
            assert min(height(p) for p in result.plans) == 3, option.name


class TestStarAndChain:
    def test_star_all_options_one_plan(self):
        """Fig. 16's star column: minimum options produce exactly 1 plan."""
        q = star_query(6)
        for option in (MXC_PLUS, MSC_PLUS, MXC, MSC):
            result = cliquesquare(q, option)
            assert result.plan_count == 1, option.name
            assert height(result.plans[0]) == 1

    def test_chain_heights_logarithmic(self):
        """Minimum covers halve chains: height ~ ceil(log2 n)."""
        import math

        for n in (2, 4, 6, 8):
            result = cliquesquare(chain_query(n), MSC, timeout_s=30)
            assert min(height(p) for p in result.plans) == math.ceil(math.log2(n))


class TestBudget:
    def test_max_plans_truncation(self, paper_q1):
        result = cliquesquare(paper_q1, SC, max_plans=5, timeout_s=30)
        assert result.plan_count == 5
        assert result.truncated

    def test_timeout_truncation(self):
        q = chain_query(9)
        result = cliquesquare(q, SC, max_plans=None, timeout_s=0.05)
        assert result.truncated

    def test_uniqueness_ratio_bounds(self, paper_q1):
        result = cliquesquare(paper_q1, MSC, timeout_s=30)
        assert 0 < result.uniqueness_ratio <= 1.0


@given(st.integers(0, 10_000), st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_all_plans_answer_the_query(seed, n):
    """Every MSC plan of a random query computes the reference answer.

    Executes plans with the in-memory relational kernel over a random
    graph (the distributed path is tested in test_executor.py).
    """
    rng = random.Random(seed)
    query = random_connected_query(rng, n)
    data_rng = random.Random(seed + 1)
    from repro.rdf.graph import RDFGraph

    g = RDFGraph(validate=False)
    values = [f"<e{i}>" for i in range(6)]
    for i in range(60):
        g.add(
            data_rng.choice(values),
            f"p{data_rng.randrange(n)}",
            data_rng.choice(values),
        )
    expected = evaluate(query, g)

    from repro.relational.joins import star_join
    from repro.relational.relation import Relation
    from repro.core.logical import Join, Project, Match as M

    def run(op):
        if isinstance(op, M):
            rows = []
            from repro.physical.translate import bind_triple

            for t in g.match(op.pattern.s, op.pattern.p, op.pattern.o):
                row = bind_triple(op.pattern, t)
                if row is not None:
                    rows.append(row)
            return Relation(op.attrs, rows)
        if isinstance(op, Join):
            return star_join([run(c) for c in op.inputs], on=op.on)
        if isinstance(op, Project):
            return run(op.child).project(op.on)
        raise TypeError(op)

    result = cliquesquare(query, MSC, timeout_s=20)
    for plan in result.unique_plans()[:10]:
        got = set(run(plan.root).rows)
        assert got == expected
