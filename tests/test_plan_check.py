"""Plan-invariant checker: hand-built violations must be rejected, the
real optimizer pipeline must pass, and the runtime hook must obey its
environment flag."""

from __future__ import annotations

import pytest

from repro.analysis.plan_check import (
    PlanInvariantError,
    check_compiled_plan,
    check_logical_plan,
    check_physical_plan,
    check_plan_space,
    maybe_check,
    plans_checked,
    sweep_corpus,
)
from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC
from repro.core.logical import Join, LogicalPlan, Match, Project
from repro.core.properties import height, optimal_height
from repro.physical.job_compiler import compile_plan
from repro.physical.translate import translate
from repro.sparql.parser import parse_query

CHAIN_QUERY = (
    "SELECT ?x ?z WHERE { ?x ub:advisor ?y . ?y ub:worksFor ?z . "
    "?z ub:subOrganizationOf ?w }"
)

STAR_QUERY = (
    "SELECT ?p WHERE { ?p ub:worksFor ?d . ?p rdf:type ub:FullProfessor }"
)


@pytest.fixture(scope="module")
def chain_query():
    return parse_query(CHAIN_QUERY)


@pytest.fixture(scope="module")
def chain_result(chain_query):
    return cliquesquare(chain_query, MSC)


def _leaves(query):
    return [Match(pattern) for pattern in query.patterns]


class TestLogicalNegatives:
    def test_optimizer_plans_pass(self, chain_result, chain_query):
        for plan in chain_result.plans:
            check_logical_plan(plan, chain_query)

    def test_too_tall_plan_rejected(self, chain_query):
        # Three join levels over 3 patterns: one above the n-1 bound
        # (the redundant top join re-joins m3, keeping leaves covered).
        m1, m2, m3 = _leaves(chain_query)
        j1 = Join(on=("?y",), inputs=(m1, m2))
        j2 = Join(on=("?z",), inputs=(j1, m3))
        j3 = Join(on=("?z",), inputs=(j2, m3))
        with pytest.raises(PlanInvariantError):
            check_logical_plan(
                LogicalPlan(root=Project(on=("?x", "?z"), child=j3),
                            query=chain_query),
                chain_query,
            )

    def test_double_covered_leaf_rejected(self, chain_query):
        # The same triple pattern joined in twice at one level.
        m1, m2, m3 = _leaves(chain_query)
        j1 = Join(on=("?y",), inputs=(m1, m2))
        j2 = Join(on=("?y",), inputs=(m1, m2))
        root = Join(on=("?z",), inputs=(j1, j2, m3))
        with pytest.raises(PlanInvariantError):
            check_logical_plan(
                LogicalPlan(root=Project(on=("?x", "?z"), child=root),
                            query=chain_query),
                chain_query,
            )

    def test_missing_leaf_rejected(self, chain_query):
        m1, m2, _ = _leaves(chain_query)
        root = Join(on=("?y",), inputs=(m1, m2))
        with pytest.raises(PlanInvariantError, match="cover"):
            check_logical_plan(
                LogicalPlan(root=Project(on=("?x",), child=root),
                            query=chain_query),
                chain_query,
            )

    def test_projection_dropping_live_variable_rejected(self, chain_query):
        m1, m2, m3 = _leaves(chain_query)
        # The inner projection drops distinguished ?x mid-plan; every
        # join stays locally valid, only the liveness walk catches it.
        j1 = Join(on=("?y",), inputs=(m1, m2))
        pruned = Project(on=("?y", "?z"), child=j1)
        root = Join(on=("?z",), inputs=(pruned, m3))
        with pytest.raises(PlanInvariantError, match="live"):
            check_logical_plan(
                LogicalPlan(root=Project(on=("?z",), child=root),
                            query=chain_query),
                chain_query,
            )


class TestPlanSpace:
    def test_space_is_ho_partial(self, chain_query, chain_result):
        check_plan_space(chain_query, chain_result)

    def test_truncated_space_without_ho_plan_rejected(self):
        # LUBM Q5's MSC space mixes heights 2 and 3: dropping every
        # height-optimal plan must trip the HO-partiality check.
        from repro.workloads.lubm_queries import all_queries

        query = next(q for q in all_queries() if q.name == "Q5")
        result = cliquesquare(query, MSC)
        optimal = optimal_height(query)
        taller = [p for p in result.plans if height(p) > optimal]
        assert taller, "Q5's space no longer mixes heights?"
        pruned = type(result)(
            query=query,
            option=result.option,
            plans=taller,
            truncated=True,
        )
        with pytest.raises(PlanInvariantError, match="height"):
            check_plan_space(query, pruned)


class TestPhysicalAndCompiled:
    def test_translated_and_compiled_pass(self, chain_result, chain_query):
        plan = chain_result.plans[0]
        physical = translate(plan)
        check_physical_plan(physical, chain_query)
        compiled = compile_plan(physical)
        check_compiled_plan(compiled, physical, plan)


class TestRuntimeHook:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_PLANS", raising=False)
        assert not plans_checked()

    def test_enabled_by_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_PLANS", "1")
        assert plans_checked()

    def test_maybe_check_runs_when_enabled(self, monkeypatch, chain_query):
        monkeypatch.setenv("REPRO_CHECK_PLANS", "1")
        m1, m2, _ = _leaves(chain_query)
        bad = LogicalPlan(
            root=Project(on=("?x",), child=Join(on=("?y",), inputs=(m1, m2))),
            query=chain_query,
        )
        with pytest.raises(PlanInvariantError):
            maybe_check(bad, query=chain_query)
        monkeypatch.delenv("REPRO_CHECK_PLANS")
        maybe_check(bad, query=chain_query)  # no-op when disabled


class TestCorpus:
    def test_small_sweep(self):
        summary = sweep_corpus(synthetic=6, seed=42, max_patterns=5)
        assert summary["queries"] >= 14  # LUBM alone contributes 14
        assert summary["plans"] > 0
        assert summary["compiled"] > 0
