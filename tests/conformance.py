"""The reusable answer-equality conformance harness.

Every execution configuration of this system — execution backend
(serial / thread / process), deployment (unsharded, sharded in-process,
sharded over RPC), submission surface (submit, prepare/bind/execute,
submit_batch) — must produce **bit-identical answers** and **field-wise
identical execution reports** to the single-store serial reference.
Earlier PRs each re-proved this ad hoc for the configuration they
added; this module is the one shared proof, and
``tests/test_conformance.py`` runs it over the whole matrix on all 14
LUBM queries.  New backends, transports or surfaces extend the matrix
here instead of growing new copies of the check.

Also home to the environment probes (``PROCESS_OK``, ``RPC_OK``) other
test modules share: sandboxed environments without working process
pools or localhost sockets skip the cells that need them.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass

import pytest

from repro.mapreduce.counters import ExecutionReport
from repro.service import QueryOutcome, QueryService, ServiceConfig


@functools.lru_cache(maxsize=None)
def process_pools_work() -> bool:
    """True when this machine can actually run a process pool.

    Probes with a builtin: pickling a class defined in a still-importing
    module would deadlock on the import lock (the pool's feeder thread
    re-imports the half-imported module).
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(abs, -1).result(timeout=60) == 1
    except Exception:
        return False


@functools.lru_cache(maxsize=None)
def rpc_workers_work() -> bool:
    """True when a shard server process can be spawned and spoken to
    (needs working process spawning *and* localhost sockets)."""
    try:
        from repro.cluster.rpc import ShardWorkerClient, Stats, StatsReply

        client = ShardWorkerClient(
            shard=0, num_nodes=2, num_shards=1, spawn_timeout=30
        )
        try:
            client.start()
            return isinstance(client.request(Stats()), StatsReply)
        finally:
            client.close()
    except Exception:
        return False


def __getattr__(name: str):
    """Lazy probe attributes: importing this module stays free; the
    process/RPC probes run only when a suite actually asks for them
    (test_backends pays for PROCESS_OK, test_rpc for RPC_OK — never
    both unless both are needed)."""
    if name == "PROCESS_OK":
        return process_pools_work()
    if name == "RPC_OK":
        return rpc_workers_work()
    if name == "needs_process":
        return pytest.mark.skipif(
            not process_pools_work(),
            reason="process pools unavailable in this environment",
        )
    if name == "needs_rpc":
        return pytest.mark.skipif(
            not rpc_workers_work(),
            reason="RPC shard workers unavailable in this environment",
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# -- the conformance matrix ----------------------------------------------------

#: deployment id -> ServiceConfig fields
DEPLOYMENTS: dict[str, dict] = {
    "unsharded": {"shards": 0},
    "shards1-inproc": {"shards": 1, "shard_transport": "inproc"},
    "shards4-inproc": {"shards": 4, "shard_transport": "inproc"},
    "shards1-rpc": {"shards": 1, "shard_transport": "rpc"},
    "shards4-rpc": {"shards": 4, "shard_transport": "rpc"},
}

BACKENDS = ("serial", "thread", "process", "columnar")

SURFACES = ("submit", "prepare", "batch")

#: rpc concurrency mode id -> ServiceConfig overrides.  "pipelined"
#: multiplexes many outstanding requests on each shard socket;
#: "coalesced" additionally merges concurrent queries' levels into
#: shared ExecuteBatch frames inside a short window.
RPC_MODES: dict[str, dict] = {
    "pipelined": {"rpc_pipeline": 8},
    "coalesced": {
        "rpc_pipeline": 8,
        "coalesce_window_ms": 2.0,
        "coalesce_max_batch": 8,
    },
}

#: row encodings of the rpc shard exchanges
RPC_WIRES = ("pickle", "columnar")


def skip_unless_supported(deployment: str, backend: str) -> None:
    """Skip a matrix cell whose environment requirements are unmet."""
    if backend == "process" and not process_pools_work():
        pytest.skip("process pools unavailable in this environment")
    if backend == "columnar":
        from repro.columnar import columnar_available

        if not columnar_available():
            pytest.skip(
                "columnar backend needs numpy (or "
                "REPRO_COLUMNAR_FORCE_FALLBACK=1 for the stdlib path)"
            )
    if (
        DEPLOYMENTS[deployment].get("shard_transport") == "rpc"
        and not rpc_workers_work()
    ):
        pytest.skip("RPC shard workers unavailable in this environment")


def make_service(graph, backend: str, deployment: str, **overrides) -> QueryService:
    """A service for one matrix cell.

    The result cache is disabled so every surface truly executes (a
    cached answer would make cross-surface equality vacuous); plan and
    template caches stay on — binding reuse across surfaces is exactly
    the path being verified.
    """
    # REPRO_TRACE=1 re-runs the whole matrix with per-query tracing on
    # (CI's obs-smoke job): answers and reports must stay identical
    # while every submission records its span tree across the wire.
    overrides.setdefault(
        "tracing", os.environ.get("REPRO_TRACE", "") == "1"
    )
    config = ServiceConfig(
        result_cache_size=0,
        backend=backend,
        backend_workers=2,
        **DEPLOYMENTS[deployment],
        **overrides,
    )
    return QueryService(graph, config)


# -- expected answers ----------------------------------------------------------


@dataclass(frozen=True)
class Expected:
    """Reference answer + report of one query on the serial single store."""

    name: str
    attrs: tuple[str, ...]
    rows: frozenset
    num_jobs: int
    job_signature: str
    levels: tuple[tuple[str, ...], ...]
    response_time: float
    total_work: float
    #: per job (name, map_time, reduce_time, overhead, map_only,
    #: tuples_shuffled, output_tuples, total_work), in report order
    jobs: tuple[tuple, ...]


def _report_fields(report: ExecutionReport) -> tuple:
    return (
        report.num_jobs,
        report.job_signature(),
        tuple(tuple(level) for level in report.levels),
        report.response_time,
        report.total_work,
        tuple(
            (
                j.name,
                j.map_time,
                j.reduce_time,
                j.overhead,
                j.map_only,
                j.tuples_shuffled,
                j.output_tuples,
                j.total_work,
            )
            for j in report.jobs
        ),
    )


def expected_of(name: str, outcome: QueryOutcome) -> Expected:
    num_jobs, signature, levels, rt, work, jobs = _report_fields(outcome.report)
    return Expected(
        name=name,
        attrs=outcome.attrs,
        rows=frozenset(outcome.rows),
        num_jobs=num_jobs,
        job_signature=signature,
        levels=levels,
        response_time=rt,
        total_work=work,
        jobs=jobs,
    )


def reference_answers(service: QueryService, queries) -> dict[str, Expected]:
    """Run *queries* on the reference service; key expectations by name."""
    return {q.name: expected_of(q.name, service.submit(q)) for q in queries}


def run_surface(service: QueryService, queries, surface: str):
    """Submit *queries* through one of the service's three surfaces."""
    if surface == "submit":
        return [service.submit(q) for q in queries]
    if surface == "prepare":
        outcomes = []
        for q in queries:
            prepared = service.prepare(q)
            outcomes.append(prepared.bind().execute())
        return outcomes
    if surface == "batch":
        return service.submit_batch(list(queries))
    raise ValueError(f"unknown surface {surface!r}")


def assert_conforms(expected: Expected, outcome: QueryOutcome, where: str) -> None:
    """Answer equality plus field-wise ExecutionReport consistency.

    Transport/backend labels (``report.backend``, ``report.shards``,
    ``report.transport``, ``report.shard_bytes``) are the *only* report
    fields allowed to differ across the matrix — they describe how the
    work ran, everything else describes the work itself and must match
    the reference exactly.
    """
    assert outcome.attrs == expected.attrs, where
    assert frozenset(outcome.rows) == expected.rows, where
    num_jobs, signature, levels, rt, work, jobs = _report_fields(outcome.report)
    assert num_jobs == expected.num_jobs, where
    assert signature == expected.job_signature, where
    assert outcome.job_signature == expected.job_signature, where
    assert levels == expected.levels, where
    assert rt == pytest.approx(expected.response_time), where
    assert work == pytest.approx(expected.total_work), where
    assert len(jobs) == len(expected.jobs), where
    for mine, theirs in zip(jobs, expected.jobs):
        assert mine[0] == theirs[0], where  # job name
        assert mine[1] == pytest.approx(theirs[1]), where  # map_time
        assert mine[2] == pytest.approx(theirs[2]), where  # reduce_time
        assert mine[3] == pytest.approx(theirs[3]), where  # overhead
        assert mine[4] == theirs[4], where  # map_only
        assert mine[5] == theirs[5], where  # tuples_shuffled
        assert mine[6] == theirs[6], where  # output_tuples
        assert mine[7] == pytest.approx(theirs[7]), where  # total_work


def assert_surface_conforms(
    service: QueryService,
    queries,
    reference: dict[str, Expected],
    surface: str,
    where: str = "",
) -> None:
    """Run one surface over *queries* and check every outcome."""
    outcomes = run_surface(service, queries, surface)
    assert len(outcomes) == len(queries), (where, surface)
    for query, outcome in zip(queries, outcomes):
        assert not isinstance(outcome, BaseException), (where, surface, outcome)
        assert_conforms(
            reference[query.name], outcome, f"{where}/{surface}/{query.name}"
        )


def assert_concurrent_conforms(
    service: QueryService,
    queries,
    reference: dict[str, Expected],
    threads: int = 4,
    where: str = "",
) -> None:
    """The concurrent=N dimension: *threads* driver threads each submit
    the full workload, rotated so different threads sit on different
    queries at any instant (a mixed concurrent load, not a stampede on
    one key), and every outcome must conform to the serial reference.
    """
    queries = list(queries)
    rotations = [
        queries[i % len(queries):] + queries[: i % len(queries)]
        for i in range(threads)
    ]
    results: list[object] = [None] * threads

    def run(i: int) -> None:
        try:
            results[i] = [service.submit(q) for q in rotations[i]]
        except BaseException as exc:  # surfaced by the main thread
            results[i] = exc

    workers = [
        threading.Thread(target=run, args=(i,), name=f"conform-driver-{i}")
        for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=600)
    assert all(not w.is_alive() for w in workers), (where, "hung driver")
    for i, outcomes in enumerate(results):
        assert not isinstance(outcomes, BaseException), (where, i, outcomes)
        assert len(outcomes) == len(rotations[i]), (where, i)
        for query, outcome in zip(rotations[i], outcomes):
            assert_conforms(
                reference[query.name],
                outcome,
                f"{where}/concurrent{threads}:t{i}/{query.name}",
            )


def assert_rebalance_conforms(
    service: QueryService,
    queries,
    reference: dict[str, Expected],
    plan=(5, 3),
    threads: int = 4,
    where: str = "",
):
    """The rebalance dimension: answers invariant while the topology moves.

    *threads* driver threads keep the rotated workload continuously in
    flight while the main thread walks the shard count through *plan*
    (live grow/shrink migrations).  Every in-flight outcome — started
    before, during, or after a migration — must conform to the serial
    reference, and after each flip the main thread re-runs the full
    workload at the new epoch.  Returns the
    :class:`~repro.cluster.router.RebalanceReport` per step.
    """
    queries = list(queries)
    rotations = [
        queries[i % len(queries):] + queries[: i % len(queries)]
        for i in range(threads)
    ]
    stop = threading.Event()
    results: list[object] = [None] * threads

    def run(i: int) -> None:
        try:
            outcomes = []
            # Bounded: keep load on until every migration is done, but
            # never spin forever if the main thread dies first.
            while not stop.is_set() and len(outcomes) < 40 * len(queries):
                for query in rotations[i]:
                    outcomes.append((query.name, service.submit(query)))
            results[i] = outcomes
        except BaseException as exc:  # surfaced by the main thread
            results[i] = exc

    workers = [
        threading.Thread(target=run, args=(i,), name=f"rebalance-driver-{i}")
        for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    reports = []
    try:
        for target in plan:
            # Let the drivers get queries in flight against the current
            # epoch before moving it underneath them.
            time.sleep(0.05)
            report = service.rebalance(target_shards=target)
            reports.append(report)
            for query in queries:
                assert_conforms(
                    reference[query.name],
                    service.submit(query),
                    f"{where}/epoch{report.new_epoch}/{query.name}",
                )
    finally:
        stop.set()
    for worker in workers:
        worker.join(timeout=600)
    assert all(not w.is_alive() for w in workers), (where, "hung driver")
    for i, outcomes in enumerate(results):
        assert not isinstance(outcomes, BaseException), (where, i, outcomes)
        assert outcomes, (where, i, "driver made no progress")
        for name, outcome in outcomes:
            assert_conforms(
                reference[name], outcome, f"{where}/rebalance:t{i}/{name}"
            )
    return reports
