"""Cross-module integration properties tying the whole pipeline together.

These tests exercise invariants that span several subsystems at once:
optimizer -> cost model -> physical translation -> job compilation ->
simulated execution -> answers.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC, MSC_PLUS
from repro.core.logical import Join, Match
from repro.core.properties import height
from repro.cost.cardinality import CardinalityEstimator, CatalogStatistics
from repro.cost.model import PlanCoster, is_first_level_join
from repro.mapreduce.engine import ClusterConfig
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.physical.job_compiler import compile_plan
from repro.physical.translate import translate
from repro.rdf.graph import RDFGraph
from repro.sparql.evaluator import evaluate
from repro.workloads import lubm
from repro.workloads.lubm_queries import all_queries
from tests.conftest import random_connected_query


@pytest.fixture(scope="module")
def small_world():
    graph = lubm.generate(
        lubm.LUBMConfig(universities=4, undergraduates_per_department=5)
    )
    store = partition_graph(graph, 5)
    executor = PlanExecutor(store, ClusterConfig(num_nodes=5))
    stats = CatalogStatistics.from_graph(graph)
    coster = PlanCoster(CardinalityEstimator(stats))
    return graph, executor, coster


class TestHeightJobRelationship:
    def test_jobs_bounded_by_height(self, small_world):
        """A plan of height h needs at most h jobs, at least 1 (§5.3:
        one job per reduce join; first-level joins ride in map tasks)."""
        graph, executor, _ = small_world
        for q in all_queries():
            for plan in cliquesquare(q, MSC, timeout_s=20).unique_plans()[:3]:
                compiled = compile_plan(translate(plan))
                assert 1 <= compiled.num_jobs <= max(height(plan), 1), q.name

    def test_flatter_plans_never_need_more_jobs_q12(self, small_world):
        graph, executor, coster = small_world
        q = next(x for x in all_queries() if x.name == "Q12")
        plans = cliquesquare(q, MSC, timeout_s=20).unique_plans()
        jobs = {compile_plan(translate(p)).num_jobs for p in plans}
        heights = {height(p) for p in plans}
        assert min(jobs) <= min(heights)


class TestCostModelGuidesWell:
    def test_cheapest_msc_plan_is_among_fastest(self, small_world):
        """The §5.4-selected plan's simulated time is within 2x of the
        best plan in the MSC space (the cost model is a guide, §5.4)."""
        graph, executor, coster = small_world
        for q in all_queries():
            if len(q.patterns) < 4 or len(q.patterns) > 8:
                continue
            plans = cliquesquare(q, MSC, timeout_s=20).unique_plans()
            if len(plans) < 2:
                continue
            times = {id(p): executor.execute(p).response_time for p in plans}
            chosen = min(plans, key=coster.cost)
            best = min(times.values())
            assert times[id(chosen)] <= 2.0 * best, q.name

    def test_estimates_positive_for_live_patterns(self, small_world):
        graph, _, coster = small_world
        for q in all_queries():
            for tp in q.patterns:
                card = coster.estimator.pattern_cardinality(tp)
                assert card > 0, (q.name, tp)


class TestFirstLevelJoinInvariant:
    def test_msc_first_level_joins_are_map_joins(self, small_world):
        """Every first-level join of every plan translates to a map join
        under full 3-way replication (the §5.1 guarantee)."""
        from repro.physical.operators import MapJoin

        graph, executor, _ = small_world
        for q in all_queries():
            plan = cliquesquare(q, MSC, timeout_s=20).plans[0]
            physical = translate(plan)
            logical_fl = sum(
                1
                for op in plan.root.iter_operators()
                if isinstance(op, Join) and is_first_level_join(op)
            )
            physical_mj = sum(
                1
                for op in physical.operators()
                if isinstance(op, MapJoin)
            )
            assert physical_mj == logical_fl, q.name


class TestEndToEndAgainstReference:
    @pytest.mark.parametrize("name", ["Q3", "Q5", "Q9", "Q11", "Q12", "Q14"])
    def test_lubm_queries(self, small_world, name):
        graph, executor, coster = small_world
        q = next(x for x in all_queries() if x.name == name)
        expected = evaluate(q, graph)
        plans = cliquesquare(q, MSC, timeout_s=20).unique_plans()
        chosen = min(plans, key=coster.cost)
        assert executor.execute(chosen).rows == expected

    @given(st.integers(0, 5_000))
    @settings(max_examples=10, deadline=None)
    def test_msc_plus_and_msc_agree_on_answers(self, seed):
        rng = random.Random(seed)
        q = random_connected_query(rng, rng.randint(2, 4))
        g = RDFGraph(validate=False)
        data_rng = random.Random(seed + 1)
        vals = [f"<e{i}>" for i in range(5)]
        for i in range(50):
            g.add(data_rng.choice(vals), f"p{data_rng.randrange(4)}", data_rng.choice(vals))
        store = partition_graph(g, 3)
        executor = PlanExecutor(store, ClusterConfig(num_nodes=3))
        expected = evaluate(q, g)
        for option in (MSC, MSC_PLUS):
            result = cliquesquare(q, option, timeout_s=15)
            if result.plans:
                assert executor.execute(result.plans[0]).rows == expected


class TestMatchLeafInvariants:
    def test_every_plan_has_exactly_the_query_leaves(self, small_world):
        graph, _, _ = small_world
        for q in all_queries():
            for plan in cliquesquare(q, MSC, timeout_s=20).unique_plans()[:5]:
                leaves = [
                    op for op in plan.root.iter_operators() if isinstance(op, Match)
                ]
                assert {m.pattern for m in leaves} == set(q.patterns)
                # no duplicated Match operators in tree plans (MSC covers
                # are minimum, hence exact on these queries' graphs only
                # when disjoint; duplicates may legitimately appear via
                # overlapping cliques, but each distinct pattern at least
                # appears once)
                assert len({m.pattern for m in leaves}) == len(q.patterns)
