"""End-to-end executor tests: distributed answers == reference evaluator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import cliquesquare
from repro.core.binary import best_bushy_plan, best_linear_plan
from repro.core.decomposition import MSC, MSC_PLUS
from repro.cost.params import CostParams
from repro.mapreduce.engine import ClusterConfig
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.rdf.graph import RDFGraph
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import parse_query
from tests.conftest import random_connected_query


@pytest.fixture(scope="module")
def executor(university_graph=None):
    from tests.conftest import make_university_graph

    graph = make_university_graph()
    store = partition_graph(graph, 7)
    return graph, PlanExecutor(store)


def run_and_compare(graph, executor, query_text, option=MSC):
    query = parse_query(query_text)
    expected = evaluate(query, graph)
    plans = cliquesquare(query, option, timeout_s=30).unique_plans()
    results = []
    for plan in plans[:6]:
        result = executor.execute(plan)
        assert result.rows == expected, f"plan {plan} wrong"
        results.append(result)
    return results


class TestCorrectness:
    def test_single_pattern(self, executor):
        graph, ex = executor
        run_and_compare(graph, ex, "SELECT ?p ?d WHERE { ?p ub:worksFor ?d }")

    def test_pattern_with_constant_object(self, executor):
        graph, ex = executor
        run_and_compare(
            graph, ex, "SELECT ?d WHERE { ?d ub:subOrganizationOf <univ0> }"
        )

    def test_rdf_type_pattern(self, executor):
        graph, ex = executor
        run_and_compare(graph, ex, "SELECT ?x WHERE { ?x rdf:type ub:FullProfessor }")

    def test_map_only_star_join(self, executor):
        graph, ex = executor
        results = run_and_compare(
            graph,
            ex,
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?d ub:subOrganizationOf <univ0> }",
        )
        assert any(r.job_signature() == "M" for r in results)

    def test_two_level_plan(self, executor):
        graph, ex = executor
        results = run_and_compare(
            graph,
            ex,
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?p rdf:type ub:FullProfessor . ?s rdf:type ub:Student }",
        )
        assert any(r.num_jobs >= 1 for r in results)

    def test_empty_answer(self, executor):
        graph, ex = executor
        run_and_compare(
            graph, ex, "SELECT ?p WHERE { ?p ub:worksFor <no-such-dept> }"
        )

    def test_binary_plans_agree(self, executor, university_coster):
        graph, ex = executor
        text = (
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?d ub:subOrganizationOf <univ0> . ?p rdf:type ub:FullProfessor }"
        )
        query = parse_query(text)
        expected = evaluate(query, graph)
        for plan_fn in (best_bushy_plan, best_linear_plan):
            plan, _ = plan_fn(query, university_coster.cost)
            assert ex.execute(plan).rows == expected

    def test_msc_plus_plans_agree(self, executor):
        graph, ex = executor
        run_and_compare(
            graph,
            ex,
            "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?s ub:emailAddress ?e }",
            option=MSC_PLUS,
        )


class TestReports:
    def test_map_only_report(self, executor):
        graph, ex = executor
        q = parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }")
        plan = cliquesquare(q, MSC).plans[0]
        result = ex.execute(plan)
        assert result.num_jobs == 1
        assert result.report.jobs[0].map_only
        assert result.report.response_time > 0
        assert result.report.total_work >= result.report.response_time

    def test_job_overhead_increases_response(self):
        from tests.conftest import make_university_graph

        graph = make_university_graph()
        store = partition_graph(graph, 7)
        q = parse_query(
            "SELECT ?x WHERE { ?x p1 ?y . ?y p2 ?z }"
        )
        free = PlanExecutor(store, params=CostParams(job_overhead=0.0))
        paid = PlanExecutor(store, params=CostParams(job_overhead=500.0))
        plan = cliquesquare(q, MSC).plans[0]
        assert (
            paid.execute(plan).response_time
            >= free.execute(plan).response_time + 500.0 - 1e-9
        )

    def test_deeper_plans_need_more_jobs(self, executor, university_coster):
        graph, ex = executor
        text = (
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?d ub:subOrganizationOf <univ0> . ?p rdf:type ub:FullProfessor }"
        )
        query = parse_query(text)
        msc_best = min(
            cliquesquare(query, MSC).unique_plans(),
            key=university_coster.cost,
        )
        linear, _ = best_linear_plan(query, university_coster.cost)
        assert ex.execute(msc_best).num_jobs <= ex.execute(linear).num_jobs


class TestRandomizedAgainstReference:
    @given(st.integers(0, 10_000), st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_random_queries_random_data(self, seed, n):
        rng = random.Random(seed)
        query = random_connected_query(rng, n)
        g = RDFGraph(validate=False)
        values = [f"<e{i}>" for i in range(5)]
        data_rng = random.Random(seed * 31 + n)
        for i in range(70):
            g.add(
                data_rng.choice(values),
                f"p{data_rng.randrange(n)}",
                data_rng.choice(values),
            )
        expected = evaluate(query, g)
        store = partition_graph(g, 4)
        ex = PlanExecutor(store, ClusterConfig(num_nodes=4))
        for plan in cliquesquare(query, MSC, timeout_s=20).unique_plans()[:4]:
            assert ex.execute(plan).rows == expected
