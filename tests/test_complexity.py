"""Tests for the §4.5 complexity bounds (Fig. 8)."""

import pytest

from repro.core.algorithm import cliquesquare
from repro.core.complexity import (
    DECOMPOSITION_BOUNDS,
    d_msc,
    d_msc_plus,
    d_mxc,
    d_mxc_plus,
    d_sc,
    d_sc_plus,
    d_xc,
    d_xc_plus,
    decomposition_bound,
    fig8_table,
    max_maximal_cliques,
    max_partial_cliques,
    reduction_bound,
    stirling2,
)
from repro.core.decomposition import ALL_OPTIONS, decompositions
from repro.core.variable_graph import VariableGraph
from repro.workloads.synthetic import chain_query, star_query


class TestStirling:
    def test_base_cases(self):
        assert stirling2(0, 0) == 1
        assert stirling2(3, 0) == 0
        assert stirling2(0, 2) == 0
        assert stirling2(5, 5) == 1

    def test_known_values(self):
        assert stirling2(4, 2) == 7
        assert stirling2(5, 2) == 15
        assert stirling2(5, 3) == 25
        assert stirling2(6, 3) == 90

    def test_recurrence(self):
        for n in range(2, 8):
            for k in range(1, n):
                assert stirling2(n, k) == k * stirling2(n - 1, k) + stirling2(
                    n - 1, k - 1
                )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            stirling2(-1, 2)


class TestBoundFormulas:
    def test_fig8_values_n4(self):
        """Spot-check the Fig. 8 closed forms at n=4 (ceil(n/2)=2)."""
        assert d_mxc_plus(4) == 10  # C(5,2)
        assert d_msc_plus(4) == 36  # C(9,2)
        assert d_mxc(4) == 7  # {4 2}
        assert d_msc(4) == 105  # C(15,2)
        assert d_xc_plus(4) == sum((5, 10, 10))  # C(5,1)+C(5,2)+C(5,3)
        assert d_xc(4) == 0 + 1 + 7 + 6  # {4,0}+{4,1}+{4,2}+{4,3}
        assert d_sc_plus(4) == 9 + 36 + 84
        assert d_sc(4) == 15 + 105 + 455

    def test_bounds_ordering(self):
        """Partial-clique bounds dominate maximal ones; all-cover bounds
        dominate minimum ones (matching Fig. 7's inclusion directions)."""
        for n in range(3, 9):
            assert d_msc(n) >= d_msc_plus(n) >= d_mxc_plus(n)
            assert d_sc(n) >= d_sc_plus(n)
            assert d_sc(n) >= d_msc(n)
            assert d_xc(n) >= d_mxc(n)

    def test_lemma_bounds(self):
        assert max_maximal_cliques(5) == 11
        assert max_partial_cliques(5) == 31

    def test_n1_has_no_decompositions(self):
        for name in DECOMPOSITION_BOUNDS:
            assert decomposition_bound(name, 1) == 0

    def test_unknown_option(self):
        with pytest.raises(ValueError):
            decomposition_bound("ZZZ", 4)

    def test_fig8_table_has_all_options(self):
        table = fig8_table(6)
        assert set(table) == {o.name for o in ALL_OPTIONS}
        assert all(v > 0 for v in table.values())


class TestBoundsAreUpperBounds:
    """Measured decomposition counts never exceed the Fig. 8 bounds."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_chain_counts_bounded(self, n):
        g = VariableGraph.from_query(chain_query(n))
        for option in ALL_OPTIONS:
            count = sum(1 for _ in decompositions(g, option))
            assert count <= decomposition_bound(option.name, n), option.name

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_star_counts_bounded(self, n):
        g = VariableGraph.from_query(star_query(n))
        for option in ALL_OPTIONS:
            count = sum(1 for _ in decompositions(g, option))
            assert count <= decomposition_bound(option.name, n), option.name


class TestReductionBound:
    def test_t1_is_one(self):
        assert reduction_bound("MSC", 1) == 1

    def test_minimum_options_recurse_on_half(self):
        # T(4) = D(4) * T(2) = D(4) * D(2) * T(1) for minimum options
        assert reduction_bound("MXC", 4) == d_mxc(4) * d_mxc(2)

    def test_non_minimum_options_recurse_on_n_minus_1(self):
        assert reduction_bound("XC", 3) == d_xc(3) * d_xc(2)

    def test_total_plans_bounded_by_reduction_bound(self):
        """The number of plans CliqueSquare builds never exceeds T(n)."""
        for n in (2, 3, 4):
            q = chain_query(n)
            for option in ALL_OPTIONS:
                result = cliquesquare(q, option, max_plans=None, timeout_s=30)
                assert result.plan_count <= reduction_bound(option.name, n)
