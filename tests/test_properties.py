"""Tests for plan properties and HO analysis (§4.4, Figs. 7 and 9)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import cliquesquare
from repro.core.decomposition import (
    ALL_OPTIONS,
    MSC,
    MSC_PLUS,
    MXC,
    MXC_PLUS,
    SC,
    SC_PLUS,
    XC,
    XC_PLUS,
)
from repro.core.logical import Join, Match, make_join
from repro.core.properties import (
    analyze_plan_space,
    height,
    is_binary,
    max_join_fanin,
    operator_height,
    optimal_height,
    plan_space_signatures,
)
from repro.sparql.ast import TriplePattern
from repro.sparql.parser import parse_query
from repro.workloads.synthetic import chain_query, star_query
from tests.conftest import fig14_query, random_connected_query

#: HO classification of Fig. 9.
HO_PARTIAL = (SC_PLUS, MSC_PLUS, MSC)
HO_LOSSY = (MXC_PLUS, XC_PLUS, MXC, XC)


class TestHeight:
    def test_match_height_zero(self):
        assert operator_height(Match(TriplePattern("?a", "p", "?b"))) == 0

    def test_nested_joins(self):
        t1, t2, t3 = (TriplePattern(f"?v{i}", f"p{i}", f"?v{i+1}") for i in range(3))
        j1 = make_join([Match(t1), Match(t2)])
        j2 = make_join([j1, Match(t3)])
        assert operator_height(j1) == 1
        assert operator_height(j2) == 2

    def test_height_is_longest_path(self):
        # unbalanced join: deep left branch, shallow right branch
        t = [TriplePattern("?x", f"p{i}", "?y") for i in range(4)]
        deep = make_join([make_join([Match(t[0]), Match(t[1])]), Match(t[2])])
        top = make_join([deep, Match(t[3])])
        assert operator_height(top) == 3

    def test_fanin_and_binary(self):
        q = star_query(4)
        plan = cliquesquare(q, MSC).plans[0]
        assert max_join_fanin(plan) == 4
        assert not is_binary(plan)


class TestOptimalHeight:
    def test_star_is_one(self):
        assert optimal_height(star_query(7)) == 1

    def test_chain_is_log(self):
        assert optimal_height(chain_query(8)) == 3

    def test_msc_reference_matches_full_sc_space(self):
        """On small queries, MSC's minimum height equals SC's (HO-partial).

        SC is only exhausted for n <= 4 — its space explodes beyond that
        (which is the paper's point in Fig. 16).
        """
        rng = random.Random(12)
        for n in (2, 3, 4):
            q = random_connected_query(rng, n)
            msc_min = optimal_height(q)
            sc = cliquesquare(q, SC, max_plans=300_000, timeout_s=60)
            assert not sc.truncated
            assert min(height(p) for p in sc.plans) == msc_min


class TestFig9Classification:
    def test_ho_partial_options_always_find_an_ho_plan(self):
        rng = random.Random(99)
        queries = [random_connected_query(rng, n) for n in (3, 4, 5)] + [
            chain_query(5),
            star_query(5),
            fig14_query(),
        ]
        for q in queries:
            opt = optimal_height(q)
            for option in HO_PARTIAL:
                result = cliquesquare(q, option, timeout_s=30)
                assert result.plans, (q, option.name)
                assert min(height(p) for p in result.plans) == opt, option.name

    def test_ho_lossy_witnesses(self, fig10_query, fig14):
        """Fig. 10 kills MXC+/XC+; Fig. 14 kills MXC/XC."""
        for option in (MXC_PLUS, XC_PLUS):
            assert not cliquesquare(fig10_query, option).plans
        opt = optimal_height(fig14)
        for option in (MXC, XC):
            result = cliquesquare(fig14, option, timeout_s=30)
            assert min(height(p) for p in result.plans) > opt, option.name

    def test_msc_not_ho_complete(self, fig11_qx):
        """Fig. 11-13: MSC misses HO plans that SC finds."""
        msc = cliquesquare(fig11_qx, MSC)
        sc = cliquesquare(fig11_qx, SC, timeout_s=30)
        opt = optimal_height(fig11_qx)
        msc_ho = {p.signature() for p in msc.plans if height(p) == opt}
        sc_ho = {p.signature() for p in sc.plans if height(p) == opt}
        assert msc_ho < sc_ho


class TestFig7Inclusions:
    """Plan-space inclusion lattice, checked on small random queries."""

    PAIRS = [
        (MXC_PLUS, XC_PLUS),
        (MXC_PLUS, MSC_PLUS),
        (MXC_PLUS, MXC),
        (XC_PLUS, SC_PLUS),
        (XC_PLUS, XC),
        (MSC_PLUS, SC_PLUS),
        (MSC_PLUS, MSC),
        (MXC, XC),
        (MXC, MSC),
        (SC_PLUS, SC),
        (XC, SC),
        (MSC, SC),
    ]

    @pytest.mark.parametrize("inner,outer", PAIRS, ids=lambda o: o.name)
    def test_inclusion(self, inner, outer):
        rng = random.Random(5)
        for n in (3, 4):
            q = random_connected_query(rng, n)
            small = plan_space_signatures(
                cliquesquare(q, inner, max_plans=None, timeout_s=30)
            )
            large = plan_space_signatures(
                cliquesquare(q, outer, max_plans=None, timeout_s=30)
            )
            assert small <= large, (inner.name, outer.name, q)


class TestAnalyzePlanSpace:
    def test_stats_fields(self, paper_q1):
        stats = analyze_plan_space(paper_q1, MSC, timeout_s=30)
        assert stats.plan_count == 3
        assert stats.unique_count == 3
        assert stats.optimal_height == 3
        assert stats.min_height == 3
        assert stats.ho_count == stats.plan_count  # MSC returns only HO here
        assert stats.optimality_ratio == 1.0
        assert stats.uniqueness_ratio == 1.0
        assert stats.found_optimal

    def test_zero_plans_scores_zero_optimality(self, fig10_query):
        stats = analyze_plan_space(
            fig10_query, MXC_PLUS, reference_height=optimal_height(fig10_query)
        )
        assert stats.plan_count == 0
        assert stats.optimality_ratio == 0.0
        assert stats.uniqueness_ratio == 1.0
        assert not stats.found_optimal


@given(st.integers(0, 100_000), st.integers(2, 5))
@settings(max_examples=20, deadline=None)
def test_msc_heights_never_below_optimum(seed, n):
    """No plan can be flatter than the HO reference."""
    q = random_connected_query(random.Random(seed), n)
    opt = optimal_height(q)
    for option in ALL_OPTIONS:
        result = cliquesquare(q, option, max_plans=2_000, timeout_s=10)
        for plan in result.plans:
            assert height(plan) >= opt
