"""Tests for repro.service: caching, invalidation, concurrency, stats."""

from __future__ import annotations

import random
import threading

import pytest

from repro.service.cache import LRUCache
from repro.service.service import QueryService, ServiceConfig
from repro.service.stats import LatencySummary, percentile
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import parse_query
from repro.systems.csq import CSQ, CSQConfig
from repro.workloads import lubm, lubm_queries

ALL_NAMES = [f"Q{i}" for i in range(1, 15)]


@pytest.fixture(scope="module")
def graph():
    return lubm.generate(lubm.LUBMConfig(universities=4))


@pytest.fixture(scope="module")
def service(graph):
    with QueryService(graph) as svc:
        yield svc


def _rename(query, prefix):
    renamed = {v: f"?{prefix}{i}" for i, v in enumerate(query.variables())}
    body = " . ".join(
        " ".join(renamed.get(t, t) for t in (tp.s, tp.p, tp.o))
        for tp in query.patterns
    )
    head = " ".join(renamed[v] for v in query.distinguished)
    return parse_query(f"SELECT {head} WHERE {{ {body} }}")


class TestAnswers:
    def test_matches_csq_run_for_every_lubm_query(self, graph, service):
        """Acceptance: bit-identical answers to the classic CSQ path."""
        csq = CSQ(graph, CSQConfig(num_nodes=service.config.num_nodes))
        for name in ALL_NAMES:
            q = lubm_queries.query(name)
            assert service.submit(q).rows == csq.run(q).answers, name

    def test_matches_reference_evaluator(self, graph, service):
        for name in ALL_NAMES:
            q = lubm_queries.query(name)
            assert service.submit(q).rows == evaluate(q, graph), name

    def test_accepts_query_strings(self, service):
        out = service.submit(
            "SELECT ?d WHERE { ?p ub:worksFor ?d }", name="adhoc"
        )
        assert out.query.name == "adhoc"
        assert out.cardinality > 0


class TestPlanCache:
    def test_repeat_hits_plan_cache(self, graph):
        with QueryService(graph, ServiceConfig(result_cache_size=0)) as svc:
            q = lubm_queries.query("Q9")
            cold = svc.submit(q)
            warm = svc.submit(q)
            assert not cold.plan_cache_hit
            assert warm.plan_cache_hit and not warm.result_cache_hit
            assert warm.timings.optimize_s == 0.0
            assert warm.rows == cold.rows

    def test_isomorphic_queries_share_plan(self, graph):
        with QueryService(graph, ServiceConfig(result_cache_size=0)) as svc:
            q = lubm_queries.query("Q6")
            cold = svc.submit(q)
            warm = svc.submit(_rename(q, "zz"))
            assert warm.plan_cache_hit
            assert warm.rows == cold.rows
            assert len(svc.plan_cache) == 1

    def test_column_order_follows_each_query(self, graph):
        with QueryService(graph, ServiceConfig(result_cache_size=0)) as svc:
            rows_xy = svc.submit(
                "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }"
            ).rows
            rows_yx = svc.submit(
                "SELECT ?s ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }"
            ).rows
            assert rows_xy == {(p, s) for s, p in rows_yx}


class TestResultCache:
    def test_repeat_hits_result_cache(self, graph):
        with QueryService(graph) as svc:
            q = lubm_queries.query("Q2")
            cold = svc.submit(q)
            warm = svc.submit(q)
            assert not cold.result_cache_hit
            assert warm.result_cache_hit
            assert warm.rows == cold.rows

    def test_mutation_invalidates_results(self):
        graph = lubm.generate(lubm.LUBMConfig(universities=4))
        with QueryService(graph) as svc:
            q = parse_query(
                "SELECT ?x WHERE { ?x rdf:type ub:AssistantProfessor . "
                f"?x ub:doctoralDegreeFrom {lubm.UNIVERSITY0} }}"
            )
            before = svc.submit(q)
            assert svc.submit(q).result_cache_hit
            added = svc.add_triples(
                [
                    ("<NewProf>", "rdf:type", "ub:AssistantProfessor"),
                    ("<NewProf>", "ub:doctoralDegreeFrom", lubm.UNIVERSITY0),
                ]
            )
            assert added == 2
            assert svc.graph_version == before.graph_version + 1
            after = svc.submit(q)
            assert not after.result_cache_hit
            assert after.rows == before.rows | {("<NewProf>",)}
            # Plans survive mutation (still correct, possibly re-costed).
            assert after.plan_cache_hit

    def test_mutation_refreshes_statistics(self, graph):
        svc = QueryService(lubm.generate(lubm.LUBMConfig(universities=4)))
        before = svc.catalog.triple_count
        svc.add_triples([("<s>", "<brand-new-p>", "<o>")])
        assert svc.catalog.triple_count == before + 1
        assert "<brand-new-p>" in svc.catalog.per_property
        assert svc.estimator.stats is svc.catalog
        svc.close()

    def test_duplicate_add_is_noop(self, graph):
        svc = QueryService(lubm.generate(lubm.LUBMConfig(universities=4)))
        triple = next(iter(svc.graph))
        version = svc.graph_version
        assert svc.add_triples([triple]) == 0
        assert svc.graph_version == version
        svc.close()


class TestConcurrency:
    def test_eight_way_parallel_submission_identical_answers(self, graph):
        """Acceptance: concurrency changes nothing about the answers."""
        with QueryService(graph) as svc:
            expected = {
                name: evaluate(lubm_queries.query(name), graph)
                for name in ALL_NAMES
            }
            mix = [lubm_queries.query(n) for n in ALL_NAMES * 2]
            random.Random(11).shuffle(mix)
            results: dict[int, set] = {}
            errors: list[BaseException] = []
            barrier = threading.Barrier(8)

            def worker(worker_id: int) -> None:
                try:
                    barrier.wait()
                    for i, q in enumerate(mix):
                        out = svc.submit(q)
                        assert out.rows == expected[q.name], q.name
                    results[worker_id] = set()
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 8
            snap = svc.snapshot_stats()
            assert snap.submitted == 8 * len(mix)
            # Every shape optimized at most once (single-flight + cache).
            assert snap.plan_misses <= len(ALL_NAMES)

    def test_submit_batch_coalesces_duplicates(self, graph):
        with QueryService(
            graph, ServiceConfig(result_cache_size=0, max_workers=4)
        ) as svc:
            mix = [lubm_queries.query(n) for n in ("Q2", "Q3", "Q2", "Q3", "Q2")]
            outcomes = svc.submit_batch(mix)
            assert [o.query.name for o in outcomes] == [q.name for q in mix]
            assert sum(o.coalesced for o in outcomes) == 3
            expected = {
                n: evaluate(lubm_queries.query(n), graph)
                for n in ("Q2", "Q3")
            }
            for out in outcomes:
                assert out.rows == expected[out.query.name]

    def test_submit_batch_without_dedup(self, graph):
        with QueryService(graph, ServiceConfig(max_workers=4)) as svc:
            mix = [lubm_queries.query("Q4")] * 4
            outcomes = svc.submit_batch(mix, dedup=False)
            assert len(outcomes) == 4
            assert len({frozenset(o.rows) for o in outcomes}) == 1


class TestStats:
    def test_snapshot_counts_and_rates(self, graph):
        with QueryService(graph) as svc:
            q = lubm_queries.query("Q2")
            svc.submit(q)
            svc.submit(q)
            snap = svc.snapshot_stats()
            assert snap.submitted == 2
            assert snap.result_hits == 1 and snap.result_misses == 1
            assert snap.plan_misses == 1
            assert 0.0 < snap.result_hit_rate <= 0.5
            assert snap.throughput_qps > 0
            assert snap.total.count == 2
            assert "plan cache" in snap.format()

    def test_percentile_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 50) == 2.0
        assert percentile(samples, 100) == 4.0
        assert percentile([], 99) == 0.0
        with pytest.raises(ValueError):
            percentile(samples, 101)
        summary = LatencySummary.of(samples)
        assert summary.count == 4 and summary.mean == 2.5


class TestLRUCache:
    def test_eviction_order(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_size_zero_disables(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestLifecycleAndFailure:
    def test_failed_mutation_still_invalidates(self):
        """A mid-batch invalid triple must not leave stale cached results."""
        svc = QueryService(lubm.generate(lubm.LUBMConfig(universities=4)))
        q = lubm_queries.query("Q2")
        svc.submit(q)
        assert svc.submit(q).result_cache_hit
        with pytest.raises(ValueError):
            svc.add_triples(
                [
                    ("<ok>", "<p>", "<o>"),
                    ('"literal"', "<p>", "<o>"),  # rejected by validation
                ]
            )
        # The valid prefix was applied, so the version must have moved on.
        assert svc.graph_version == 1
        assert not svc.submit(q).result_cache_hit
        svc.close()

    def test_closed_service_rejects_work(self, graph):
        svc = QueryService(graph)
        q = lubm_queries.query("Q2")
        svc.submit(q)
        svc.close()
        with pytest.raises(RuntimeError):
            svc.submit(q)
        with pytest.raises(RuntimeError):
            svc.submit_batch([q, q])
        with pytest.raises(RuntimeError):
            svc.add_triples([("<s>", "<p>", "<o>")])


class TestBatchErrorIsolation:
    def test_return_exceptions_isolates_failures(self, graph):
        with QueryService(graph) as svc:
            good = lubm_queries.query("Q2")
            outcomes = svc.submit_batch(
                [good, "SELECT ?x WHERE { ?x p }", good],
                return_exceptions=True,
            )
            assert len(outcomes) == 3
            assert outcomes[0].rows == outcomes[2].rows
            assert isinstance(outcomes[1], ValueError)

    def test_default_propagates_first_failure(self, graph):
        with QueryService(graph) as svc:
            with pytest.raises(ValueError):
                svc.submit_batch(
                    [lubm_queries.query("Q2"), "SELECT ?x WHERE { ?x p }"]
                )

    def test_batch_timings_populated(self, graph):
        with QueryService(graph, ServiceConfig(result_cache_size=0)) as svc:
            outcomes = svc.submit_batch(
                [lubm_queries.query("Q2"), lubm_queries.query("Q2")]
            )
            for out in outcomes:
                assert out.timings.total_s > 0
            assert any(o.timings.canonicalize_s > 0 for o in outcomes)


class TestMutationSwapsCostModel:
    def test_estimator_and_coster_rebuilt(self, graph):
        svc = QueryService(lubm.generate(lubm.LUBMConfig(universities=4)))
        old_estimator, old_coster = svc.estimator, svc.coster
        svc.add_triples([("<s>", "<p-new>", "<o>")])
        assert svc.estimator is not old_estimator
        assert svc.coster is not old_coster
        assert svc.estimator.stats is svc.catalog
        # The CSQ session surface tracks the swap instead of going stale.
        csq = CSQ(svc.graph, service=svc)
        assert csq.estimator is svc.estimator
        svc.add_triples([("<s2>", "<p-new2>", "<o2>")])
        assert csq.estimator is svc.estimator
        assert csq.stats is svc.catalog
        svc.close()


class TestUncacheableQueries:
    def test_symmetric_queries_served_in_batch(self, graph):
        # Automorphic queries exceed a tiny canonicalization budget and
        # bypass the caches, but a batch must still answer them (and on
        # the pool, not serially on the calling thread).
        sym = parse_query(
            "SELECT ?a ?b WHERE { ?a ub:advisor ?b . ?b ub:advisor ?a }"
        )
        q2 = lubm_queries.query("Q2")
        with QueryService(graph, ServiceConfig(canonical_budget=2)) as svc:
            outcomes = svc.submit_batch([sym, q2, sym])
            assert [o.cacheable for o in outcomes] == [False, True, False]
            assert outcomes[0].rows == outcomes[2].rows
            assert outcomes[1].rows == evaluate(q2, graph)
            assert len(svc.plan_cache) == 1  # only Q2's shape was cached

    def test_plan_cache_entry_is_slim(self, graph):
        with QueryService(graph, ServiceConfig(result_cache_size=0)) as svc:
            q = lubm_queries.query("Q9")
            svc.submit(q)
            (entry,) = list(svc.plan_cache._data.values())
            # The entry summarizes the enumeration instead of pinning the
            # optimizer's full plan list (unbounded memory per shape).
            assert not hasattr(entry, "optimizer")
            assert entry.plan_count > 0
            assert entry.truncated is False
