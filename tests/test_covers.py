"""Unit and property tests for cover enumeration (repro.core.covers)."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covers import (
    EnumerationBudget,
    iter_exact_covers,
    iter_irredundant_covers,
    iter_simple_covers,
    masks_of,
    minimum_covers,
)


def brute_force_covers(n, masks, max_size, exact=False):
    """All covers by direct subset enumeration (ground truth)."""
    full = (1 << n) - 1
    out = set()
    for size in range(1, max_size + 1):
        for combo in combinations(range(len(masks)), size):
            union = 0
            disjoint = True
            acc = 0
            for j in combo:
                if acc & masks[j]:
                    disjoint = False
                union |= masks[j]
                acc |= masks[j]
            if union == full and (not exact or disjoint):
                out.add(tuple(sorted(combo)))
    return out


class TestSimpleCovers:
    def test_matches_brute_force_small(self):
        n = 4
        sets = [{0, 1}, {1, 2}, {2, 3}, {0}, {3}, {1, 3}]
        masks = masks_of(n, sets)
        got = {tuple(sorted(c)) for c in iter_simple_covers(n, masks, n - 1)}
        assert got == brute_force_covers(n, masks, n - 1)

    def test_includes_redundant_covers(self):
        # {0,1} ∪ {1,2} covers; adding {1} is redundant but still a cover
        n = 3
        masks = masks_of(n, [{0, 1}, {1, 2}, {1}])
        got = {tuple(sorted(c)) for c in iter_simple_covers(n, masks, 2)}
        assert (0, 1) in got
        # size cap is respected: the 3-set cover exceeds max_size=2
        assert all(len(c) <= 2 for c in got)

    def test_no_duplicates(self):
        n = 5
        sets = [{i, (i + 1) % 5} for i in range(5)] + [{i} for i in range(5)]
        masks = masks_of(n, sets)
        covers = list(iter_simple_covers(n, masks, n - 1))
        assert len(covers) == len({tuple(sorted(c)) for c in covers})

    def test_budget_truncates(self):
        n = 6
        sets = [{i} for i in range(n)] + [
            {i, j} for i in range(n) for j in range(i + 1, n)
        ]
        budget = EnumerationBudget(max_items=5)
        covers = list(iter_simple_covers(n, masks_of(n, sets), n - 1, budget))
        assert len(covers) == 5
        assert budget.truncated

    def test_empty_candidates(self):
        assert list(iter_simple_covers(3, [], 2)) == []


class TestExactCovers:
    def test_matches_brute_force(self):
        n = 4
        sets = [{0, 1}, {2, 3}, {0}, {1}, {2}, {3}, {1, 2}]
        masks = masks_of(n, sets)
        got = {tuple(sorted(c)) for c in iter_exact_covers(n, masks, n - 1)}
        assert got == brute_force_covers(n, masks, n - 1, exact=True)

    def test_partitions_are_disjoint(self):
        n = 5
        sets = [{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0}, {2}, {4}]
        masks = masks_of(n, sets)
        for cover in iter_exact_covers(n, masks, n - 1):
            seen = 0
            for j in cover:
                assert seen & masks[j] == 0
                seen |= masks[j]

    def test_no_exact_cover_case(self):
        # Fig. 10 shape: candidates {0,1} and {1,2} cannot exactly cover {0,1,2}
        masks = masks_of(3, [{0, 1}, {1, 2}])
        assert list(iter_exact_covers(3, masks, 2)) == []


class TestMinimumCovers:
    def test_minimum_simple(self):
        n = 4
        sets = [{0, 1}, {2, 3}, {0, 1, 2}, {3}, {0}, {1}, {2}]
        covers = minimum_covers(n, masks_of(n, sets), exact=False)
        assert covers  # {0,1} + {2,3}, or {0,1,2} + {3} / {2,3}
        assert all(len(c) == 2 for c in covers)
        got = {tuple(c) for c in covers}
        assert (0, 1) in got and (2, 3) in got

    def test_minimum_exact(self):
        n = 4
        sets = [{0, 1}, {2, 3}, {0, 1, 2}, {3}, {0}, {1}, {2}]
        covers = minimum_covers(n, masks_of(n, sets), exact=True)
        assert {tuple(c) for c in covers} == {(0, 1), (2, 3)}

    def test_no_cover_returns_empty(self):
        masks = masks_of(3, [{0, 1}])
        assert minimum_covers(3, masks, exact=False) == []
        assert minimum_covers(3, masks, exact=True) == []

    def test_minimum_equals_brute_force_minimum(self):
        n = 5
        sets = [{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {1, 3}]
        masks = masks_of(n, sets)
        brute = brute_force_covers(n, masks, n - 1)
        k = min(len(c) for c in brute)
        expected = {c for c in brute if len(c) == k}
        got = {tuple(c) for c in minimum_covers(n, masks, exact=False)}
        assert got == expected


class TestIrredundantCovers:
    def test_contains_all_irredundant(self):
        n = 4
        sets = [{0, 1}, {1, 2}, {2, 3}, {0, 3}]
        masks = masks_of(n, sets)
        got = {tuple(sorted(c)) for c in iter_irredundant_covers(n, masks, n - 1)}
        brute = brute_force_covers(n, masks, n - 1)

        def irredundant(cover):
            for j in cover:
                rest = 0
                for k in cover:
                    if k != j:
                        rest |= masks[k]
                if rest == (1 << n) - 1:
                    return False
            return True

        assert {c for c in brute if irredundant(c)} <= got
        assert got <= brute

    def test_no_duplicates(self):
        n = 6
        sets = [{i, (i + 1) % n} for i in range(n)]
        masks = masks_of(n, sets)
        covers = list(iter_irredundant_covers(n, masks, n - 1))
        assert len(covers) == len(set(covers))


@st.composite
def cover_instances(draw):
    n = draw(st.integers(2, 5))
    num_sets = draw(st.integers(1, 8))
    sets = []
    for _ in range(num_sets):
        size = draw(st.integers(1, n))
        sets.append(frozenset(draw(st.permutations(range(n)))[:size]))
    return n, sorted(set(sets), key=sorted)


@given(cover_instances())
@settings(max_examples=60, deadline=None)
def test_simple_covers_complete_and_sound(instance):
    """iter_simple_covers == brute force on random instances."""
    n, sets = instance
    masks = masks_of(n, sets)
    got = {tuple(sorted(c)) for c in iter_simple_covers(n, masks, n - 1)}
    assert got == brute_force_covers(n, masks, n - 1)


@given(cover_instances())
@settings(max_examples=60, deadline=None)
def test_exact_covers_complete_and_sound(instance):
    n, sets = instance
    masks = masks_of(n, sets)
    got = {tuple(sorted(c)) for c in iter_exact_covers(n, masks, n - 1)}
    assert got == brute_force_covers(n, masks, n - 1, exact=True)


@given(cover_instances())
@settings(max_examples=60, deadline=None)
def test_minimum_covers_are_minimum(instance):
    n, sets = instance
    masks = masks_of(n, sets)
    brute = brute_force_covers(n, masks, n - 1)
    got = minimum_covers(n, masks, exact=False)
    if not brute:
        assert got == []
    else:
        k = min(len(c) for c in brute)
        assert {tuple(c) for c in got} == {c for c in brute if len(c) == k}
