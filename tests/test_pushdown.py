"""Tests for projection pushdown (repro.core.pushdown) and its
end-to-end execution through the physical layer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC
from repro.core.logical import Project
from repro.core.properties import height
from repro.core.pushdown import max_operator_width, pushdown_projections
from repro.mapreduce.engine import ClusterConfig
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.rdf.graph import RDFGraph
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import parse_query
from tests.conftest import make_university_graph, random_connected_query


def msc_plans(text, **kw):
    return cliquesquare(parse_query(text, **kw), MSC, timeout_s=20).unique_plans()


class TestPushdownStructure:
    def test_prunes_unused_variables(self):
        # ?e and ?c are never needed above their matches
        plans = msc_plans(
            "SELECT ?a WHERE { ?a p1 ?b . ?a p2 ?c . ?b p3 ?d . ?b p4 ?e }"
        )
        for plan in plans:
            pushed = pushdown_projections(plan)
            assert max_operator_width(pushed) <= max_operator_width(plan)
            assert max_operator_width(pushed) < len(plan.query.variables())

    def test_keeps_join_keys(self):
        plans = msc_plans("SELECT ?a WHERE { ?a p1 ?b . ?b p2 ?c . ?c p3 ?d }")
        for plan in plans:
            pushed = pushdown_projections(plan)
            for op in pushed.root.iter_operators():
                if hasattr(op, "on") and not isinstance(op, Project):
                    assert set(op.on) <= set(op.attrs)

    def test_keeps_sibling_shared_attributes(self):
        """Attributes enforcing natural-join equalities must survive."""
        # t1 and t2 share ?x (key) and ?y (residual equality)
        plans = msc_plans("SELECT ?x WHERE { ?x p1 ?y . ?y p2 ?x . ?x p3 ?z }")
        for plan in plans:
            pushed = pushdown_projections(plan)
            g = RDFGraph(validate=False)
            rng = random.Random(5)
            vals = [f"<v{i}>" for i in range(4)]
            for i in range(50):
                g.add(rng.choice(vals), f"p{1 + i % 3}", rng.choice(vals))
            assert _run(pushed, g) == evaluate(plan.query, g)

    def test_root_projection_preserved(self):
        for plan in msc_plans("SELECT ?a ?b WHERE { ?a p1 ?b . ?b p2 ?c }"):
            pushed = pushdown_projections(plan)
            assert pushed.root.attrs == plan.root.attrs

    def test_idempotent(self):
        for plan in msc_plans("SELECT ?a WHERE { ?a p1 ?b . ?b p2 ?c . ?c p3 ?d }"):
            once = pushdown_projections(plan)
            twice = pushdown_projections(once)
            assert max_operator_width(once) == max_operator_width(twice)


def _run(plan, graph, nodes=4):
    store = partition_graph(graph, nodes)
    executor = PlanExecutor(store, ClusterConfig(num_nodes=nodes))
    return executor.execute(plan).rows


class TestPushdownExecution:
    def test_university_query_equivalence(self):
        graph = make_university_graph()
        text = (
            "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?d ub:subOrganizationOf <univ0> . ?p rdf:type ub:FullProfessor . "
            "?s ub:emailAddress ?e }"
        )
        query = parse_query(text)
        expected = evaluate(query, graph)
        for plan in cliquesquare(query, MSC, timeout_s=20).unique_plans()[:5]:
            pushed = pushdown_projections(plan)
            assert _run(pushed, graph, nodes=7) == expected

    def test_pushdown_through_multilevel_plans(self):
        """Projections above reduce joins run inside map shufflers."""
        graph = make_university_graph()
        text = (
            "SELECT ?p ?u WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
            "?p rdf:type ub:FullProfessor . ?s rdf:type ub:Student . "
            "?d ub:subOrganizationOf ?u }"
        )
        query = parse_query(text)
        expected = evaluate(query, graph)
        plans = cliquesquare(query, MSC, timeout_s=20).unique_plans()
        deep = [p for p in plans if height(p) >= 2][:4] or plans[:4]
        for plan in deep:
            pushed = pushdown_projections(plan)
            assert _run(pushed, graph, nodes=7) == expected

    @given(st.integers(0, 5_000), st.integers(2, 5))
    @settings(max_examples=12, deadline=None)
    def test_random_equivalence(self, seed, n):
        rng = random.Random(seed)
        query = random_connected_query(rng, n)
        g = RDFGraph(validate=False)
        data_rng = random.Random(seed + 13)
        vals = [f"<e{i}>" for i in range(5)]
        for i in range(60):
            g.add(data_rng.choice(vals), f"p{data_rng.randrange(n)}", data_rng.choice(vals))
        expected = evaluate(query, g)
        for plan in cliquesquare(query, MSC, timeout_s=15).unique_plans()[:3]:
            pushed = pushdown_projections(plan)
            assert _run(pushed, g) == expected


class TestExplain:
    def test_explain_layers(self):
        from repro.physical.explain import explain, job_summary

        plan = cliquesquare(
            parse_query(
                "SELECT ?p WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
                "?p rdf:type ub:FullProfessor . ?s rdf:type ub:Student }"
            ),
            MSC,
        ).plans[0]
        text = explain(plan)
        assert "== logical plan" in text
        assert "== physical plan ==" in text
        assert "== MapReduce jobs" in text
        summary = job_summary(plan)
        assert summary["num_jobs"] >= 1
        assert summary["height"] == height(plan)

    def test_map_only_summary(self):
        from repro.physical.explain import job_summary

        plan = cliquesquare(
            parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }"),
            MSC,
        ).plans[0]
        summary = job_summary(plan)
        assert summary["map_only"] is True
        assert summary["signature"] == "M"
