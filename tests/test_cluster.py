"""The sharded store and shard router (repro.cluster).

Covers: layout equivalence between the sharded and single stores,
shard-local snapshot-token invalidation, per-shard catalog statistics
aggregating to the exact global catalog, incremental catalog maintenance
under ``add_triples`` (delta == recompute), executor-level answer and
report equality of sharded vs. unsharded execution, admission control,
`ExecutionReport.merge` edge cases, and the per-shard explain output.

Service-level answer equality over the full LUBM workload across
{backend} x {shards} x {transport} x {surface} lives in
``tests/test_conformance.py`` (the shared conformance harness); the RPC
transport's own protocol/fault tests live in ``tests/test_rpc.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster import (
    ShardRouter,
    ShardedPlanExecutor,
    ShardedStore,
    shard_graph,
)
from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC
from repro.cost.cardinality import CatalogStatistics, triple_delta
from repro.mapreduce.backends import split_workers
from repro.mapreduce.counters import ExecutionReport, JobMetrics
from repro.partitioning.layout import PLACEMENTS
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.service import (
    QueryService,
    ServiceConfig,
    ServiceOverloaded,
)
from repro.sparql.parser import parse_query
from repro.workloads import lubm
from tests.conformance import needs_process
from tests.conftest import make_university_graph

NUM_NODES = 7

STAR_QUERY = (
    "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
    "?p rdf:type ub:FullProfessor . ?s rdf:type ub:Student }"
)


@pytest.fixture(scope="module")
def university():
    return make_university_graph()


@pytest.fixture(scope="module")
def lubm_graph():
    return lubm.generate(lubm.LUBMConfig(universities=4))


# -- sharded store layout ------------------------------------------------------


class TestShardedStore:
    def test_layout_identical_to_single_store(self, university):
        """Sharding never moves a triple: node placement is unchanged,
        each node's files just live on the shard owning the node."""
        single = partition_graph(university, NUM_NODES)
        sharded = shard_graph(university, NUM_NODES, 3)
        for node in range(NUM_NODES):
            assert sorted(single.file_names(node)) == sorted(
                sharded.file_names(node)
            )
            for placement in PLACEMENTS:
                assert sorted(single.scan(node, placement)) == sorted(
                    sharded.scan(node, placement)
                )
        assert single.total_stored() == sharded.total_stored()

    def test_shard_ownership_partitions_nodes(self):
        store = ShardedStore(num_nodes=NUM_NODES, num_shards=3)
        owned = [store.nodes_of_shard(s) for s in range(3)]
        flat = sorted(n for nodes in owned for n in nodes)
        assert flat == list(range(NUM_NODES))
        assert store.node_shards == tuple(n % 3 for n in range(NUM_NODES))

    def test_replica_reconstruction(self, university):
        sharded = shard_graph(university, NUM_NODES, 4)
        dataset = set(university)
        for placement in PLACEMENTS:
            assert sharded.replica_triples(placement) == dataset

    def test_triples_per_shard_sums_to_total(self, university):
        sharded = shard_graph(university, NUM_NODES, 4)
        assert sum(sharded.triples_per_shard()) == sharded.total_stored()
        assert sharded.total_stored() == 3 * len(university)

    def test_requires_full_replication(self):
        with pytest.raises(ValueError, match="3-way replication"):
            ShardedStore(num_nodes=4, num_shards=2, replicas=("s",))

    def test_rejects_more_shards_than_nodes(self):
        with pytest.raises(ValueError, match="at most one shard per node"):
            ShardedStore(num_nodes=2, num_shards=4)

    def test_scan_routes_to_owner(self, university):
        single = partition_graph(university, NUM_NODES)
        sharded = shard_graph(university, NUM_NODES, 2)
        for node in range(NUM_NODES):
            assert sorted(sharded.scan(node, "s", "ub:worksFor")) == sorted(
                single.scan(node, "s", "ub:worksFor")
            )


class TestShardSnapshots:
    def test_mutation_invalidates_only_touched_shards(self, university):
        """A mutation bumps snapshot tokens only on the shards holding
        one of the triple's three replicas — the other shards' pools
        (keyed on those tokens) survive."""
        sharded = shard_graph(university, NUM_NODES, 4)
        before = sharded.snapshot()
        triple = ("<tok-subj>", "<tok-prop>", "<tok-obj>")
        touched = {
            sharded.shard_of_value(value) for value in triple
        }
        sharded.add(triple)
        after = sharded.snapshot()
        assert touched, "placement must touch at least one shard"
        for shard in range(4):
            if shard in touched:
                assert after.shards[shard].token != before.shards[shard].token
            else:
                assert after.shards[shard].token == before.shards[shard].token
        assert after.token != before.token

    def test_snapshot_is_immune_to_later_mutation(self, university):
        sharded = shard_graph(university, NUM_NODES, 2)
        snapshot = sharded.snapshot()
        stored_before = snapshot.total_stored()
        sharded.add(("<s-new>", "<p-new>", "<o-new>"))
        assert snapshot.total_stored() == stored_before
        assert sharded.snapshot().total_stored() == stored_before + 3

    def test_snapshot_scan_matches_store(self, university):
        sharded = shard_graph(university, NUM_NODES, 3)
        snapshot = sharded.snapshot()
        for node in range(NUM_NODES):
            assert snapshot.scan(node, "p", "ub:worksFor") == sharded.scan(
                node, "p", "ub:worksFor"
            )


# -- per-shard catalog statistics ---------------------------------------------


class TestShardCatalogs:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_aggregate_equals_global_recompute(self, university, shards):
        sharded = shard_graph(university, NUM_NODES, shards)
        assert sharded.aggregate_statistics() == CatalogStatistics.from_graph(
            university
        )

    def test_aggregate_on_lubm(self, lubm_graph):
        sharded = shard_graph(lubm_graph, NUM_NODES, 4)
        assert sharded.aggregate_statistics() == CatalogStatistics.from_graph(
            lubm_graph
        )

    def test_shard_statistics_are_placement_disjoint(self, university):
        sharded = shard_graph(university, NUM_NODES, 4)
        parts = [sharded.shard_statistics(s) for s in range(4)]
        props = [set(p.per_property) for p in parts]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not props[i] & props[j]
        total = CatalogStatistics.from_graph(university)
        assert sum(p.distinct_subjects for p in parts) == total.distinct_subjects
        assert sum(p.distinct_objects for p in parts) == total.distinct_objects
        assert sum(p.triple_count for p in parts) == total.triple_count

    def test_shard_statistics_refresh_after_mutation(self, university):
        sharded = shard_graph(university, NUM_NODES, 2)
        sharded.aggregate_statistics()  # warm the per-shard caches
        sharded.add(("<s-stat>", "<p-stat>", "<o-stat>"))
        graph = make_university_graph()
        graph.add("<s-stat>", "<p-stat>", "<o-stat>")
        assert sharded.aggregate_statistics() == CatalogStatistics.from_graph(
            graph
        )


class TestIncrementalCatalog:
    def test_triple_delta_none_for_existing(self, university):
        triple = next(iter(university))
        assert triple_delta(university, *triple) is None

    def test_delta_equals_recompute_unsharded(self):
        service = QueryService(make_university_graph())
        try:
            service.add_triples(
                [
                    ("<p-new>", "ub:worksFor", "<dept0>"),  # new subject
                    ("<p-new>", "ub:newProp", "<o-new>"),  # new property+object
                    ("<person0>", "ub:worksFor", "<dept1>"),  # all seen
                    ("<person0>", "ub:worksFor", "<dept1>"),  # duplicate
                ]
            )
            assert service.catalog == CatalogStatistics.from_graph(service.graph)
        finally:
            service.close()

    def test_delta_equals_recompute_sharded(self):
        service = QueryService(
            make_university_graph(), ServiceConfig(shards=3)
        )
        try:
            service.add_triples(
                [("<pX>", "rdf:type", "ub:Student"), ("<pX>", "ub:memberOf", "<dept2>")]
            )
            assert service.catalog == CatalogStatistics.from_graph(service.graph)
        finally:
            service.close()

    def test_duplicate_only_batch_changes_nothing(self):
        service = QueryService(make_university_graph())
        try:
            before = service.catalog
            version = service.graph_version
            existing = next(iter(service.graph))
            assert service.add_triples([existing]) == 0
            assert service.catalog is before
            assert service.graph_version == version
        finally:
            service.close()

    def test_repeated_batches_stay_exact(self):
        service = QueryService(make_university_graph())
        try:
            for i in range(5):
                service.add_triples(
                    [(f"<s{i}>", f"<p{i % 2}>", f"<o{i}>")]
                )
            assert service.catalog == CatalogStatistics.from_graph(service.graph)
        finally:
            service.close()


# -- sharded execution equality ------------------------------------------------


class TestShardedExecution:
    def test_direct_executor_matches_single_store(self, university):
        single = partition_graph(university, NUM_NODES)
        reference = PlanExecutor(single)
        query = parse_query(STAR_QUERY)
        plan = cliquesquare(query, MSC).plans[0]
        expected = reference.execute(plan)
        for shards in (1, 2, 4, 7):
            executor = ShardedPlanExecutor(
                shard_graph(university, NUM_NODES, shards)
            )
            result = executor.execute(plan)
            assert result.rows == expected.rows
            assert result.report.num_jobs == expected.report.num_jobs
            assert result.report.response_time == pytest.approx(
                expected.report.response_time
            )
            assert result.report.total_work == pytest.approx(
                expected.report.total_work
            )
            assert result.report.shards == shards
            assert expected.report.shards == 0
            assert result.shard_tasks is not None
            assert len(result.shard_tasks) == shards
            # Every task of every job ran on exactly one shard.
            expected_tasks = sum(
                len(spec.map_chains) * NUM_NODES
                + (0 if spec.map_only else NUM_NODES)
                for spec in result.compiled.jobs
            )
            assert sum(result.shard_tasks) == expected_tasks
            assert sum(result.shard_rows) == sum(
                j.output_tuples for j in result.report.jobs
            )

    @needs_process
    def test_process_backend_shards_match_serial(self, university):
        serial = QueryService(university)
        sharded = QueryService(
            university,
            ServiceConfig(shards=2, backend="process", backend_workers=2),
        )
        try:
            expected = serial.submit(STAR_QUERY)
            got = sharded.submit(STAR_QUERY)
            assert got.rows == expected.rows
            # A second, differently-bound query exercises the warm pools.
            q2 = (
                "SELECT ?p WHERE { ?p ub:worksFor ?d . "
                "?p rdf:type ub:FullProfessor }"
            )
            assert sharded.submit(q2).rows == serial.submit(q2).rows
        finally:
            serial.close()
            sharded.close()

    def test_mutation_visible_after_shard_rebuild(self, university):
        service = QueryService(
            make_university_graph(), ServiceConfig(shards=3)
        )
        try:
            before = service.submit(STAR_QUERY)
            service.add_triples(
                [
                    ("<pNew>", "ub:worksFor", "<dept0>"),
                    ("<pNew>", "rdf:type", "ub:FullProfessor"),
                    ("<sNew>", "ub:memberOf", "<dept0>"),
                    ("<sNew>", "rdf:type", "ub:Student"),
                ]
            )
            after = service.submit(STAR_QUERY)
            assert len(after.rows) > len(before.rows)
        finally:
            service.close()

    def test_template_registered_once_per_structure(self, university):
        service = QueryService(university, ServiceConfig(shards=2))
        try:
            executor = service.executor
            assert isinstance(executor, ShardedPlanExecutor)
            q_template = (
                "SELECT ?p WHERE { ?p ub:worksFor <dept0> . "
                "?p rdf:type ub:FullProfessor }"
            )
            service.submit(q_template)
            registered = executor.router.templates_registered
            # Same shape, different constant: binds into the registered
            # template, no new registration.
            service.submit(
                "SELECT ?p WHERE { ?p ub:worksFor <dept1> . "
                "?p rdf:type ub:FullProfessor }"
            )
            assert executor.router.templates_registered == registered
        finally:
            service.close()


# -- admission control ---------------------------------------------------------


class TestAdmissionControl:
    def test_zero_inflight_rejects_everything(self, university):
        service = QueryService(university, ServiceConfig(max_inflight=0))
        try:
            with pytest.raises(ServiceOverloaded):
                service.submit(STAR_QUERY)
            with pytest.raises(ServiceOverloaded):
                service.submit_batch([STAR_QUERY, STAR_QUERY])
            prepared = service.prepare(STAR_QUERY)
            with pytest.raises(ServiceOverloaded):
                prepared.execute()
            snapshot = service.snapshot_stats()
            assert snapshot.rejected == 4
            assert snapshot.submitted == 0
            assert "4 rejected" in snapshot.format()
        finally:
            service.close()

    def test_oversized_batch_admissible_when_idle(self, university):
        """A batch larger than max_inflight holds at most max_inflight
        slots, so it still runs on an idle service (retry-with-backoff
        can always eventually succeed)."""
        service = QueryService(university, ServiceConfig(max_inflight=1))
        try:
            outcomes = service.submit_batch([STAR_QUERY, STAR_QUERY])
            assert len(outcomes) == 2
            assert all(o.rows for o in outcomes)
            assert service.snapshot_stats().rejected == 0
        finally:
            service.close()

    def test_batch_rejected_as_a_unit_under_load(self, university):
        """While another submission holds the only slot, a whole batch is
        turned away and every member counts as rejected."""
        service = QueryService(university, ServiceConfig(max_inflight=1))
        try:
            gate = threading.Event()
            release = threading.Event()
            original = service._resolve

            def slow_resolve(inst):
                gate.set()
                release.wait(timeout=30)
                return original(inst)

            service._resolve = slow_resolve
            worker = threading.Thread(target=lambda: service.submit(STAR_QUERY))
            worker.start()
            try:
                assert gate.wait(timeout=30)
                with pytest.raises(ServiceOverloaded):
                    service.submit_batch([STAR_QUERY, STAR_QUERY])
            finally:
                release.set()
                worker.join(timeout=30)
            service._resolve = original
            assert service.snapshot_stats().rejected == 2
        finally:
            service.close()

    def test_inflight_slots_are_released(self, university):
        service = QueryService(university, ServiceConfig(max_inflight=2))
        try:
            for _ in range(5):
                service.submit(STAR_QUERY)
            assert service.snapshot_stats().rejected == 0
        finally:
            service.close()

    def test_concurrent_overload_rejects_excess(self, university):
        service = QueryService(university, ServiceConfig(max_inflight=1))
        try:
            gate = threading.Event()
            release = threading.Event()
            original = service._resolve

            def slow_resolve(inst):
                gate.set()
                release.wait(timeout=30)
                return original(inst)

            service._resolve = slow_resolve
            worker = threading.Thread(
                target=lambda: service.submit(STAR_QUERY)
            )
            worker.start()
            try:
                assert gate.wait(timeout=30)
                with pytest.raises(ServiceOverloaded):
                    service.submit(STAR_QUERY)
            finally:
                release.set()
                worker.join(timeout=30)
            service._resolve = original
            assert service.snapshot_stats().rejected == 1
            # With the slot free again, submissions are served.
            assert service.submit(STAR_QUERY).rows
        finally:
            service.close()


# -- report merging edge cases -------------------------------------------------


def _job(name, map_time=1.0, reduce_time=0.0, overhead=0.5, work=2.0):
    return JobMetrics(
        name=name,
        map_time=map_time,
        reduce_time=reduce_time,
        overhead=overhead,
        total_work=work,
        map_only=reduce_time == 0.0,
    )


class TestReportMergeEdgeCases:
    def test_merge_empty_into_empty(self):
        report = ExecutionReport().merge(ExecutionReport())
        assert report.num_jobs == 0
        assert report.response_time == 0.0
        assert report.total_work == 0.0

    def test_merge_empty_report_is_identity(self):
        full = ExecutionReport(
            jobs=[_job("j1", work=3.0)],
            levels=[["j1"]],
            total_work=3.0,
            response_time=1.5,  # = the job's overhead + map_time
        )
        before = (full.num_jobs, full.total_work, full.response_time)
        full.merge(ExecutionReport(levels=[["j1"]]))
        assert (full.num_jobs, full.total_work, full.response_time) == before

    def test_merge_into_empty_copies_jobs(self):
        donor = ExecutionReport(
            jobs=[_job("j1", work=3.0)], levels=[["j1"]], total_work=3.0
        )
        merged = ExecutionReport().merge(donor)
        assert merged.num_jobs == 1
        # Never aliases the donor's metrics.
        merged.jobs[0].total_work += 100.0
        assert donor.jobs[0].total_work == 3.0

    def test_mismatched_backends_concatenate_names(self):
        a = ExecutionReport(backend="process")
        b = ExecutionReport(backend="serial")
        assert a.merge(b).backend == "process+serial"
        same = ExecutionReport(backend="serial").merge(
            ExecutionReport(backend="serial")
        )
        assert same.backend == "serial"

    def test_mismatched_job_names_refuse_jobwise_merge(self):
        with pytest.raises(ValueError, match="cannot merge"):
            _job("a").merge(_job("b"))

    def test_repeated_merge_is_associative(self):
        def make(shard):
            return ExecutionReport(
                jobs=[
                    _job(
                        "j1",
                        map_time=1.0 + shard,
                        overhead=0.5,
                        work=2.0 + shard,
                    )
                ],
                levels=[["j1"]],
                total_work=2.0 + shard,
                response_time=1.5 + shard,
            )

        left = make(0).merge(make(1)).merge(make(2))
        inner = make(1).merge(make(2))
        right = make(0).merge(inner)
        assert left.total_work == pytest.approx(right.total_work)
        assert left.response_time == pytest.approx(right.response_time)
        assert left.num_jobs == right.num_jobs == 1
        assert left.jobs[0].map_time == right.jobs[0].map_time == 3.0
        # Overhead is paid once however the merges associate.
        assert left.jobs[0].total_work == pytest.approx(
            right.jobs[0].total_work
        )

    def test_sharded_reports_merge_to_engine_report(self, university):
        """End to end: per-shard reports merged by the router equal the
        single-store engine's report for the same plan."""
        single = partition_graph(university, NUM_NODES)
        query = parse_query(STAR_QUERY)
        plan = cliquesquare(query, MSC).plans[0]
        expected = PlanExecutor(single).execute(plan).report
        merged = (
            ShardedPlanExecutor(shard_graph(university, NUM_NODES, 4))
            .execute(plan)
            .report
        )
        assert merged.num_jobs == expected.num_jobs
        assert merged.levels == expected.levels
        assert merged.response_time == pytest.approx(expected.response_time)
        assert merged.total_work == pytest.approx(expected.total_work)
        for mine, theirs in zip(merged.jobs, expected.jobs):
            assert mine.name == theirs.name
            assert mine.map_time == pytest.approx(theirs.map_time)
            assert mine.reduce_time == pytest.approx(theirs.reduce_time)
            assert mine.tuples_shuffled == theirs.tuples_shuffled
            assert mine.output_tuples == theirs.output_tuples


# -- explain -------------------------------------------------------------------


class TestShardedExplain:
    def test_service_explain_shows_distribution(self, university):
        service = QueryService(university, ServiceConfig(shards=3))
        try:
            text = service.explain(STAR_QUERY)
            assert "== shard distribution (3 shards over 7 nodes) ==" in text
            for shard in range(3):
                assert f"shard {shard}: nodes" in text
            assert "stored triples" in text
            assert "map tasks" in text
        finally:
            service.close()

    def test_unsharded_explain_has_no_distribution(self, university):
        service = QueryService(university)
        try:
            assert "shard distribution" not in service.explain(STAR_QUERY)
        finally:
            service.close()

    def test_physical_explain_accepts_shard_map(self, university):
        from repro.physical.explain import explain as explain_plan

        query = parse_query(STAR_QUERY)
        plan = cliquesquare(query, MSC).plans[0]
        from repro.core.logical import LogicalPlan

        text = explain_plan(
            LogicalPlan(root=plan.root, query=query),
            shard_map=(0, 1, 0, 1, 0, 1, 0),
            shard_triples=(100, 90),
        )
        assert "2 shards over 7 nodes" in text
        assert "100 stored triples" in text


# -- plumbing ------------------------------------------------------------------


class TestClusterPlumbing:
    def test_split_workers(self):
        assert split_workers(8, 4, "process") == 2
        assert split_workers(3, 4, "process") == 1
        assert split_workers(None, 2, "thread") == 2
        assert split_workers(None, 1, "serial") is None
        with pytest.raises(ValueError):
            split_workers(4, 0, "process")

    def test_router_rejects_mismatched_snapshot(self, university):
        two = shard_graph(university, NUM_NODES, 2)
        three = shard_graph(university, NUM_NODES, 3)
        executor = ShardedPlanExecutor(two)
        query = parse_query(STAR_QUERY)
        plan = cliquesquare(query, MSC).plans[0]
        prepared = executor.prepare(plan)
        with pytest.raises(ValueError, match="shards"):
            executor.router.execute(prepared.compiled, three.snapshot())

    def test_executor_rejects_node_mismatch(self, university):
        from repro.mapreduce.engine import ClusterConfig

        store = shard_graph(university, NUM_NODES, 2)
        with pytest.raises(ValueError, match="nodes"):
            ShardedPlanExecutor(store, cluster=ClusterConfig(num_nodes=5))

    def test_shared_process_backend_instance_rejected(self, university):
        from repro.mapreduce.backends import ProcessBackend

        store = shard_graph(university, NUM_NODES, 2)
        with pytest.raises(ValueError, match="shared ProcessBackend"):
            ShardedPlanExecutor(store, backend=ProcessBackend(1))

    def test_csq_with_shards(self, university):
        from repro.systems.csq import CSQ, CSQConfig

        plain = CSQ(university)
        sharded = CSQ(university, CSQConfig(shards=2))
        try:
            query = parse_query(STAR_QUERY, name="star")
            assert (
                sharded.run(query).answers == plain.run(query).answers
            )
        finally:
            plain.close()
            sharded.close()
