"""Unit tests for clique enumeration (Definition 3.2, Lemmas 4.1-4.2)."""

from repro.core.cliques import (
    candidate_cliques,
    count_partial_cliques,
    maximal_cliques,
    maximal_cliques_by_variable,
    partial_cliques,
)
from repro.core.complexity import max_maximal_cliques, max_partial_cliques
from repro.core.variable_graph import VariableGraph
from repro.sparql.parser import parse_query
from repro.workloads.synthetic import chain_query, star_query


def graph_of(text: str) -> VariableGraph:
    return VariableGraph.from_query(parse_query(text))


class TestMaximalCliques:
    def test_paper_q1(self, paper_q1):
        g = VariableGraph.from_query(paper_q1)
        by_var = maximal_cliques_by_variable(g)
        assert by_var["?d"] == frozenset({2, 3, 4, 5})
        assert by_var["?a"] == frozenset({0, 1, 2})
        assert by_var["?j"] == frozenset({9, 10})
        assert len(by_var) == 6  # Q1 has 6 join variables

    def test_one_clique_per_join_variable(self):
        g = graph_of("SELECT ?x WHERE { ?x p ?y . ?y q ?z . ?x r ?z }")
        assert len(maximal_cliques_by_variable(g)) == 3

    def test_duplicate_node_sets_merged(self):
        # both ?x and ?y connect the same two patterns -> one clique set
        g = graph_of("SELECT ?x WHERE { ?x p ?y . ?y q ?x }")
        assert maximal_cliques(g) == [frozenset({0, 1})]

    def test_star_has_single_maximal_clique(self):
        g = VariableGraph.from_query(star_query(6))
        assert maximal_cliques(g) == [frozenset(range(6))]

    def test_chain_has_n_minus_1_cliques(self):
        g = VariableGraph.from_query(chain_query(7))
        cliques = maximal_cliques(g)
        assert len(cliques) == 6
        assert all(len(c) == 2 for c in cliques)

    def test_lemma_41_bound(self):
        for n in (2, 4, 7):
            for q in (chain_query(n), star_query(n)):
                g = VariableGraph.from_query(q)
                assert len(maximal_cliques(g)) <= max_maximal_cliques(n)


class TestPartialCliques:
    def test_star_powerset(self):
        # one maximal clique of n nodes -> 2^n - 1 partial cliques
        g = VariableGraph.from_query(star_query(4))
        assert count_partial_cliques(g) == 2**4 - 1

    def test_chain_2n_minus_1(self):
        # chain: n-1 pairs + n singletons = 2n - 1 (§4.5 discussion)
        g = VariableGraph.from_query(chain_query(6))
        assert count_partial_cliques(g) == 2 * 6 - 1

    def test_lemma_42_bound(self):
        for n in (2, 3, 5):
            for q in (chain_query(n), star_query(n)):
                g = VariableGraph.from_query(q)
                assert count_partial_cliques(g) <= max_partial_cliques(n)

    def test_partial_cliques_include_singletons(self):
        g = VariableGraph.from_query(chain_query(3))
        singles = [c for c in partial_cliques(g) if len(c) == 1]
        assert len(singles) == 3

    def test_every_partial_clique_is_subset_of_a_maximal(self, paper_q1):
        g = VariableGraph.from_query(paper_q1)
        maximal = maximal_cliques(g)
        for c in partial_cliques(g):
            if len(c) >= 2:
                assert any(c <= m for m in maximal), c


class TestCandidateCliques:
    def test_maximal_only_excludes_singletons(self):
        g = VariableGraph.from_query(chain_query(4))
        pool = candidate_cliques(g, maximal_only=True)
        assert all(len(c) == 2 for c in pool)

    def test_partial_pool_is_superset(self, paper_q1):
        g = VariableGraph.from_query(paper_q1)
        assert set(candidate_cliques(g, True)) <= set(candidate_cliques(g, False))
