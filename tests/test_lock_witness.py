"""Dynamic lock-order witness: cycles, declared-rank inversions,
re-entrancy, sibling instances, and the zero-cost disabled path."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.locks import (
    CheckedLock,
    LockOrderError,
    LockWitness,
    checked,
    lock_check_enabled,
)


def _pair(witness, name_a="alpha_lock", name_b="beta_lock"):
    return (
        CheckedLock(threading.Lock(), name_a, witness),
        CheckedLock(threading.Lock(), name_b, witness),
    )


class TestCycleDetection:
    def test_consistent_order_is_fine(self):
        w = LockWitness()
        a, b = _pair(w)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert ("alpha_lock", "beta_lock") in w.edges()

    def test_reversed_order_raises(self):
        w = LockWitness()
        a, b = _pair(w)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match="cycle"):
                with a:
                    pass

    def test_transitive_cycle_raises(self):
        w = LockWitness()
        a, b = _pair(w)
        c = CheckedLock(threading.Lock(), "gamma_lock", w)
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderError, match="cycle"):
                with a:
                    pass

    def test_cycle_error_names_both_sites(self):
        w = LockWitness()
        a, b = _pair(w)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match="observed first at"):
                with a:
                    pass


class TestHierarchy:
    def test_declared_rank_inversion_raises_without_prior_edge(self):
        w = LockWitness()
        leaf = CheckedLock(threading.Lock(), "_stats_lock", w)  # tier 40
        outer = CheckedLock(threading.Lock(), "_store_lock", w)  # tier 20
        with leaf:
            with pytest.raises(LockOrderError, match="inversion"):
                with outer:
                    pass

    def test_declared_order_is_fine(self):
        w = LockWitness()
        outer = CheckedLock(threading.Lock(), "_store_lock", w)
        leaf = CheckedLock(threading.Lock(), "_stats_lock", w)
        with outer:
            with leaf:
                pass


class TestReentrancyAndSiblings:
    def test_reentrant_rlock_adds_no_edge(self):
        w = LockWitness()
        lk = CheckedLock(threading.RLock(), "_shard_locks", w)
        with lk:
            with lk:
                pass
        assert w.edges() == {}

    def test_same_name_sibling_instances_skipped(self):
        w = LockWitness()
        a = CheckedLock(threading.Lock(), "LRUCache._lock", w)
        b = CheckedLock(threading.Lock(), "LRUCache._lock", w)
        with a:
            with b:
                pass
        assert w.edges() == {}

    def test_per_thread_held_stacks(self):
        w = LockWitness()
        a, b = _pair(w)
        with a:
            t = threading.Thread(target=lambda: (b.acquire(), b.release()))
            t.start()
            t.join()
        # The other thread held nothing: no a->b edge was recorded.
        assert ("alpha_lock", "beta_lock") not in w.edges()


class TestEnableSwitch:
    def test_checked_passthrough_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_CHECK", raising=False)
        assert not lock_check_enabled()
        raw = threading.Lock()
        assert checked(raw, "x") is raw

    def test_checked_wraps_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_CHECK", "1")
        assert lock_check_enabled()
        wrapped = checked(threading.Lock(), "x")
        assert isinstance(wrapped, CheckedLock)
        with wrapped:
            assert wrapped.locked()  # __getattr__ passthrough

    def test_reset_clears_edges(self):
        w = LockWitness()
        a, b = _pair(w)
        with a:
            with b:
                pass
        w.reset()
        assert w.edges() == {}
        with b:
            with a:  # reversed, legal again after reset
                pass
