"""Unit tests for repro.rdf.dictionary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rdf.dictionary import Dictionary


class TestDictionary:
    def test_encode_assigns_dense_ids(self):
        d = Dictionary()
        assert d.encode("a") == 0
        assert d.encode("b") == 1
        assert d.encode("a") == 0
        assert len(d) == 2

    def test_decode_inverts_encode(self):
        d = Dictionary()
        ident = d.encode("term")
        assert d.decode(ident) == "term"

    def test_decode_unknown_raises_keyerror(self):
        d = Dictionary()
        with pytest.raises(KeyError):
            d.decode(0)
        with pytest.raises(KeyError):
            d.decode(-1)

    def test_lookup_without_insert(self):
        d = Dictionary()
        assert d.lookup("missing") is None
        d.encode("present")
        assert d.lookup("present") == 0
        assert len(d) == 1

    def test_contains_and_iter(self):
        d = Dictionary()
        d.encode_many(["x", "y", "x"])
        assert "x" in d and "y" in d and "z" not in d
        assert list(d) == ["x", "y"]

    def test_encode_many_preserves_order(self):
        d = Dictionary()
        assert d.encode_many(["a", "b", "a", "c"]) == [0, 1, 0, 2]

    def test_decode_many(self):
        d = Dictionary()
        d.encode_many(["a", "b", "c"])
        assert d.decode_many([2, 0]) == ["c", "a"]


@given(st.lists(st.text(min_size=1), min_size=1, max_size=50))
def test_roundtrip_property(terms):
    """encode/decode is a bijection over any term sequence."""
    d = Dictionary()
    ids = d.encode_many(terms)
    assert d.decode_many(ids) == terms
    # ids are dense: exactly one per distinct term
    assert len(d) == len(set(terms))
    assert sorted(set(ids)) == list(range(len(set(terms))))
