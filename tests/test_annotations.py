"""Type-annotation ratchet for the strict modules declared in setup.cfg.

mypy is not part of the runtime environment, so this test enforces the
part of ``--strict`` that matters most — complete signatures
(``disallow_untyped_defs``/``disallow_incomplete_defs``) — with a pure
AST sweep.  When mypy *is* available (CI installs it), the full
configured check runs too.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

#: modules under the strict ratchet (mirrors the setup.cfg sections)
STRICT_GLOBS = [
    "src/repro/core/*.py",
    "src/repro/sparql/ast.py",
    "src/repro/analysis/*.py",
]


def _strict_files() -> list[Path]:
    files: list[Path] = []
    for pattern in STRICT_GLOBS:
        files.extend(sorted(REPO.glob(pattern)))
    assert files, "strict module globs matched nothing"
    return files


def _incomplete_defs(path: Path) -> list[str]:
    out: list[str] = []
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        names = args.posonlyargs + args.args + args.kwonlyargs
        missing = [
            a.arg
            for a in names
            if a.annotation is None and a.arg not in ("self", "cls")
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None or missing:
            what = []
            if node.returns is None:
                what.append("return")
            what.extend(missing)
            out.append(
                f"{path.relative_to(REPO)}:{node.lineno} {node.name}"
                f" (unannotated: {', '.join(what)})"
            )
    return out


def test_strict_modules_have_complete_signatures():
    problems: list[str] = []
    for path in _strict_files():
        problems.extend(_incomplete_defs(path))
    assert not problems, "\n".join(problems)


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed (CI-only gate)"
)
def test_mypy_strict_ratchet():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "-p", "repro"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
