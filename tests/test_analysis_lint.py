"""The repo lint, tested against itself: seeded-violation fixtures must
fire exactly their rule, pass fixtures must come back clean, and the
merged ``src/`` tree must lint clean end to end."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import RULES, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO = Path(__file__).resolve().parents[1]


def _lint_fixture(name: str):
    # The synthetic /fixtures path keeps FRAME001's cross-file registry
    # check (which resolves the repo root from the lint path) out of the
    # fixture runs — fixtures exercise one rule each, hermetically.
    return lint_source((FIXTURES / name).read_text(), path=f"/fixtures/{name}")


FAIL_CASES = [
    ("lock001_fail.py", "LOCK001"),
    ("lock002_fail.py", "LOCK002"),
    ("spec001_fail.py", "SPEC001"),
    ("frame001_fail.py", "FRAME001"),
    ("lint000_fail.py", "LINT000"),
]

PASS_CASES = [
    "lock001_pass.py",
    "lock001_suppressed_pass.py",
    "lock002_pass.py",
    "spec001_pass.py",
    "frame001_pass.py",
]


@pytest.mark.parametrize("name,rule", FAIL_CASES)
def test_fail_fixture_fires_its_rule(name, rule):
    findings = _lint_fixture(name)
    assert rule in {f.rule for f in findings}, findings


@pytest.mark.parametrize("name", PASS_CASES)
def test_pass_fixture_is_clean(name):
    assert _lint_fixture(name) == []


def test_every_rule_has_a_fail_fixture():
    assert {rule for _, rule in FAIL_CASES} == set(RULES)


def test_unjustified_suppression_does_not_silence():
    findings = _lint_fixture("lint000_fail.py")
    rules = {f.rule for f in findings}
    assert {"LOCK001", "LINT000"} <= rules


def test_frame001_requires_registry_entry():
    # A frame module *inside the repo* must register every frame in
    # tests/test_rpc_frames.py::FRAME_EXAMPLES.
    source = (
        "class Zorp:\n    pass\n\n"
        "MESSAGE_TYPES = (Zorp,)\n"
        "WORKER_HANDLED = (Zorp,)\n"
        "CLIENT_HANDLED = ()\n\n"
        "def dispatch(msg):\n"
        "    return isinstance(msg, Zorp)\n"
    )
    findings = lint_source(source, path=str(REPO / "src" / "zorp_frames.py"))
    assert any(
        f.rule == "FRAME001" and "pickle-round-trip" in f.message
        for f in findings
    ), findings


def test_src_tree_lints_clean():
    assert lint_paths([REPO / "src"]) == []
