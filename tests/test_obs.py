"""Observability (repro.obs) and its service surfaces.

Covers: the tracing core (span nesting, noop-when-off, bounded sink,
Chrome export), the metrics registry (counters/gauges/histograms +
Prometheus exposition), service-level tracing (explain_analyze, slow
query log, per-query trace ids, contextvar isolation under concurrent
submissions), and — under the rpc transport — cross-process span
propagation over the full wire matrix {pickle, columnar} ×
{pipelined, coalesced}, including the respawn-retry span when a worker
dies mid-workload and stale worker gauges when a probe fails.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    SpanAccumulator,
    TraceSink,
    activate,
    attach_worker_spans,
    current_ref,
    record_remote,
    span,
    trace_ctx,
)
from repro.service import QueryService, ServiceConfig
from tests.conformance import needs_rpc
from tests.conftest import make_university_graph

STAR_QUERY = (
    "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
    "?p rdf:type ub:FullProfessor . ?s rdf:type ub:Student }"
)

CHAIN_QUERY = (
    "SELECT ?p ?d WHERE { ?p ub:worksFor ?d . "
    "?p rdf:type ub:FullProfessor }"
)


@pytest.fixture(scope="module")
def university():
    return make_university_graph()


def traced_service(graph, **overrides) -> QueryService:
    config = ServiceConfig(
        tracing=True,
        result_cache_size=overrides.pop("result_cache_size", 0),
        **overrides,
    )
    return QueryService(graph, config)


# -- tracing core --------------------------------------------------------------


class TestTraceCore:
    def test_spans_nest_under_the_active_ref(self):
        sink = TraceSink()
        t0 = time.perf_counter()
        ref = sink.start_trace("root", epoch=t0)
        with activate(ref):
            with span("outer", k=1):
                with span("inner"):
                    pass
        sink.finish_trace(ref.trace_id, time.perf_counter() - t0)
        trace = sink.get(ref.trace_id)
        # Completed spans append at exit: root first, then by finish time.
        assert {s.name for s in trace.spans} == {"root", "outer", "inner"}
        outer, inner = trace.find("outer")[0], trace.find("inner")[0]
        assert inner.parent_id == outer.span_id
        assert outer.attrs == {"k": 1}
        assert "outer" in trace.render()

    def test_span_is_noop_without_an_active_trace(self):
        assert current_ref() is None
        assert trace_ctx() is None
        with span("ignored") as s:
            s.set(k=1)  # must not raise on the shared no-op span

    def test_sink_evicts_oldest_and_caps_spans(self):
        sink = TraceSink(max_traces=2, span_cap=3)
        ids = []
        for i in range(3):
            ref = sink.start_trace(f"t{i}", epoch=0.0)
            ids.append(ref.trace_id)
            with activate(ref):
                for _ in range(5):  # over the cap: root + 2 kept
                    with span("s"):
                        pass
            sink.finish_trace(ref.trace_id, 1.0)
        assert sink.get(ids[0]) is None  # evicted
        trace = sink.get(ids[2])
        assert len(trace.spans) == 3
        assert trace.truncated == 3
        # record_remote against the evicted trace is a silent no-op
        assert record_remote((ids[0], 1), "late", 0.0, 0.1) is None

    def test_record_remote_attaches_from_any_thread(self):
        sink = TraceSink()
        ref = sink.start_trace("root", epoch=0.0)
        out = []
        thread = threading.Thread(
            target=lambda: out.append(
                record_remote(ref.ctx(), "remote", 1.0, 2.0, shard=3)
            )
        )
        thread.start()
        thread.join()
        assert out[0] is not None
        remote = sink.get(ref.trace_id).find("remote")[0]
        assert remote.start_s == pytest.approx(1.0)
        assert remote.duration_s == pytest.approx(1.0)
        assert remote.attrs["shard"] == 3

    def test_worker_spans_reanchor_at_the_rpc_window(self):
        sink = TraceSink()
        ref = sink.start_trace("root", epoch=0.0)
        rpc = record_remote(ref.ctx(), "rpc:level", 10.0, 11.0)
        # Worker records are relative to the worker's own frame-receipt
        # t0 (a different clock origin); attach re-anchors them at the
        # driver's rpc span start.
        acc = SpanAccumulator(t0=500.0)
        acc.record("queue_wait", 500.0, 500.25)
        ix = acc.record("execute", 500.25, 500.75, tasks=2)
        acc.record("task", 500.3, 500.5, parent=ix, index=0)
        attach_worker_spans(rpc, acc.packed(), anchor=10.0, shard=1)
        trace = sink.get(ref.trace_id)
        queue = trace.find("queue_wait")[0]
        assert queue.start_s == pytest.approx(10.0)
        assert queue.duration_s == pytest.approx(0.25)
        task = trace.find("task")[0]
        execute = trace.find("execute")[0]
        assert task.parent_id == execute.span_id
        assert all(s.attrs["shard"] == 1 for s in (queue, execute, task))

    def test_chrome_export_is_valid_trace_event_json(self, tmp_path):
        sink = TraceSink()
        ref = sink.start_trace("root", epoch=0.0)
        with activate(ref):
            with span("child"):
                pass
        sink.finish_trace(ref.trace_id, 0.5)
        path = tmp_path / "trace.json"
        count = sink.export_chrome_trace(str(path))
        events = json.loads(path.read_text())["traceEvents"]
        assert count == len(events)
        complete = [e for e in events if e.get("ph") == "X"]
        assert {e["name"] for e in complete} == {"root", "child"}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)


# -- metrics registry ----------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "Hits.", labels=("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="a").inc(2)
        c.labels(kind="b").inc()
        g = reg.gauge("depth", "Queue depth.")
        g.set(4.0)
        h = reg.histogram("latency_seconds", "Latency.")
        for v in (0.5, 0.25, 0.25):
            h.observe(v)
        text = reg.render_prometheus()
        assert 'hits_total{kind="a"} 3' in text
        assert "depth 4" in text
        assert "latency_seconds_count 3" in text
        assert "latency_seconds_sum 1" in text
        assert 'le="+Inf"' in text
        snap = reg.snapshot()
        assert set(snap) >= {"hits_total", "depth", "latency_seconds"}
        assert snap["latency_seconds"]["series"][0]["count"] == 3

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c_total").inc(-1)


# -- service tracing (in-process deployments) ---------------------------------


class TestServiceTracing:
    def test_tracing_off_records_nothing(self, university):
        with QueryService(university, ServiceConfig()) as service:
            outcome = service.submit(STAR_QUERY)
            assert outcome.trace_id == ""
            assert service.trace(outcome) is None
            assert service.trace_sink.trace_ids() == []

    def test_traced_submission_covers_every_driver_stage(self, university):
        with traced_service(university) as service:
            outcome = service.submit(STAR_QUERY, name="star")
            trace = service.trace(outcome)
            assert trace is not None and outcome.trace_id == trace.trace_id
            names = {s.name for s in trace.spans}
            assert {
                "star", "parse", "canonicalize", "optimize", "bind",
                "execute", "level",
            } <= names
            root = trace.spans[0]
            assert root.duration_s == pytest.approx(
                outcome.timings.total_s, rel=0.25, abs=0.05
            )
            # Children fit inside the root's window.
            assert all(
                s.start_s + s.duration_s <= root.duration_s + 0.05
                for s in trace.spans
            )

    def test_traced_sharded_inproc_has_shard_and_merge_spans(self, university):
        with traced_service(university, shards=2) as service:
            trace = service.trace(service.submit(STAR_QUERY))
            names = {s.name for s in trace.spans}
            assert {"level", "shard", "merge"} <= names
            shards = {s.attrs["shard"] for s in trace.find("shard")}
            assert shards == {0, 1}

    def test_explain_analyze_renders_plan_and_spans(self, university):
        with QueryService(university, ServiceConfig()) as service:
            text = service.explain_analyze(STAR_QUERY, name="star")
            assert "== trace" in text
            for stage in ("parse", "canonicalize", "optimize", "execute"):
                assert stage in text
            # Forced tracing retained the trace even though the config
            # flag is off; ordinary submissions stay untraced.
            assert len(service.trace_sink.trace_ids()) == 1
            assert service.submit(STAR_QUERY).trace_id == ""

    def test_slow_query_log_catches_over_threshold(self, university):
        with traced_service(university, slow_query_s=0.0) as service:
            outcome = service.submit(STAR_QUERY, name="slow")
            entries = service.slow_queries()
            assert entries and entries[-1]["query"] == "slow"
            assert entries[-1]["trace_id"] == outcome.trace_id
            assert entries[-1]["total_s"] >= 0.0
        with traced_service(university, slow_query_s=1e9) as service:
            service.submit(STAR_QUERY)
            assert service.slow_queries() == []

    def test_prometheus_exposition_counts_queries(self, university):
        with traced_service(university) as service:
            service.submit(STAR_QUERY)
            service.submit(CHAIN_QUERY)
            text = service.render_prometheus()
            assert 'repro_service_events_total{event="submitted"} 2' in text
            assert 'repro_query_stage_seconds_count{stage="total"} 2' in text
            assert "repro_traces_retained 2" in text
            assert 'repro_cache_entries{cache="plan"} 2' in text

    def test_contextvar_isolation_under_thread_interleave(self, university):
        """8 threads × distinct queries: every submission gets its own
        trace, and no span leaks into another thread's trace."""
        with traced_service(university) as service:
            outcomes: dict[int, object] = {}
            errors: list[BaseException] = []

            def work(i: int) -> None:
                try:
                    outcomes[i] = service.submit(
                        CHAIN_QUERY, name=f"q{i}"
                    )
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors and len(outcomes) == 8
            ids = {o.trace_id for o in outcomes.values()}
            assert len(ids) == 8
            for i, outcome in outcomes.items():
                trace = service.trace(outcome)
                assert trace.name == f"q{i}"
                # Exactly this submission's stages — one canonicalize,
                # one root; nothing interleaved from sibling threads.
                assert len(trace.find("canonicalize")) == 1
                assert trace.spans[0].name == f"q{i}"

    def test_batch_members_trace_independently(self, university):
        with traced_service(university) as service:
            outcomes = service.submit_batch(
                [STAR_QUERY, CHAIN_QUERY], dedup=False
            )
            ids = [o.trace_id for o in outcomes]
            assert all(ids) and len(set(ids)) == 2


# -- rpc propagation matrix ----------------------------------------------------


def _assert_rpc_trace(trace, shards=(0, 1)):
    """The acceptance shape: per-level rpc spans carrying the workers'
    own breakdown, re-anchored inside the driver's rpc window."""
    rpc_levels = trace.find("rpc:level")
    assert rpc_levels, trace.render()
    assert {s.attrs["shard"] for s in rpc_levels} == set(shards)
    for name in ("queue_wait", "state_lock_wait", "bind", "execute"):
        spans = trace.find(name)
        assert spans, f"missing worker span {name}:\n{trace.render()}"
    by_id = {s.span_id: s for s in trace.spans}
    for rpc in rpc_levels:
        children = [
            s for s in trace.spans if s.parent_id == rpc.span_id
        ]
        assert children, "worker spans must nest under their rpc span"
        for child in children:
            assert child.start_s >= rpc.start_s - 1e-6
            assert child.attrs.get("shard") == rpc.attrs["shard"]
    # Worker execute spans carry task counts; driver total bounds all.
    root = trace.spans[0]
    assert all(
        s.start_s <= root.duration_s + 0.1 for s in trace.spans
    ), trace.render()
    assert by_id  # silence linters; the mapping itself was the check


@needs_rpc
class TestRpcTracePropagation:
    @pytest.mark.parametrize("wire", ["pickle", "columnar"])
    @pytest.mark.parametrize(
        "mode",
        ["pipelined", "coalesced"],
    )
    def test_worker_spans_ship_back_over_the_wire(
        self, university, wire, mode
    ):
        overrides = dict(
            shards=2, shard_transport="rpc", wire_format=wire
        )
        if mode == "coalesced":
            overrides.update(coalesce_window_ms=4.0, coalesce_max_batch=4)
        with traced_service(university, **overrides) as service:
            outcome = service.submit(STAR_QUERY, name="rpc-star")
            trace = service.trace(outcome)
            assert trace is not None
            _assert_rpc_trace(trace)
            # And the trace exports cleanly.
            names = {s.name for s in trace.spans}
            assert {"parse", "canonicalize", "optimize", "execute"} <= names

    def test_coalesced_queries_fan_spans_back_per_flight(self, university):
        with traced_service(
            university,
            shards=2,
            shard_transport="rpc",
            coalesce_window_ms=25.0,
            coalesce_max_batch=8,
        ) as service:
            outcomes = service.submit_batch(
                [STAR_QUERY, CHAIN_QUERY], dedup=False
            )
            traces = [service.trace(o) for o in outcomes]
            assert all(t is not None for t in traces)
            for trace in traces:
                _assert_rpc_trace(trace)
            # A genuinely shared batch marks its members; whether the
            # two queries' levels actually landed in one window is
            # timing-dependent, so only check the attr's consistency.
            for trace in traces:
                for s in trace.find("rpc:level"):
                    assert s.attrs.get("coalesced", 1) >= 1

    def test_worker_kill_mid_workload_records_retry_span(self, university):
        from repro.cluster.rpc import RpcShardRouter

        with traced_service(
            university, shards=2, shard_transport="rpc"
        ) as service:
            service.submit(STAR_QUERY)  # workers up, template shipped
            router = service.executor.router
            assert isinstance(router, RpcShardRouter)
            victim = router._clients[0]
            victim.process.kill()
            victim.process.join(timeout=10)
            # Defeat the pre-send liveness check so the death is
            # discovered *in flight* — the mid-workload crash shape —
            # and the request exercises the respawn-retry path instead
            # of recovering before the first send.
            victim.alive = lambda: True
            outcome = service.submit(STAR_QUERY, name="retried")
            trace = service.trace(outcome)
            retries = trace.find("rpc:retry")
            assert retries, trace.render()
            assert retries[0].attrs["shard"] == 0
            assert retries[0].duration_s > 0
            # The retried level still shipped its worker breakdown.
            _assert_rpc_trace(trace)

    def test_failed_probe_surfaces_as_stale_gauge(self, university):
        with traced_service(
            university, shards=2, shard_transport="rpc"
        ) as service:
            service.submit(STAR_QUERY)
            router = service.executor.router
            live = router.worker_gauges()
            assert [s for s, _ in live] == [0, 1]
            assert all(r is not None for _, r in live)
            # Simulate a probe failing mid-flight (worker dying between
            # the liveness check and the Stats request).
            router.worker_gauges = lambda: [(0, None), (1, live[1][1])]
            snapshot = service.snapshot_stats()
            gauges = snapshot.shard_workers
            assert [g.shard for g in gauges] == [0, 1]
            assert gauges[0].stale and not gauges[1].stale
            assert "shard 0 worker: STALE (probe failed)" in snapshot.format()
            text = service.render_prometheus()
            assert 'repro_shard_worker{shard="0",field="stale"} 1' in text
