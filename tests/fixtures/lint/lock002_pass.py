"""LOCK002 pass: nested acquisition follows the declared hierarchy
(outer tier 20 store lock, then tier 40 stats leaf)."""

import threading


class Engine:
    def __init__(self):
        self._store_lock = threading.Lock()
        self._stats_lock = threading.Lock()

    def mutate(self):
        with self._store_lock:
            with self._stats_lock:
                pass
