"""LOCK001 fail: a guarded attribute touched without its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        self.count += 1  # unlocked read-modify-write
