"""LINT000 fail: a suppression with no justification is itself an error
(and does not silence the underlying finding)."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        self.count += 1  # lint: disable=LOCK001
