"""LOCK001 pass: the unlocked access carries a justified suppression."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def peek(self):
        return self.count  # lint: disable=LOCK001 — advisory snapshot read, torn values acceptable
