"""LOCK002 fail: a tier-20 lock acquired while a tier-40 leaf is held."""

import threading


class Engine:
    def __init__(self):
        self._store_lock = threading.Lock()
        self._stats_lock = threading.Lock()

    def inverted(self):
        with self._stats_lock:
            with self._store_lock:
                pass
