"""SPEC001 fail: an unfrozen spec with a Callable field and a lambda
default — unpicklable by reference, so a process backend would break."""

from dataclasses import dataclass, field
from typing import Callable


class MapTaskSpec:  # stand-in for repro.mapreduce.jobs.MapTaskSpec
    pass


@dataclass
class ClosureSpec(MapTaskSpec):
    fn: Callable[[], list]
    fallback: object = field(default=lambda: [])
