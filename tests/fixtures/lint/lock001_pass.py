"""LOCK001 pass: every guarded access is inside `with` (or an alias)."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.count += 1

    def read_via_alias(self):
        lock = self._lock
        with lock:
            return self.count
