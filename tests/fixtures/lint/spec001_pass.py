"""SPEC001 pass: a frozen dataclass spec with plain-data fields."""

from dataclasses import dataclass


class MapTaskSpec:  # stand-in for repro.mapreduce.jobs.MapTaskSpec
    pass


@dataclass(frozen=True)
class ScanSpec(MapTaskSpec):
    pattern: tuple
    node: int
