"""FRAME001 pass: every frame sits in exactly one dispatch table and
every worker frame is isinstance-matched."""


class Ping:
    pass


class Pong:
    pass


MESSAGE_TYPES = (Ping, Pong)
WORKER_HANDLED = (Ping,)
CLIENT_HANDLED = (Pong,)


def dispatch(msg):
    if isinstance(msg, Ping):
        return Pong()
    raise ValueError(msg)
