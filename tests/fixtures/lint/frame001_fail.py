"""FRAME001 fail: a declared frame in neither dispatch table, and a
worker-handled frame the dispatcher never isinstance-matches."""


class Ping:
    pass


class Pong:
    pass


class Quux:
    pass


MESSAGE_TYPES = (Ping, Pong, Quux)
WORKER_HANDLED = (Ping,)
CLIENT_HANDLED = (Pong,)


def dispatch(msg):
    return None
