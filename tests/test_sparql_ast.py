"""Unit tests for repro.sparql.ast."""

import pytest

from repro.sparql.ast import BGPQuery, TriplePattern


class TestTriplePattern:
    def test_variables_order_and_dedup(self):
        tp = TriplePattern("?x", "?p", "?x")
        assert tp.variables() == ("?x", "?p")

    def test_constants(self):
        tp = TriplePattern("?x", "ub:worksFor", "<dept>")
        assert tp.constants() == ("ub:worksFor", "<dept>")

    def test_positions_of(self):
        tp = TriplePattern("?x", "p", "?x")
        assert tp.positions_of("?x") == ("s", "o")
        assert tp.positions_of("?y") == ()

    def test_a_shorthand_normalized(self):
        tp = TriplePattern("?x", "a", "ub:Dept")
        assert tp.p == "rdf:type"

    def test_literal_subject_rejected(self):
        with pytest.raises(ValueError):
            TriplePattern('"lit"', "p", "?o")

    def test_literal_property_rejected(self):
        with pytest.raises(ValueError):
            TriplePattern("?s", '"lit"', "?o")

    def test_str(self):
        assert str(TriplePattern("?x", "p", '"v"')) == '?x p "v"'


class TestBGPQuery:
    def q(self, *patterns, head=("?x",)):
        return BGPQuery(tuple(head), tuple(patterns))

    def test_variables_in_order(self):
        q = self.q(
            TriplePattern("?x", "p1", "?y"),
            TriplePattern("?y", "p2", "?z"),
        )
        assert q.variables() == ("?x", "?y", "?z")

    def test_join_variables(self):
        q = self.q(
            TriplePattern("?x", "p1", "?y"),
            TriplePattern("?y", "p2", "?z"),
            TriplePattern("?y", "p3", "?x"),
        )
        assert set(q.join_variables()) == {"?x", "?y"}

    def test_empty_patterns_rejected(self):
        with pytest.raises(ValueError):
            BGPQuery(("?x",), ())

    def test_unknown_distinguished_rejected(self):
        with pytest.raises(ValueError):
            self.q(TriplePattern("?x", "p", "?y"), head=("?zz",))

    def test_non_variable_distinguished_rejected(self):
        with pytest.raises(ValueError):
            self.q(TriplePattern("?x", "p", "?y"), head=("x",))

    def test_connected_chain(self):
        q = self.q(
            TriplePattern("?x", "p1", "?y"),
            TriplePattern("?y", "p2", "?z"),
        )
        assert q.is_connected()

    def test_disconnected_product(self):
        q = self.q(
            TriplePattern("?x", "p1", "?y"),
            TriplePattern("?a", "p2", "?b"),
        )
        assert not q.is_connected()

    def test_single_pattern_connected(self):
        assert self.q(TriplePattern("?x", "p", "?y")).is_connected()

    def test_len_and_iter(self):
        q = self.q(
            TriplePattern("?x", "p1", "?y"),
            TriplePattern("?x", "p2", "?z"),
        )
        assert len(q) == 2
        assert [tp.p for tp in q] == ["p1", "p2"]
