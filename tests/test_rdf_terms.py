"""Unit tests for repro.rdf.terms."""

import pytest

from repro.rdf import terms


class TestClassification:
    def test_variable(self):
        assert terms.is_variable("?x")
        assert not terms.is_variable("x")
        assert terms.kind_of("?x") is terms.TermKind.VARIABLE

    def test_literal(self):
        assert terms.is_literal('"C1"')
        assert not terms.is_literal("C1")
        assert terms.kind_of('"C1"') is terms.TermKind.LITERAL

    def test_blank(self):
        assert terms.is_blank("_:b0")
        assert terms.kind_of("_:b0") is terms.TermKind.BLANK

    def test_iri_full_and_prefixed(self):
        assert terms.is_iri("<http://example.org/a>")
        assert terms.is_iri("ub:worksFor")
        assert terms.kind_of("ub:worksFor") is terms.TermKind.IRI

    def test_constants(self):
        assert terms.is_constant('"lit"')
        assert terms.is_constant("<iri>")
        assert not terms.is_constant("?v")


class TestAccessors:
    def test_variable_name(self):
        assert terms.variable_name("?abc") == "abc"

    def test_variable_name_rejects_non_variable(self):
        with pytest.raises(ValueError):
            terms.variable_name("abc")

    def test_literal_value(self):
        assert terms.literal_value('"C1"') == "C1"

    def test_literal_value_rejects_non_literal(self):
        with pytest.raises(ValueError):
            terms.literal_value("C1")

    def test_make_literal_roundtrip(self):
        assert terms.literal_value(terms.make_literal("hello")) == "hello"

    def test_make_variable_idempotent(self):
        assert terms.make_variable("x") == "?x"
        assert terms.make_variable("?x") == "?x"


class TestValidateTriple:
    def test_valid_triple(self):
        terms.validate_triple("<s>", "<p>", '"o"')

    def test_blank_subject_allowed(self):
        terms.validate_triple("_:b", "<p>", "<o>")

    def test_literal_subject_rejected(self):
        with pytest.raises(ValueError):
            terms.validate_triple('"s"', "<p>", "<o>")

    def test_variable_object_rejected(self):
        with pytest.raises(ValueError):
            terms.validate_triple("<s>", "<p>", "?o")

    def test_blank_property_rejected(self):
        with pytest.raises(ValueError):
            terms.validate_triple("<s>", "_:p", "<o>")
