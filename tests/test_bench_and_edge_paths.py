"""Tests for the bench harness and remaining execution edge paths."""

import random

import pytest

from repro.bench import paper_data
from repro.bench.harness import format_table, paper_vs_measured_table
from repro.core.algorithm import cliquesquare
from repro.core.decomposition import ALL_OPTIONS, MSC
from repro.mapreduce.engine import ClusterConfig
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import PlanExecutor
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import BGPQuery, TriplePattern
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import parse_query
from repro.workloads.lubm_queries import QUERY_NAMES
from tests.conftest import fig14_query


class TestPaperData:
    def test_option_tables_cover_all_options(self):
        option_names = {o.name for o in ALL_OPTIONS}
        for table in (
            paper_data.FIG16_PLAN_COUNTS,
            paper_data.FIG17_OPTIMALITY_RATIO,
            paper_data.FIG18_OPTIMIZATION_TIME_MS,
            paper_data.FIG19_UNIQUENESS_RATIO,
        ):
            assert set(table) == option_names
            for row in table.values():
                assert set(row) == set(paper_data.SHAPE_ORDER)

    def test_fig9_covers_all_options(self):
        names = {n for group in paper_data.FIG9_HO_CLASSIFICATION.values() for n in group}
        assert names == {o.name for o in ALL_OPTIONS}

    def test_fig20_fig21_fig22_cover_workload(self):
        assert set(paper_data.FIG20_JOB_SIGNATURES) == set(QUERY_NAMES)
        assert set(paper_data.FIG21_JOB_SIGNATURES) == set(QUERY_NAMES)
        assert set(paper_data.FIG22_TABLE) == set(QUERY_NAMES)

    def test_fig22_structure_matches_workload_module(self):
        from repro.workloads.lubm_queries import FIG22_CHARACTERISTICS

        for name, (tps, jv, _) in paper_data.FIG22_TABLE.items():
            assert FIG22_CHARACTERISTICS[name] == (tps, jv)


class TestHarnessFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["longer", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_paper_vs_measured_interleaves(self):
        paper = {"MSC": {"chain": 1.0}}
        ours = {"MSC": {"chain": 2.0}}
        text = paper_vs_measured_table("t", ["MSC"], ["chain"], paper, ours)
        assert "chain(paper)" in text and "chain(ours)" in text
        assert "1.00" in text and "2.00" in text


class TestVariablePredicateExecution:
    """The Fig. 14 query has a fully-variable pattern: the map scan must
    read a whole replica (no property file narrowing)."""

    def graph(self):
        rng = random.Random(3)
        g = RDFGraph(validate=False)
        vals = [f"<w{i}>" for i in range(4)]
        props = ["p1", "p3", "p4", "<edge>"]
        for i in range(60):
            g.add(rng.choice(vals), rng.choice(props), rng.choice(vals))
        return g

    def test_fig14_end_to_end(self):
        q = fig14_query()
        g = self.graph()
        expected = evaluate(q, g)
        store = partition_graph(g, 4)
        executor = PlanExecutor(store, ClusterConfig(num_nodes=4))
        result = cliquesquare(q, MSC, timeout_s=20)
        assert result.plans
        for plan in result.unique_plans()[:3]:
            assert executor.execute(plan).rows == expected

    def test_predicate_join_variable(self):
        """Joining on a variable in predicate position uses the 'p'
        replica for co-location."""
        q = BGPQuery(
            ("?p",),
            (
                TriplePattern("?x", "?p", "?y"),
                TriplePattern("?a", "?p", "?b"),
            ),
        )
        g = self.graph()
        expected = evaluate(q, g)
        store = partition_graph(g, 4)
        executor = PlanExecutor(store, ClusterConfig(num_nodes=4))
        plan = cliquesquare(q, MSC).plans[0]
        run = executor.execute(plan)
        assert run.rows == expected
        assert run.job_signature() == "M"  # p-p join is co-located


class TestSelectOperatorPath:
    def test_logical_select_translates_and_runs(self):
        """Hand-built plans may carry explicit Select operators."""
        from repro.core.logical import LogicalPlan, Match, Select, make_join

        g = RDFGraph(
            [
                ("<a>", "p", "<b>"),
                ("<c>", "p", "<b>"),
                ("<b>", "q", "<d>"),
            ]
        )
        t1 = TriplePattern("?x", "p", "?y")
        t2 = TriplePattern("?y", "q", "?z")
        q = BGPQuery(("?x",), (t1, t2))
        body = Select(conditions=(), child=make_join([Match(t1), Match(t2)]))
        plan = LogicalPlan.wrap(body, q)
        store = partition_graph(g, 2)
        executor = PlanExecutor(store, ClusterConfig(num_nodes=2))
        assert executor.execute(plan).rows == evaluate(q, g)


class TestExecutionReportTotals:
    def test_total_work_at_least_response_time(self):
        g = RDFGraph([("<a>", "p", "<b>"), ("<b>", "q", "<c>"), ("<c>", "r", "<d>")])
        q = parse_query("SELECT ?x WHERE { ?x p ?y . ?y q ?z . ?z r ?w }")
        store = partition_graph(g, 3)
        executor = PlanExecutor(store, ClusterConfig(num_nodes=3))
        plan = cliquesquare(q, MSC).plans[0]
        report = executor.execute(plan).report
        assert report.total_work >= report.response_time
        assert report.levels  # level structure recorded
        assert sum(len(lv) for lv in report.levels) == report.num_jobs
