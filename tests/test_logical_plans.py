"""Unit tests for logical operators and plans (§4.1)."""

import pytest

from repro.core.logical import (
    Join,
    LogicalPlan,
    Match,
    Project,
    Select,
    make_join,
    signature,
)
from repro.sparql.ast import TriplePattern
from repro.sparql.parser import parse_query

T1 = TriplePattern("?a", "p1", "?b")
T2 = TriplePattern("?a", "p2", "?c")
T3 = TriplePattern("?c", "p3", "?d")


class TestMatch:
    def test_attrs(self):
        assert Match(T1).attrs == ("?a", "?b")

    def test_patterns(self):
        assert Match(T1).patterns() == frozenset([T1])


class TestJoin:
    def test_attrs_union_in_order(self):
        j = Join(on=("?a",), inputs=(Match(T1), Match(T2)))
        assert j.attrs == ("?a", "?b", "?c")

    def test_requires_two_inputs(self):
        with pytest.raises(ValueError):
            Join(on=("?a",), inputs=(Match(T1),))

    def test_on_must_be_shared(self):
        with pytest.raises(ValueError):
            Join(on=("?b",), inputs=(Match(T1), Match(T2)))

    def test_empty_on_rejected(self):
        with pytest.raises(ValueError):
            Join(on=(), inputs=(Match(T1), Match(T2)))

    def test_patterns_accumulate(self):
        j = Join(on=("?a",), inputs=(Match(T1), Match(T2)))
        assert j.patterns() == frozenset([T1, T2])


class TestMakeJoin:
    def test_computes_intersection(self):
        j = make_join([Match(T1), Match(T2)])
        assert isinstance(j, Join)
        assert j.on == ("?a",)

    def test_dedupes_identical_children(self):
        assert make_join([Match(T1), Match(T1)]) == Match(T1)

    def test_sorts_children_canonically(self):
        j1 = make_join([Match(T1), Match(T2)])
        j2 = make_join([Match(T2), Match(T1)])
        assert j1 == j2
        assert signature(j1) == signature(j2)

    def test_multi_attribute_join(self):
        ta = TriplePattern("?x", "p", "?y")
        tb = TriplePattern("?y", "q", "?x")
        j = make_join([Match(ta), Match(tb)])
        assert set(j.on) == {"?x", "?y"}


class TestSelectProject:
    def test_select_preserves_attrs(self):
        s = Select(conditions=(("?b", '"v"'),), child=Match(T1))
        assert s.attrs == ("?a", "?b")

    def test_project_restricts_attrs(self):
        p = Project(on=("?b",), child=Match(T1))
        assert p.attrs == ("?b",)

    def test_project_validates_attrs(self):
        with pytest.raises(ValueError):
            Project(on=("?zz",), child=Match(T1))


class TestLogicalPlan:
    def q(self):
        return parse_query("SELECT ?a WHERE { ?a p1 ?b . ?a p2 ?c }")

    def test_wrap_adds_projection(self):
        q = self.q()
        body = make_join([Match(q.patterns[0]), Match(q.patterns[1])])
        plan = LogicalPlan.wrap(body, q)
        assert isinstance(plan.root, Project)
        assert plan.root.on == ("?a",)
        assert plan.body is body

    def test_wrap_skips_projection_when_exact(self):
        q = parse_query("SELECT ?a ?b WHERE { ?a p1 ?b }")
        body = Match(q.patterns[0])
        plan = LogicalPlan.wrap(body, q)
        assert plan.root is body

    def test_plan_equality_is_structural(self):
        q = self.q()
        b1 = make_join([Match(q.patterns[0]), Match(q.patterns[1])])
        b2 = make_join([Match(q.patterns[1]), Match(q.patterns[0])])
        assert LogicalPlan.wrap(b1, q) == LogicalPlan.wrap(b2, q)
        assert hash(LogicalPlan.wrap(b1, q)) == hash(LogicalPlan.wrap(b2, q))

    def test_iter_operators_visits_dag_nodes_once(self):
        shared = make_join([Match(T2), Match(T3)])
        top = Join(on=("?c",), inputs=(shared, Match(T3)))
        ops = list(top.iter_operators())
        assert len(ops) == len({id(o) for o in ops})

    def test_str_rendering(self):
        j = make_join([Match(T1), Match(T2)])
        assert "J_a" in str(j)
        assert "M[?a p1 ?b]" in str(j)
