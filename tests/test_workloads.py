"""Tests for the LUBM generator, the 14-query workload, and the
synthetic query generator."""

import pytest

from repro.rdf.terms import RDF_TYPE
from repro.sparql.evaluator import evaluate
from repro.workloads import lubm
from repro.workloads.lubm_queries import (
    FIG22_CHARACTERISTICS,
    NON_SELECTIVE,
    ORIGINAL,
    QUERY_NAMES,
    SELECTIVE,
    all_queries,
    query,
)
from repro.workloads.synthetic import (
    SHAPES,
    SyntheticWorkload,
    chain_query,
    random_query,
    star_query,
)


@pytest.fixture(scope="module")
def small_lubm():
    return lubm.generate(lubm.LUBMConfig(universities=4, undergraduates_per_department=6))


class TestLUBMGenerator:
    def test_deterministic(self):
        cfg = lubm.LUBMConfig(universities=4)
        assert set(lubm.generate(cfg)) == set(lubm.generate(cfg))

    def test_seed_changes_data(self):
        a = lubm.generate(lubm.LUBMConfig(universities=4, seed=1))
        b = lubm.generate(lubm.LUBMConfig(universities=4, seed=2))
        assert set(a) != set(b)

    def test_scales_with_universities(self):
        small = lubm.generate(lubm.LUBMConfig(universities=4))
        large = lubm.generate(lubm.LUBMConfig(universities=8))
        assert len(large) > 1.8 * len(small) * 0.9

    def test_minimum_universities_enforced(self):
        with pytest.raises(ValueError):
            lubm.LUBMConfig(universities=3)

    def test_schema_properties_present(self, small_lubm):
        expected = {
            RDF_TYPE,
            "ub:worksFor",
            "ub:memberOf",
            "ub:subOrganizationOf",
            "ub:teacherOf",
            "ub:takesCourse",
            "ub:advisor",
            "ub:emailAddress",
            "ub:doctoralDegreeFrom",
            "ub:undergraduateDegreeFrom",
            "ub:name",
        }
        assert expected <= small_lubm.properties

    def test_university0_exists(self, small_lubm):
        assert (lubm.UNIVERSITY0, RDF_TYPE, "ub:University") in small_lubm

    def test_university3_named(self, small_lubm):
        assert small_lubm.count_match("?u", "ub:name", '"University3"') == 1


class TestWorkloadQueries:
    def test_all_fourteen_parse(self):
        queries = all_queries()
        assert [q.name for q in queries] == list(QUERY_NAMES)

    def test_fig22_triple_pattern_counts(self):
        for name, (tps, _) in FIG22_CHARACTERISTICS.items():
            assert len(query(name).patterns) == tps, name

    def test_fig22_join_variable_counts(self):
        for name, (_, jv) in FIG22_CHARACTERISTICS.items():
            assert len(query(name).join_variables()) == jv, name

    def test_all_queries_connected(self):
        for q in all_queries():
            assert q.is_connected(), q.name

    def test_selectivity_classes_partition_workload(self):
        assert SELECTIVE | NON_SELECTIVE == set(QUERY_NAMES)
        assert not SELECTIVE & NON_SELECTIVE

    def test_original_queries_subset(self):
        assert ORIGINAL <= set(QUERY_NAMES)

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            query("Q99")

    def test_all_queries_nonempty_on_generated_data(self, small_lubm):
        """Every workload query must return answers (the paper modified
        LUBM queries so that none is empty without reasoning)."""
        for q in all_queries():
            assert evaluate(q, small_lubm), f"{q.name} is empty"

    def test_selective_vs_nonselective_ordering(self, small_lubm):
        """Selective queries return far fewer answers than non-selective
        ones, matching the paper's two classes.  At laptop scale the
        classes can overlap at the boundary (Q3 vs Q12: their cardinality
        ratio is scale-dependent), so the medians are compared."""
        import statistics

        cards = {q.name: len(evaluate(q, small_lubm)) for q in all_queries()}
        median_selective = statistics.median(cards[n] for n in SELECTIVE)
        median_nonselective = statistics.median(cards[n] for n in NON_SELECTIVE)
        assert median_selective * 3 < median_nonselective


class TestSyntheticGenerator:
    def test_chain_shape(self):
        q = chain_query(5)
        assert len(q) == 5
        assert len(q.join_variables()) == 4
        assert q.is_connected()

    def test_star_shape(self):
        q = star_query(5)
        assert len(q.join_variables()) == 1
        assert q.is_connected()

    def test_random_thin_connected(self):
        import random

        rng = random.Random(1)
        for n in (1, 3, 6, 10):
            q = random_query(n, dense=False, rng=rng)
            assert len(q) == n
            assert q.is_connected()

    def test_random_dense_has_many_shared_variables(self):
        import random

        rng = random.Random(2)
        thin = random_query(8, dense=False, rng=rng)
        dense = random_query(8, dense=True, rng=rng)
        assert len(set(dense.variables())) <= len(set(thin.variables()))

    def test_workload_batch(self):
        wl = SyntheticWorkload(queries_per_shape=10)
        batch = wl.generate()
        assert set(batch) == set(SHAPES)
        for shape, queries in batch.items():
            assert len(queries) == 10
            sizes = [len(q) for q in queries]
            assert min(sizes) == 1 and max(sizes) == 10
            assert all(q.is_connected() for q in queries)

    def test_workload_deterministic(self):
        a = SyntheticWorkload(seed=5).generate(["thin"])
        b = SyntheticWorkload(seed=5).generate(["thin"])
        assert [q.patterns for q in a["thin"]] == [q.patterns for q in b["thin"]]

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            SyntheticWorkload().generate(["triangle"])

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            chain_query(0)
        with pytest.raises(ValueError):
            star_query(0)
