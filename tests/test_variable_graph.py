"""Unit tests for variable graphs (Definitions 3.1, 3.3, 3.4)."""

import pytest

from repro.core.variable_graph import VariableGraph, canonical_decomposition
from repro.sparql.parser import parse_query


def graph_of(text: str) -> VariableGraph:
    return VariableGraph.from_query(parse_query(text))


class TestConstruction:
    def test_one_node_per_pattern(self, paper_q1):
        g = VariableGraph.from_query(paper_q1)
        assert len(g) == 11
        assert all(len(ns) == 1 for ns in g.nodes)

    def test_node_variables(self):
        g = graph_of("SELECT ?x WHERE { ?x p ?y . ?y q ?z }")
        assert g.node_variables(0) == {"?x", "?y"}
        assert g.node_variables(1) == {"?y", "?z"}

    def test_edge_map_is_maximal_cliques(self, paper_q1):
        g = VariableGraph.from_query(paper_q1)
        edges = g.edge_map()
        # Fig. 1: c`d = {t3, t4, t5, t6} (0-based indices 2..5)
        assert set(edges["?d"]) == {2, 3, 4, 5}
        assert set(edges["?a"]) == {0, 1, 2}
        assert set(edges["?g"]) == {6, 7, 8}
        # non-join variables label no edges
        assert "?b" not in edges and "?h" not in edges

    def test_edges_multigraph(self):
        # two patterns sharing two variables -> two parallel edges
        g = graph_of("SELECT ?x WHERE { ?x p ?y . ?y q ?x }")
        labels = {v for (_, v, _) in g.edges()}
        assert labels == {"?x", "?y"}

    def test_connectivity(self, paper_q1):
        assert VariableGraph.from_query(paper_q1).is_connected()

    def test_disconnected_graph(self):
        g = VariableGraph.from_patterns(
            parse_query("SELECT * WHERE { ?x p ?y . ?a q ?b }").patterns
        )
        assert not g.is_connected()


class TestReduction:
    def test_reduce_merges_patterns(self):
        g = graph_of("SELECT ?y WHERE { ?x p ?y . ?y q ?z . ?z r ?w }")
        reduced = g.reduce([frozenset({0, 1}), frozenset({2})])
        assert len(reduced) == 2
        assert reduced.provenance == (frozenset({0, 1}), frozenset({2}))
        sizes = sorted(len(ns) for ns in reduced.nodes)
        assert sizes == [1, 2]

    def test_reduce_edges_recomputed(self):
        g = graph_of("SELECT ?y WHERE { ?x p ?y . ?y q ?z . ?z r ?w }")
        reduced = g.reduce([frozenset({0, 1}), frozenset({2})])
        # merged node {t0,t1} shares ?z with {t2}
        assert {v for (_, v, _) in reduced.edges()} == {"?z"}

    def test_paper_example_reduction(self, paper_q1):
        """Fig. 5(a): the first CliqueSquare-MSC reduction of Q1."""
        g = VariableGraph.from_query(paper_q1)
        d = [
            frozenset({0, 1}),
            frozenset({2, 3, 4, 5}),
            frozenset({6, 7, 8}),
            frozenset({9, 10}),
        ]
        reduced = g.reduce(d)
        assert len(reduced) == 4
        labels = {v for (_, v, _) in reduced.edges()}
        assert labels == {"?a", "?f", "?i"}  # as drawn in Fig. 5(a)

    def test_clique_join_variables(self, paper_q1):
        g = VariableGraph.from_query(paper_q1)
        assert g.clique_join_variables(frozenset({2, 3, 4, 5})) == {"?d"}


class TestDecompositionValidation:
    def g(self):
        return graph_of("SELECT ?y WHERE { ?x p ?y . ?y q ?z . ?z r ?w }")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            self.g().reduce([])

    def test_too_many_cliques_rejected(self):
        # |D| must be < |N| (Def. 3.3)
        with pytest.raises(ValueError):
            self.g().reduce([frozenset({0}), frozenset({1}), frozenset({2})])

    def test_non_covering_rejected(self):
        with pytest.raises(ValueError):
            self.g().reduce([frozenset({0, 1})])

    def test_non_clique_rejected(self):
        # t0 and t2 share no variable
        with pytest.raises(ValueError):
            self.g().reduce([frozenset({0, 2}), frozenset({1})])

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            self.g().reduce([frozenset({0, 7}), frozenset({1, 2})])

    def test_canonical_decomposition_dedupes_and_sorts(self):
        d = canonical_decomposition(
            [frozenset({2}), frozenset({0, 1}), frozenset({0, 1})]
        )
        assert d == (frozenset({0, 1}), frozenset({2}))


class TestCanonicalKey:
    def test_key_insensitive_to_node_order(self):
        q = parse_query("SELECT ?y WHERE { ?x p ?y . ?y q ?z }")
        g1 = VariableGraph(nodes=(frozenset([q.patterns[0]]), frozenset([q.patterns[1]])))
        g2 = VariableGraph(nodes=(frozenset([q.patterns[1]]), frozenset([q.patterns[0]])))
        assert g1.canonical_key() == g2.canonical_key()
