"""repro.columnar: block round-trips, dictionary deltas, wire packing,
and vectorized-vs-tuple kernel equivalence.

The deterministic randomized tests always run (seeded ``random``); the
property-based tests additionally run under hypothesis when it is
installed (the tier-1 CI leg installs pytest only, so they are gated).
Everything here works with or without numpy — ``ColumnBlock`` falls
back to ``array('q')`` columns — and ``REPRO_COLUMNAR_FORCE_FALLBACK=1``
re-runs the whole file on the stdlib path.
"""

from __future__ import annotations

import random

import pytest

from repro.columnar.block import ColumnBlock, to_blocks, to_rows
from repro.columnar.kernels import (
    HashMemo,
    project_block,
    select_bind,
    shuffle_partitions,
    star_join_blocks,
)
from repro.columnar.wire import (
    PackedRows,
    RawRows,
    WireCodec,
    pack_emits,
    pack_rows,
    unpack_emits,
    unpack_rows,
)
from repro.mapreduce.jobs import stable_hash
from repro.rdf.dictionary import Dictionary
from repro.relational.joins import star_join
from repro.relational.relation import Relation

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # tier-1 CI leg installs pytest only
    HAVE_HYPOTHESIS = False

#: terms spanning every RDF shape the dictionary must hold losslessly
TERMS = [
    "<http://example.org/u/Alice>",
    "<http://example.org/u/Bob#frag>",
    'ub:name "Ann \\"the\\" author"',
    '"literal with spaces and unicode: é中文"',
    '"42"^^<http://www.w3.org/2001/XMLSchema#integer>',
    "_:b0",
    "_:blank-node.17",
    "",
    "plain",
]


# -- ColumnBlock round-trips ---------------------------------------------------


def test_block_roundtrip_preserves_rows_and_order():
    d = Dictionary()
    rows = [
        (TERMS[0], TERMS[2], TERMS[5]),
        (TERMS[1], TERMS[3], TERMS[6]),
        (TERMS[0], TERMS[2], TERMS[5]),  # duplicates survive
        (TERMS[7], TERMS[8], TERMS[4]),
    ]
    block = ColumnBlock.from_rows(("?s", "?p", "?o"), rows, d)
    assert len(block) == 4
    assert block.to_rows(d) == rows


def test_block_relation_seam_roundtrip():
    d = Dictionary()
    relation = Relation(("?x", "?y"), [(a, b) for a in TERMS for b in TERMS])
    block = to_blocks(relation, d)
    assert block.attrs == ("?x", "?y")
    assert to_rows(block, d) == list(relation.rows)


def test_empty_block_roundtrip():
    d = Dictionary()
    block = ColumnBlock.from_rows(("?x",), [], d)
    assert len(block) == 0
    assert block.to_rows(d) == []
    assert ColumnBlock.empty(()).to_rows(d) == []


def test_block_column_lookup():
    d = Dictionary()
    block = ColumnBlock.from_rows(("?a", "?b"), [("x", "y")], d)
    assert list(block.column("?b")) == [d.encode("y")]
    with pytest.raises(KeyError):
        block.column("?missing")


# -- dictionary deltas ---------------------------------------------------------


def test_delta_merge_replicates_sender():
    sender, receiver = Dictionary(), Dictionary()
    for term in ("shared-a", "shared-b"):
        sender.encode(term)
        receiver.encode(term)
    mark = len(sender)
    ids = [sender.encode(t) for t in TERMS]
    receiver.merge_entries(mark, sender.entries_from(mark))
    assert len(receiver) == len(sender)
    for term, ident in zip(TERMS, ids):
        assert receiver.decode(ident) == term
        assert receiver.lookup(term) == ident


def test_delta_merge_is_idempotent():
    sender, receiver = Dictionary(), Dictionary()
    sender.encode("seed")
    receiver.encode("seed")
    sender.encode("new-term")
    delta = sender.entries_from(1)
    receiver.merge_entries(1, delta)
    receiver.merge_entries(1, delta)  # re-delivery after a retry
    assert len(receiver) == 2
    assert receiver.decode(1) == "new-term"


def test_delta_gap_and_conflict_rejected():
    receiver = Dictionary()
    receiver.encode("a")
    with pytest.raises(ValueError, match="gap"):
        receiver.merge_entries(5, ("x",))
    with pytest.raises(ValueError):
        receiver.merge_entries(0, ("not-a",))


def test_delta_ships_only_unseen_terms():
    sender = Dictionary()
    sender.encode("resident")
    mark = len(sender)
    sender.encode("resident")  # already seen: id reused, no new entry
    assert sender.entries_from(mark) == ()
    sender.encode("fresh")
    assert sender.entries_from(mark) == ("fresh",)


# -- wire packing --------------------------------------------------------------


def test_pack_rows_roundtrip_and_width_selection():
    d = Dictionary()
    # force ids into each width class: 1, 2, 4 bytes
    for i in range(70000):
        d.encode(f"t{i}")
    for ids, width in (([0, 1], 1), ([300, 12], 2), ([69999, 3], 4)):
        rows = [(d.decode(i),) for i in ids]
        packed = pack_rows(rows, d.encode)
        assert isinstance(packed, PackedRows)
        assert packed.widths == (width,)
        assert len(packed.data) == width * len(ids)
        assert unpack_rows(packed, d.decode) == rows


def test_pack_rows_smaller_than_pickle_on_wide_terms():
    import pickle

    d = Dictionary()
    rows = [
        (f"<http://example.org/dept{i % 7}/person{i}>", f'"name {i}"')
        for i in range(500)
    ]
    for row in rows:
        for term in row:
            d.encode(term)  # terms resident on both ends: only ids ship
    packed = pack_rows(rows, d.encode)
    assert len(packed.data) < len(pickle.dumps(rows))


def test_pack_rows_falls_back_on_ragged_or_nonstring():
    d = Dictionary()
    for rows in ([("a",), ("b", "c")], [("a", 1)], [(None,)]):
        packed = pack_rows(rows, d.encode)
        assert isinstance(packed, RawRows)
        assert unpack_rows(packed, d.decode) == rows
    assert len(d) == 0  # fallback must not pollute the send dictionary


def test_pack_emits_roundtrip():
    d = Dictionary()
    emits = [(3, 0, ("a", "b")), (1, 2, ("c", "a")), (0, 1, ("b", "b"))]
    packed = pack_emits(emits, d.encode)
    assert not isinstance(packed, RawRows)
    assert unpack_emits(packed, d.decode) == emits
    bad = [(-1, 0, ("a",))]
    assert isinstance(pack_emits(bad, d.encode), RawRows)


def test_wire_codec_delta_watermark_protocol():
    from repro.partitioning.triple_partitioner import StoreSnapshot

    files = (
        {"f": (("s0", "p0", "o0"), ("s1", "p0", "o1"))},
        {"g": (("s2", "p1", "o2"),)},
    )
    snapshot = StoreSnapshot(
        num_nodes=2, replicas=("s", "p", "o"), files=files, token=(0, 0)
    )
    a, b = WireCodec(snapshot), WireCodec(snapshot)
    # resident terms ship as ids only; fresh terms ride the delta once
    rows1 = [("s0", "fresh-term"), ("s1", "o2")]
    packed = pack_rows(rows1, a.send.encode)
    frame, commit = a._frame(packed)
    assert frame.delta_terms == ("fresh-term",)
    # decode on the peer replays the delta before unpacking
    b.recv.merge_entries(frame.delta_start, frame.delta_terms)
    assert unpack_rows(frame.payload, b.recv.decode) == rows1
    # an uncommitted frame re-ships its delta (lost-frame retry) ...
    frame2, commit = a._frame(pack_rows(rows1, a.send.encode))
    assert frame2.delta_terms == ("fresh-term",)
    b.recv.merge_entries(frame2.delta_start, frame2.delta_terms)  # idempotent
    commit()
    # ... and after commit the delta is empty
    frame3, _ = a._frame(pack_rows(rows1, a.send.encode))
    assert frame3.delta_terms == ()


# -- kernel equivalence (deterministic randomized) -----------------------------


def random_relation(rng, attrs, terms, n):
    return Relation(
        attrs, [tuple(rng.choice(terms) for _ in attrs) for _ in range(n)]
    )


def assert_join_equivalent(inputs, on):
    """Vectorized and tuple star joins agree as row multisets."""
    d = Dictionary()
    blocks = [to_blocks(r, d) for r in inputs]
    expected = star_join(inputs, on=on)
    got = star_join_blocks(blocks, on=on)
    assert got.attrs == expected.attrs
    assert sorted(to_rows(got, d)) == sorted(expected.rows)


def test_star_join_equivalence_randomized():
    rng = random.Random(20150413)
    terms = [f"v{i}" for i in range(6)] + TERMS[:4]
    for trial in range(50):
        width = rng.randint(1, 3)
        num_inputs = rng.randint(2, 4)
        on = tuple(f"?k{i}" for i in range(width))
        inputs = [
            random_relation(
                rng,
                on + tuple(f"?a{j}.{i}" for i in range(rng.randint(0, 2))),
                terms,
                rng.randint(0, 12),
            )
            for j in range(num_inputs)
        ]
        assert_join_equivalent(inputs, on)


def test_star_join_shared_nonkey_attr_equivalence():
    # two inputs sharing a non-key attribute: merge must enforce equality
    left = Relation(("?k", "?x"), [("a", "1"), ("a", "2"), ("b", "1")])
    right = Relation(("?k", "?x", "?y"), [("a", "1", "p"), ("a", "3", "q")])
    assert_join_equivalent([left, right], on=("?k",))


def test_select_bind_matches_bind_triple():
    from repro.physical.translate import bind_triple
    from repro.sparql.ast import TriplePattern

    rng = random.Random(7)
    terms = ["a", "b", "c"]
    triples = [
        tuple(rng.choice(terms) for _ in range(3)) for _ in range(200)
    ]
    d = Dictionary()
    cols = tuple(
        ColumnBlock.from_rows(("?c",), [(t[i],) for t in triples], d).columns[0]
        for i in range(3)
    )
    for pattern in (
        TriplePattern("?s", "b", "?o"),
        TriplePattern("?s", "?p", "c"),
        TriplePattern("?x", "b", "?x"),  # repeated variable
        TriplePattern("?s", "never-seen", "?o"),
    ):
        expected = []
        for t in triples:
            row = bind_triple(pattern, t)
            if row is not None:
                expected.append(row)
        out_vars = pattern.variables()
        positions = {}
        for pos, part in enumerate((pattern.s, pattern.p, pattern.o)):
            if part.startswith("?"):
                positions.setdefault(part, []).append(pos)
        const_checks = [
            (pos, d.lookup(part))
            for pos, part in enumerate((pattern.s, pattern.p, pattern.o))
            if not part.startswith("?")
        ]
        var_positions = [tuple(positions[v]) for v in out_vars]
        selected = select_bind(cols, const_checks, var_positions)
        block = ColumnBlock(tuple(out_vars), tuple(selected))
        assert block.to_rows(d) == expected


def test_project_block_matches_relation_project():
    rng = random.Random(99)
    relation = random_relation(rng, ("?a", "?b", "?c"), ["x", "y", "z"], 40)
    d = Dictionary()
    block = to_blocks(relation, d)
    for attrs in (("?b",), ("?c", "?a"), ("?a", "?b", "?c")):
        got = to_rows(project_block(block, attrs), d)
        assert got == list(relation.project(attrs).rows)


def test_shuffle_partitions_match_stable_hash():
    rng = random.Random(3)
    relation = random_relation(rng, ("?k1", "?k2", "?v"), TERMS, 60)
    d = Dictionary()
    block = to_blocks(relation, d)
    memo = HashMemo(d)
    key = relation.key(("?k2", "?k1"))
    for num_reducers in (1, 3, 8):
        got = shuffle_partitions(block, ("?k2", "?k1"), num_reducers, memo)
        expected = [
            stable_hash(key(row)) % num_reducers for row in relation.rows
        ]
        assert got == expected


# -- property-based (hypothesis, optional) ------------------------------------

if HAVE_HYPOTHESIS:
    term_st = st.text(min_size=0, max_size=12)
    row3_st = st.tuples(term_st, term_st, term_st)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(row3_st, max_size=30))
    def test_prop_block_roundtrip(rows):
        d = Dictionary()
        block = ColumnBlock.from_rows(("?s", "?p", "?o"), rows, d)
        assert block.to_rows(d) == rows

    @settings(max_examples=60, deadline=None)
    @given(st.lists(row3_st, max_size=30))
    def test_prop_pack_roundtrip(rows):
        sender, receiver = Dictionary(), Dictionary()
        packed = pack_rows(rows, sender.encode)
        receiver.merge_entries(0, sender.entries_from(0))
        assert unpack_rows(packed, receiver.decode) == rows

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(term_st, term_st), max_size=15),
        st.lists(st.tuples(term_st, term_st), max_size=15),
    )
    def test_prop_two_way_join_equivalence(left_rows, right_rows):
        left = Relation(("?k", "?a"), left_rows)
        right = Relation(("?k", "?b"), right_rows)
        assert_join_equivalent([left, right], on=("?k",))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(term_st, min_size=1, max_size=8))
    def test_prop_hash_memo_matches_stable_hash(terms):
        d = Dictionary()
        ids = [d.encode(t) for t in terms]
        assert HashMemo(d).hash_id_row(ids) == stable_hash(terms)
