"""Tests for the MapReduce simulator substrate (jobs, engine, HDFS)."""

import pytest

from repro.cost.params import CostParams
from repro.mapreduce.counters import TaskMetrics
from repro.mapreduce.engine import ClusterConfig, MapReduceEngine, run_jobs
from repro.mapreduce.hdfs import HDFS, DistributedRelation
from repro.mapreduce.jobs import JobGraph, MapReduceJob, MapTask, stable_hash


def metrics(**kw) -> TaskMetrics:
    m = TaskMetrics()
    for k, v in kw.items():
        setattr(m, k, v)
    return m


class TestTaskMetrics:
    def test_time_formula(self):
        p = CostParams(c_read=1, c_write=2, c_shuffle=3, c_check=4, c_join=5)
        m = metrics(
            tuples_read=1, tuples_written=1, tuples_shuffled=1, checks=1, join_tuples=1
        )
        assert m.time(p) == 1 + 2 + 3 + 4 + 5

    def test_merge(self):
        a = metrics(tuples_read=2)
        a.merge(metrics(tuples_read=3, checks=1))
        assert a.tuples_read == 5 and a.checks == 1


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("a", "b")) == stable_hash(("a", "b"))

    def test_discriminates(self):
        values = {stable_hash((f"v{i}",)) for i in range(100)}
        assert len(values) > 90

    def test_order_sensitive(self):
        assert stable_hash(("a", "b")) != stable_hash(("b", "a"))


class TestHDFS:
    def test_write_read(self):
        fs = HDFS(num_nodes=3)
        rel = DistributedRelation(("?a",), [[(1,)], [], [(2,)]])
        fs.write("f", rel)
        assert fs.read("f") is rel
        assert len(rel) == 2
        assert set(rel.all_rows()) == {(1,), (2,)}

    def test_duplicate_write_rejected(self):
        fs = HDFS(num_nodes=1)
        fs.write("f", DistributedRelation.empty(("?a",), 1))
        with pytest.raises(FileExistsError):
            fs.write("f", DistributedRelation.empty(("?a",), 1))

    def test_missing_read(self):
        with pytest.raises(FileNotFoundError):
            HDFS(num_nodes=1).read("nope")

    def test_write_partitioned(self):
        fs = HDFS(num_nodes=2)
        rel = fs.write_partitioned("f", ("?a",), [(0, [(1,)]), (1, [(2,), (3,)])])
        assert rel.partitions[1] == [(2,), (3,)]


class TestJobGraph:
    def j(self, name, deps=()):
        return MapReduceJob(name=name, map_tasks=[], depends_on=tuple(deps))

    def test_levels_simple_chain(self):
        g = JobGraph()
        g.add(self.j("a"))
        g.add(self.j("b", ["a"]))
        g.add(self.j("c", ["b"]))
        levels = g.levels()
        assert [sorted(j.name for j in lv) for lv in levels] == [["a"], ["b"], ["c"]]

    def test_independent_jobs_share_level(self):
        g = JobGraph()
        g.add(self.j("a"))
        g.add(self.j("b"))
        g.add(self.j("c", ["a", "b"]))
        levels = g.levels()
        assert sorted(j.name for j in levels[0]) == ["a", "b"]
        assert [j.name for j in levels[1]] == ["c"]

    def test_duplicate_names_rejected(self):
        g = JobGraph()
        g.add(self.j("a"))
        with pytest.raises(ValueError):
            g.add(self.j("a"))

    def test_unknown_dependency(self):
        g = JobGraph()
        g.add(self.j("a", ["zzz"]))
        with pytest.raises(ValueError):
            g.levels()

    def test_cycle_detected(self):
        g = JobGraph()
        g.add(self.j("a", ["b"]))
        g.add(self.j("b", ["a"]))
        with pytest.raises(ValueError):
            g.levels()

    def test_reduce_fn_consistency(self):
        with pytest.raises(ValueError):
            MapReduceJob(name="x", map_tasks=[], num_reducers=2)
        with pytest.raises(ValueError):
            MapReduceJob(
                name="x", map_tasks=[], num_reducers=0, reducer=lambda p, g: ([], None)
            )


class TestEngine:
    def word_count_job(self, docs_per_node):
        """A classic word count as a sanity check of the MR semantics."""

        def make_mapper(node, words):
            def run():
                m = TaskMetrics()
                m.tuples_read = len(words)
                emits = [(stable_hash((w,)) % 3, 0, (w, 1)) for w in words]
                return emits, [], m

            return run

        tasks = [
            MapTask(node=node, run=make_mapper(node, words))
            for node, words in enumerate(docs_per_node)
        ]

        def reducer(partition, grouped):
            m = TaskMetrics()
            counts = {}
            for w, c in grouped.get(0, []):
                m.tuples_shuffled += 1
                counts[w] = counts.get(w, 0) + c
            rows = sorted(counts.items())
            m.tuples_written = len(rows)
            return rows, m

        return MapReduceJob(
            name="wc", map_tasks=tasks, num_reducers=3, reducer=reducer
        )

    def test_word_count(self):
        collected = {}
        job = self.word_count_job([["a", "b"], ["a"], ["c", "a"]])
        job.on_complete = lambda outs: collected.update(
            dict(r for part in outs for r in part)
        )
        report = run_jobs([job], ClusterConfig(num_nodes=3))
        assert collected == {"a": 3, "b": 1, "c": 1}
        assert report.num_jobs == 1
        assert not report.jobs[0].map_only
        assert report.jobs[0].tuples_shuffled == 5

    def test_map_only_job(self):
        outputs = []

        def mapper():
            m = TaskMetrics()
            m.tuples_read = 2
            return [], [(1,), (2,)], m

        job = MapReduceJob(
            name="scan",
            map_tasks=[MapTask(node=0, run=mapper)],
            on_complete=lambda outs: outputs.extend(outs[0]),
        )
        report = run_jobs([job], ClusterConfig(num_nodes=2))
        assert outputs == [(1, ), (2,)]
        assert report.jobs[0].map_only

    def test_response_time_levels_are_barriers(self):
        """Two independent jobs overlap; a dependent job adds its time."""

        def mapper(cost):
            def run():
                m = TaskMetrics()
                m.tuples_read = cost
                return [], [], m

            return run

        params = CostParams(c_read=1.0, job_overhead=0.0)

        def mk(name, cost, deps=()):
            return MapReduceJob(
                name=name,
                map_tasks=[MapTask(node=0, run=mapper(cost))],
                depends_on=tuple(deps),
            )

        report = run_jobs(
            [mk("a", 10), mk("b", 6), mk("c", 4, ["a", "b"])],
            ClusterConfig(num_nodes=2),
            params,
        )
        # level 0: max(10, 6) = 10; level 1: 4
        assert report.response_time == pytest.approx(14.0)
        assert report.total_work == pytest.approx(20.0)

    def test_job_overhead_charged(self):
        params = CostParams(job_overhead=100.0)

        def mapper():
            return [], [], TaskMetrics()

        job = MapReduceJob(name="a", map_tasks=[MapTask(node=0, run=mapper)])
        report = run_jobs([job], ClusterConfig(num_nodes=1), params)
        assert report.response_time == pytest.approx(100.0)

    def test_map_phase_time_is_max_over_nodes(self):
        params = CostParams(c_read=1.0)

        def mapper(cost):
            def run():
                m = TaskMetrics()
                m.tuples_read = cost
                return [], [], m

            return run

        job = MapReduceJob(
            name="a",
            map_tasks=[
                MapTask(node=0, run=mapper(5)),
                MapTask(node=1, run=mapper(9)),
                MapTask(node=0, run=mapper(2)),  # same node: serial
            ],
        )
        report = MapReduceEngine(ClusterConfig(num_nodes=2), params).execute(
            _graph_of([job])
        )
        assert report.jobs[0].map_time == pytest.approx(9.0)


def _graph_of(jobs):
    g = JobGraph()
    for j in jobs:
        g.add(j)
    return g
