"""Unit tests for the eight decomposition options (§4.3)."""

import pytest

from repro.core.decomposition import (
    ALL_OPTIONS,
    MSC,
    MSC_PLUS,
    MXC,
    MXC_PLUS,
    OPTIONS_BY_NAME,
    SC,
    SC_PLUS,
    XC,
    XC_PLUS,
    decompositions,
    has_decomposition,
)
from repro.core.variable_graph import VariableGraph
from repro.sparql.parser import parse_query
from repro.workloads.synthetic import chain_query, star_query
from tests.conftest import FIG10


def all_decompositions(graph, option):
    return list(decompositions(graph, option))


class TestOptionAlgebra:
    def test_eight_distinct_options(self):
        assert len(ALL_OPTIONS) == 8
        assert len({o.name for o in ALL_OPTIONS}) == 8

    def test_lookup_by_name(self):
        assert OPTIONS_BY_NAME["MSC"] is MSC
        assert OPTIONS_BY_NAME["XC+"] is XC_PLUS

    def test_comparison_triple_examples_from_fig6(self):
        # Fig. 6: (MXC+, XC+) -> (=, =, <) ; (MXC+, SC) -> (<, <, <)
        assert MXC_PLUS.comparison_triple(XC_PLUS) == ("=", "=", "<")
        assert MXC_PLUS.comparison_triple(SC) == ("<", "<", "<")
        assert XC_PLUS.comparison_triple(MSC_PLUS) == ("=", "<", ">")
        assert SC_PLUS.comparison_triple(MXC) == ("<", ">", ">")
        assert MSC.comparison_triple(SC) == ("=", "=", "<")

    def test_domination(self):
        # Fig. 7 arrows: SC includes everything
        for option in ALL_OPTIONS:
            if option is not SC:
                assert option.dominated_by(SC)
        # incomparable pair: SC+ vs MXC has both < and >
        assert not SC_PLUS.dominated_by(MXC)
        assert not MXC.dominated_by(SC_PLUS)


class TestDecompositionGeneration:
    def test_all_results_satisfy_def_33(self, paper_q1):
        g = VariableGraph.from_query(paper_q1)
        for option in (MSC_PLUS, MXC, MSC):
            for d in all_decompositions(g, option):
                g.validate_decomposition(d)  # raises on violation

    def test_star_single_decomposition_for_minimum_options(self):
        g = VariableGraph.from_query(star_query(5))
        for option in (MXC_PLUS, MSC_PLUS, MXC, MSC):
            ds = all_decompositions(g, option)
            assert len(ds) == 1, option.name
            assert ds[0] == (frozenset(range(5)),)

    def test_chain_minimum_cover_size(self):
        # chain of 6: minimum simple cover = 3 disjoint edges
        g = VariableGraph.from_query(chain_query(6))
        for d in all_decompositions(g, MSC):
            assert len(d) == 3

    def test_fig10_failure_of_maximal_exact_options(self, fig10_query):
        g = VariableGraph.from_query(fig10_query)
        assert not has_decomposition(g, MXC_PLUS)
        assert not has_decomposition(g, XC_PLUS)
        assert has_decomposition(g, MSC_PLUS)
        assert has_decomposition(g, MXC)

    def test_exact_covers_are_partitions(self, paper_q1):
        g = VariableGraph.from_query(paper_q1)
        for d in all_decompositions(g, MXC):
            seen = set()
            for clique in d:
                assert not (clique & seen)
                seen |= clique

    def test_sc_superset_of_msc(self, fig11_qx):
        g = VariableGraph.from_query(fig11_qx)
        sc = set(all_decompositions(g, SC))
        msc = set(all_decompositions(g, MSC))
        assert msc <= sc
        assert len(sc) > len(msc)

    def test_xc_superset_of_mxc(self, fig11_qx):
        g = VariableGraph.from_query(fig11_qx)
        xc = set(all_decompositions(g, XC))
        mxc = set(all_decompositions(g, MXC))
        assert mxc <= xc

    def test_single_node_graph_has_no_decompositions(self):
        g = VariableGraph.from_query(parse_query("SELECT ?x WHERE { ?x p ?y }"))
        for option in ALL_OPTIONS:
            assert all_decompositions(g, option) == []

    def test_two_node_graph(self):
        g = VariableGraph.from_query(
            parse_query("SELECT ?x WHERE { ?x p ?y . ?y q ?z }")
        )
        for option in ALL_OPTIONS:
            ds = all_decompositions(g, option)
            assert ds == [(frozenset({0, 1}),)], option.name


class TestPlanSpaceMonotonicity:
    """Decomposition-level checks backing Proposition 4.1."""

    @pytest.mark.parametrize(
        "smaller,larger",
        [
            (MXC_PLUS, XC_PLUS),
            (MSC_PLUS, SC_PLUS),
            (MXC, XC),
            (MSC, SC),
            (MXC_PLUS, MXC),
            (MSC_PLUS, MSC),
            (XC_PLUS, XC),
            (SC_PLUS, SC),
            (MXC, MSC),
            (XC, SC),
        ],
    )
    def test_decomposition_sets_nest(self, paper_q1, smaller, larger):
        g = VariableGraph.from_query(paper_q1)
        # use a smaller graph for the explosive options
        sub = VariableGraph.from_query(
            parse_query("SELECT ?a WHERE { ?a p1 ?b . ?a p2 ?c . ?c p3 ?d . ?d p4 ?b }")
        )
        small = set(all_decompositions(sub, smaller))
        large = set(all_decompositions(sub, larger))
        assert small <= large, (smaller.name, larger.name)
