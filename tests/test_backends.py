"""Execution backends: spec picklability, cross-backend equivalence,
fallback behaviour, report merging, and ordering stability.

Service-level answer equality across the full {backend} x {deployment}
x {surface} matrix lives in ``tests/test_conformance.py`` (the shared
conformance harness); this module keeps the executor-level and
plumbing-level checks.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.algorithm import cliquesquare
from repro.core.decomposition import MSC
from repro.cost.params import CostParams
from repro.mapreduce.backends import (
    BackendUnavailable,
    ProcessBackend,
    SerialBackend,
    TaskInvocation,
    ThreadBackend,
    make_backend,
)
from repro.mapreduce.counters import ExecutionReport, JobMetrics, TaskMetrics
from repro.mapreduce.engine import ClusterConfig, run_jobs
from repro.mapreduce.jobs import (
    FnMapSpec,
    MapReduceJob,
    MapTask,
    TaskContext,
    stable_hash,
)
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import (
    ChainMapSpec,
    MapOnlySpec,
    PlanExecutor,
    StarReduceSpec,
)
from repro.relational.relation import Relation
from repro.sparql.parser import parse_query
from tests.conformance import PROCESS_OK, needs_process
from tests.conftest import make_university_graph


class _SquareSpec:
    """Minimal picklable spec for backend plumbing tests."""

    def hdfs_inputs(self):
        return ()

    def run(self, ctx, x):
        return x * x


@pytest.fixture(scope="module")
def university():
    graph = make_university_graph()
    store = partition_graph(graph, 7)
    return graph, store


def _prepare(store, text):
    executor = PlanExecutor(store)
    query = parse_query(text)
    plan = cliquesquare(query, MSC).plans[0]
    return executor, executor.prepare(plan)


TWO_LEVEL_QUERY = (
    "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
    "?p rdf:type ub:FullProfessor . ?s rdf:type ub:Student }"
)


class TestSpecPickling:
    def test_prepared_plan_round_trip(self, university):
        _, store = university
        executor, prepared = _prepare(store, TWO_LEVEL_QUERY)
        clone = pickle.loads(pickle.dumps(prepared))
        assert clone.compiled.final_attrs == prepared.compiled.final_attrs
        assert clone.compiled.num_jobs == prepared.compiled.num_jobs
        # The unpickled plan is executable and answers identically.
        assert (
            executor.execute_prepared(clone).rows
            == executor.execute_prepared(prepared).rows
        )

    def test_job_and_task_specs_round_trip(self, university):
        _, store = university
        _, prepared = _prepare(store, TWO_LEVEL_QUERY)
        for job_spec in prepared.compiled.jobs:
            assert pickle.loads(pickle.dumps(job_spec)) == job_spec
            for tag, chain in enumerate(job_spec.map_chains):
                spec = ChainMapSpec(
                    chain=chain, node=0, tag=tag, key_attrs=("?d",), num_reducers=7
                )
                assert pickle.loads(pickle.dumps(spec)) == spec
            if job_spec.reduce_join is not None:
                reduce_spec = StarReduceSpec(
                    on=job_spec.reduce_join.on,
                    child_attrs=tuple(c.attrs for c in job_spec.map_chains),
                    project=job_spec.project,
                )
                assert pickle.loads(pickle.dumps(reduce_spec)) == reduce_spec

    def test_map_only_spec_round_trip(self, university):
        _, store = university
        _, prepared = _prepare(
            store, "SELECT ?p ?d WHERE { ?p ub:worksFor ?d }"
        )
        chain = prepared.compiled.jobs[0].map_chains[0]
        spec = MapOnlySpec(chain=chain, node=3, project=("?p", "?d"))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_physical_and_logical_plans_round_trip(self, university):
        _, store = university
        _, prepared = _prepare(store, TWO_LEVEL_QUERY)
        assert pickle.loads(pickle.dumps(prepared.plan)) == prepared.plan
        physical = pickle.loads(pickle.dumps(prepared.physical))
        assert str(physical.root) == str(prepared.physical.root)
        assert len(physical.reduce_joins) == len(prepared.physical.reduce_joins)

    def test_store_snapshot_round_trip(self, university):
        _, store = university
        snapshot = store.snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.token == snapshot.token
        assert clone.total_stored() == snapshot.total_stored()
        assert clone.scan(0, "s") == snapshot.scan(0, "s")


class TestStableHashDeterminism:
    SAMPLES = [
        ("<http://example.org/a>",),
        ("<e1>", "<e2>"),
        ("ub:worksFor", '"literal value"', "<D0.U3>"),
        (42, "mixed"),
    ]

    def test_deterministic_in_process(self):
        assert [stable_hash(s) for s in self.SAMPLES] == [
            stable_hash(s) for s in self.SAMPLES
        ]

    @needs_process
    def test_deterministic_across_processes(self):
        backend = ProcessBackend(2, fallback=False)
        try:
            results = backend.run(
                [TaskInvocation(_HashSpec(), (s,)) for s in self.SAMPLES],
                TaskContext(num_nodes=1),
            )
        finally:
            backend.close()
        assert results == [stable_hash(s) for s in self.SAMPLES]


class _HashSpec:
    def hdfs_inputs(self):
        return ()

    def run(self, ctx, values):
        return stable_hash(values)


class TestBackendEquivalence:
    QUERIES = [
        "SELECT ?p ?d WHERE { ?p ub:worksFor ?d }",
        "SELECT ?d WHERE { ?d ub:subOrganizationOf <univ0> }",
        "SELECT ?x WHERE { ?x rdf:type ub:FullProfessor }",
        TWO_LEVEL_QUERY,
        "SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d . "
        "?d ub:subOrganizationOf <univ0> }",
    ]

    def test_all_backends_agree(self, university):
        _, store = university
        serial = PlanExecutor(store)
        backends = {"thread": PlanExecutor(store, backend=ThreadBackend(3))}
        if PROCESS_OK:
            backends["process"] = PlanExecutor(
                store, backend=ProcessBackend(2, fallback=False)
            )
        try:
            for text in self.QUERIES:
                query = parse_query(text)
                plan = cliquesquare(query, MSC).plans[0]
                prepared = serial.prepare(plan)
                reference = serial.execute_prepared(prepared)
                for name, executor in backends.items():
                    result = executor.execute_prepared(prepared)
                    assert result.rows == reference.rows, (name, text)
                    assert result.attrs == reference.attrs
                    # The simulated timing model is backend-invariant.
                    assert result.report.response_time == pytest.approx(
                        reference.report.response_time
                    )
                    assert result.report.total_work == pytest.approx(
                        reference.report.total_work
                    )
                    assert result.report.backend == name
        finally:
            for executor in backends.values():
                executor.close()


class TestMultiJobProcessExecution:
    @needs_process
    def test_sliced_shuffle_inputs_cross_process(self):
        """A plan with stacked reduce joins ships only the task's node
        partition of each shuffled intermediate to the worker."""
        import random

        from repro.rdf.graph import RDFGraph
        from repro.sparql.evaluator import evaluate

        rng = random.Random(7)
        g = RDFGraph(validate=False)
        values = [f"<e{i}>" for i in range(6)]
        for _ in range(120):
            g.add(rng.choice(values), f"p{rng.randrange(4)}", rng.choice(values))
        query = parse_query(
            "SELECT ?a WHERE { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p3 ?e }"
        )
        expected = evaluate(query, g)
        # Subject-only replicas ablate co-location: object-position joins
        # degrade to reduce joins, stacking into multi-job plans.
        store = partition_graph(g, 4, replicas=("s",))
        serial = PlanExecutor(store)
        tested = 0
        with PlanExecutor(store, backend=ProcessBackend(2, fallback=False)) as proc:
            for plan in cliquesquare(query, MSC, timeout_s=20).unique_plans()[:10]:
                prepared = serial.prepare(plan)
                if prepared.compiled.num_jobs >= 2:
                    tested += 1
                    assert proc.execute_prepared(prepared).rows == expected
        assert tested >= 1

    @needs_process
    def test_task_errors_surface_without_demotion(self):
        """A genuine task bug raises to the caller; the backend must not
        silently demote to serial (which could mask it)."""
        backend = ProcessBackend(2, fallback=True)
        try:
            with pytest.raises(KeyError):
                backend.run(
                    [TaskInvocation(_BoomSpec()), TaskInvocation(_BoomSpec())],
                    TaskContext(num_nodes=1),
                )
            assert backend._serial is None, "task error wrongly demoted backend"
        finally:
            backend.close()


class _BoomSpec:
    def hdfs_inputs(self):
        return ()

    def hdfs_slice(self, hdfs):
        return {}

    def run(self, ctx, *args):
        raise KeyError("task bug")


class TestGuardsAndFallback:
    def test_thread_backend_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)

    def test_process_backend_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ProcessBackend(0)

    def test_make_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_backend("quantum")

    def test_make_backend_names(self):
        assert make_backend(None).name == "serial"
        assert make_backend("serial").name == "serial"
        assert make_backend("thread", num_workers=2).name == "thread"
        backend = make_backend("process", num_workers=1)
        assert backend.name == "process"
        backend.close()
        passthrough = SerialBackend()
        assert make_backend(passthrough) is passthrough

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        messages = []
        backend = ProcessBackend(2, on_fallback=messages.append)
        monkeypatch.setattr(
            ProcessBackend,
            "_create_pool",
            lambda self, ctx: (_ for _ in ()).throw(OSError("no forks here")),
        )
        invocations = [TaskInvocation(_SquareSpec(), (n,)) for n in (2, 3, 4)]
        assert backend.run(invocations, TaskContext(num_nodes=1)) == [4, 9, 16]
        assert messages and "no forks here" in messages[0]
        # Demotion is sticky: later runs go straight to serial, warn once.
        assert backend.run(invocations, TaskContext(num_nodes=1)) == [4, 9, 16]
        assert len(messages) == 1
        backend.close()

    def test_pool_failure_without_fallback_raises(self, monkeypatch):
        backend = ProcessBackend(2, fallback=False)
        monkeypatch.setattr(
            ProcessBackend,
            "_create_pool",
            lambda self, ctx: (_ for _ in ()).throw(OSError("denied")),
        )
        with pytest.raises(BackendUnavailable):
            backend.run(
                [TaskInvocation(_SquareSpec(), (n,)) for n in (1, 2)],
                TaskContext(num_nodes=1),
            )
        backend.close()

    @needs_process
    def test_closure_tasks_fall_back_to_serial(self):
        """FnMapSpec wraps a closure — unpicklable, so the process
        backend demotes itself instead of failing the job."""
        messages = []
        backend = ProcessBackend(2, on_fallback=messages.append)

        def make(n):
            return lambda: ([], [(n,)], TaskMetrics())

        invocations = [TaskInvocation(FnMapSpec(make(n))) for n in (1, 2)]
        results = backend.run(invocations, TaskContext(num_nodes=1))
        assert [direct for _, direct, _ in results] == [[(1,)], [(2,)]]
        assert messages
        backend.close()

    @needs_process
    def test_pool_token_tracks_snapshot(self):
        """The observable half of snapshot-token revalidation: the pool
        token follows the snapshot the pool was primed against (the RPC
        shard servers expose the same token through worker Stats)."""
        graph = make_university_graph()
        store = partition_graph(graph, 4)
        backend = ProcessBackend(1, fallback=False)
        try:
            assert backend.pool_token is None
            backend.prime(TaskContext(num_nodes=4, store=store.snapshot()))
            first = backend.pool_token
            assert first == store.snapshot().token
            store.add(("<tok-s>", "<tok-p>", "<tok-o>"))
            backend.prime(TaskContext(num_nodes=4, store=store.snapshot()))
            assert backend.pool_token == store.snapshot().token
            assert backend.pool_token != first
        finally:
            backend.close()
        assert backend.pool_token is None

    def test_service_fallback_records_warning(self, monkeypatch):
        from repro.service.service import QueryService, ServiceConfig

        monkeypatch.setattr(
            ProcessBackend,
            "_create_pool",
            lambda self, ctx: (_ for _ in ()).throw(OSError("sandboxed CI")),
        )
        graph = make_university_graph()
        with QueryService(
            graph, ServiceConfig(num_nodes=4, backend="process")
        ) as service:
            outcome = service.submit("SELECT ?p ?d WHERE { ?p ub:worksFor ?d }")
            assert outcome.rows
            snapshot = service.snapshot_stats()
            assert snapshot.warnings
            assert "sandboxed CI" in snapshot.warnings[0]
            assert "warning:" in snapshot.format()


class TestLegacyTaskApi:
    def test_positional_closure_still_works(self):
        """Pre-refactor call shape MapTask(node, fn) keeps working."""
        def mapper():
            return [], [(1,)], TaskMetrics()

        task = MapTask(0, mapper)
        assert isinstance(task.spec, FnMapSpec)
        assert task.spec.run(TaskContext(num_nodes=1)) == ([], [(1,)], TaskMetrics())

    def test_spec_and_run_together_rejected(self):
        with pytest.raises(ValueError):
            MapTask(0, spec=FnMapSpec(lambda: None), run=lambda: None)

    def test_neither_spec_nor_run_rejected(self):
        with pytest.raises(ValueError):
            MapTask(0)


class TestExplainSurface:
    def test_explain_names_the_backend(self, university):
        from repro.physical.explain import explain

        graph, _ = university
        query = parse_query(TWO_LEVEL_QUERY)
        plan = cliquesquare(query, MSC).plans[0]
        assert "backend serial" in explain(plan)
        assert "backend process" in explain(plan, backend="process")

    def test_report_records_backend(self, university):
        _, store = university
        executor = PlanExecutor(store, backend=ThreadBackend(2))
        try:
            query = parse_query("SELECT ?p ?d WHERE { ?p ub:worksFor ?d }")
            plan = cliquesquare(query, MSC).plans[0]
            assert executor.execute(plan).report.backend == "thread"
        finally:
            executor.close()


class TestReportMerging:
    def test_job_metrics_merge(self):
        a = JobMetrics(name="j", map_time=3.0, reduce_time=1.0, overhead=5.0,
                       total_work=10.0, map_only=False, tuples_shuffled=4,
                       output_tuples=2)
        b = JobMetrics(name="j", map_time=2.0, reduce_time=4.0, overhead=5.0,
                       total_work=7.0, map_only=False, tuples_shuffled=1,
                       output_tuples=3)
        a.merge(b)
        assert a.map_time == 3.0 and a.reduce_time == 4.0
        assert a.overhead == 5.0
        # The fixed job overhead (included in each worker's total) is
        # paid once, not per worker: 10 + 7 - 5.
        assert a.total_work == 12.0
        assert a.tuples_shuffled == 5 and a.output_tuples == 5
        assert a.time == 5.0 + 3.0 + 4.0

    def test_job_metrics_merge_rejects_other_job(self):
        with pytest.raises(ValueError):
            JobMetrics(name="a").merge(JobMetrics(name="b"))

    def test_execution_report_merge_recomputes_response_time(self):
        r1 = ExecutionReport(
            jobs=[
                JobMetrics(name="a", map_time=4.0, total_work=4.0),
                JobMetrics(name="b", map_time=1.0, total_work=1.0),
            ],
            levels=[["a"], ["b"]],
            response_time=5.0,
            total_work=5.0,
        )
        r2 = ExecutionReport(
            jobs=[
                JobMetrics(name="a", map_time=2.0, total_work=2.0),
                JobMetrics(name="b", map_time=6.0, total_work=6.0),
            ],
            levels=[["a"], ["b"]],
            response_time=8.0,
            total_work=8.0,
        )
        r1.merge(r2)
        assert [j.name for j in r1.jobs] == ["a", "b"]
        # per level: max over workers, levels are barriers
        assert r1.response_time == pytest.approx(4.0 + 6.0)
        assert r1.total_work == pytest.approx(13.0)

    def test_execution_report_merge_pays_job_overhead_once(self):
        """Per-worker engine totals each include the job overhead; the
        merged report must not double-count it."""
        workers = [
            ExecutionReport(
                jobs=[JobMetrics(name="j", map_time=w, overhead=100.0,
                                 total_work=100.0 + w)],
                levels=[["j"]],
                response_time=100.0 + w,
                total_work=100.0 + w,
            )
            for w in (3.0, 5.0)
        ]
        merged = workers[0].merge(workers[1])
        assert merged.jobs[0].total_work == pytest.approx(100.0 + 3.0 + 5.0)
        assert merged.total_work == pytest.approx(100.0 + 3.0 + 5.0)
        assert merged.response_time == pytest.approx(100.0 + 5.0)

    def test_execution_report_merge_disjoint_jobs(self):
        r1 = ExecutionReport(jobs=[JobMetrics(name="a", map_time=1.0)], levels=[["a"]])
        r2 = ExecutionReport(jobs=[JobMetrics(name="b", map_time=2.0)], levels=[["b"]])
        r1.merge(r2)
        assert sorted(j.name for j in r1.jobs) == ["a", "b"]
        assert r1.levels == [["a", "b"]]
        assert r1.response_time == pytest.approx(2.0)

    def test_backend_name_survives_merge(self):
        r1 = ExecutionReport(backend="process")
        r2 = ExecutionReport(backend="process")
        assert r1.merge(r2).backend == "process"
        r3 = ExecutionReport(backend="serial")
        assert r1.merge(r3).backend == "process+serial"


class TestOrderingStability:
    def test_relation_distinct_is_insertion_stable(self):
        rel = Relation(("?a",), [(3,), (1,), (3,), (2,), (1,), (2,)])
        assert rel.distinct().rows == [(3,), (1,), (2,)]

    def test_relation_project_is_insertion_stable(self):
        rel = Relation(("?a", "?b"), [(1, "x"), (2, "x"), (1, "y"), (2, "x")])
        assert rel.project(("?b",)).rows == [("x",), ("y",)]

    @pytest.mark.parametrize(
        "backend_factory",
        [
            SerialBackend,
            lambda: ThreadBackend(3),
            pytest.param(
                lambda: ProcessBackend(2, fallback=False), marks=needs_process
            ),
        ],
    )
    def test_shuffle_merge_order_matches_task_order(self, backend_factory):
        """Reducers must see rows grouped in map-task submission order,
        whatever order the backend completed the tasks in."""
        received: list[tuple] = []

        def reducer(partition, grouped):
            received.extend(grouped.get(0, []))
            return [], TaskMetrics()

        tasks = [
            MapTask(node=n % 2, spec=_EmitSpec(start=n * 10))
            for n in range(6)
        ]
        backend = backend_factory()
        try:
            run_jobs(
                [
                    MapReduceJob(
                        name="order",
                        map_tasks=tasks,
                        num_reducers=1,
                        reducer=reducer,
                    )
                ],
                ClusterConfig(num_nodes=2),
                CostParams(),
                backend=backend,
            )
        finally:
            backend.close()
        assert received == [(n * 10 + i,) for n in range(6) for i in range(3)]


class _EmitSpec:
    """Emit three rows to partition 0, tagged 0 (picklable test spec)."""

    def __init__(self, start: int) -> None:
        self.start = start

    def __eq__(self, other):
        return isinstance(other, _EmitSpec) and other.start == self.start

    def hdfs_inputs(self):
        return ()

    def run(self, ctx):
        return [(0, 0, (self.start + i,)) for i in range(3)], [], TaskMetrics()
