"""Unit and property tests for the relational kernel (Relation + joins)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relational.joins import common_attributes, hash_join, output_schema, star_join
from repro.relational.relation import Relation


class TestRelation:
    def test_duplicate_schema_rejected(self):
        with pytest.raises(ValueError):
            Relation(("?a", "?a"))

    def test_index_of(self):
        r = Relation(("?a", "?b"))
        assert r.index_of("?b") == 1
        with pytest.raises(KeyError):
            r.index_of("?c")

    def test_project_dedupes(self):
        r = Relation(("?a", "?b"), [(1, 2), (1, 3), (1, 2)])
        p = r.project(("?a",))
        assert p.attrs == ("?a",)
        assert p.rows == [(1,)]

    def test_project_reorders(self):
        r = Relation(("?a", "?b"), [(1, 2)])
        assert r.project(("?b", "?a")).rows == [(2, 1)]

    def test_select(self):
        r = Relation(("?a",), [(1,), (2,), (3,)])
        assert r.select(lambda d: d["?a"] > 1).rows == [(2,), (3,)]

    def test_distinct(self):
        r = Relation(("?a",), [(1,), (1,), (2,)])
        assert r.distinct().rows == [(1,), (2,)]

    def test_dict_roundtrip(self):
        r = Relation(("?a", "?b"), [(1, 2)])
        assert Relation.from_dicts(r.attrs, r.as_dicts()).rows == r.rows


class TestSchemas:
    def test_output_schema_union_order(self):
        r1 = Relation(("?a", "?b"))
        r2 = Relation(("?b", "?c"))
        assert output_schema((r1, r2)) == ("?a", "?b", "?c")

    def test_common_attributes(self):
        r1 = Relation(("?a", "?b", "?c"))
        r2 = Relation(("?c", "?b"))
        assert common_attributes((r1, r2)) == ("?b", "?c")


class TestHashJoin:
    def test_basic(self):
        left = Relation(("?a", "?b"), [(1, "x"), (2, "y")])
        right = Relation(("?b", "?c"), [("x", 10), ("x", 11), ("z", 12)])
        out = hash_join(left, right)
        assert out.attrs == ("?a", "?b", "?c")
        assert out.to_set() == {(1, "x", 10), (1, "x", 11)}

    def test_multi_attribute(self):
        left = Relation(("?a", "?b"), [(1, 2), (1, 3)])
        right = Relation(("?a", "?b", "?c"), [(1, 2, 9), (1, 4, 8)])
        assert hash_join(left, right).to_set() == {(1, 2, 9)}

    def test_cartesian_product_degenerate(self):
        left = Relation(("?a",), [(1,), (2,)])
        right = Relation(("?b",), [(3,)])
        assert hash_join(left, right).to_set() == {(1, 3), (2, 3)}

    def test_empty_side(self):
        left = Relation(("?a", "?b"), [])
        right = Relation(("?b", "?c"), [("x", 1)])
        assert hash_join(left, right).rows == []


class TestStarJoin:
    def test_three_way_star(self):
        r1 = Relation(("?d", "?p"), [("d1", "p1"), ("d2", "p2")])
        r2 = Relation(("?d", "?s"), [("d1", "s1"), ("d1", "s2")])
        r3 = Relation(("?d",), [("d1",)])
        out = star_join([r1, r2, r3], on=("?d",))
        assert out.to_set() == {("d1", "p1", "s1"), ("d1", "p1", "s2")}

    def test_residual_equalities_enforced(self):
        """Inputs sharing an attribute beyond the key must agree on it
        (the folded-in §4.2 selections)."""
        r1 = Relation(("?d", "?w"), [("d1", 1), ("d1", 2)])
        r2 = Relation(("?d", "?w"), [("d1", 1)])
        out = star_join([r1, r2], on=("?d",))
        assert out.to_set() == {("d1", 1)}

    def test_default_key_is_common_attrs(self):
        r1 = Relation(("?a", "?b"), [(1, 2)])
        r2 = Relation(("?b", "?c"), [(2, 3)])
        assert star_join([r1, r2]).to_set() == {(1, 2, 3)}

    def test_single_input_passthrough(self):
        r = Relation(("?a",), [(1,)])
        assert star_join([r]) is r

    def test_no_shared_attrs_rejected(self):
        r1 = Relation(("?a",), [(1,)])
        r2 = Relation(("?b",), [(2,)])
        with pytest.raises(ValueError):
            star_join([r1, r2])

    def test_key_missing_from_input_rejected(self):
        r1 = Relation(("?a", "?b"), [(1, 2)])
        r2 = Relation(("?b",), [(2,)])
        with pytest.raises(ValueError):
            star_join([r1, r2], on=("?a",))

    def test_empty_input_gives_empty_output(self):
        r1 = Relation(("?a", "?b"), [(1, 2)])
        r2 = Relation(("?b",), [])
        assert star_join([r1, r2], on=("?b",)).rows == []

    def test_equals_cascade_of_hash_joins(self):
        r1 = Relation(("?x", "?a"), [(i % 3, i) for i in range(10)])
        r2 = Relation(("?x", "?b"), [(i % 3, i * 2) for i in range(8)])
        r3 = Relation(("?x", "?c"), [(i % 2, i * 3) for i in range(6)])
        via_star = star_join([r1, r2, r3], on=("?x",))
        via_binary = hash_join(hash_join(r1, r2), r3)
        assert via_star.to_set() == {
            tuple(d[a] for a in via_star.attrs) for d in via_binary.as_dicts()
        }


@given(
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=20),
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=20),
)
def test_hash_join_matches_nested_loop(left_rows, right_rows):
    """hash_join agrees with a naive nested-loop natural join."""
    left = Relation(("?x", "?y"), list(set(left_rows)))
    right = Relation(("?y", "?z"), list(set(right_rows)))
    out = hash_join(left, right)
    expected = {
        (a, b, d)
        for (a, b) in left.rows
        for (c, d) in right.rows
        if b == c
    }
    assert out.to_set() == expected


@given(
    st.lists(st.tuples(st.integers(0, 2), st.integers(0, 5)), max_size=15),
    st.lists(st.tuples(st.integers(0, 2), st.integers(0, 5)), max_size=15),
    st.lists(st.tuples(st.integers(0, 2), st.integers(0, 5)), max_size=15),
)
def test_star_join_matches_binary_cascade(rows1, rows2, rows3):
    """n-ary star join equals the cascade of binary natural joins."""
    r1 = Relation(("?k", "?a"), list(set(rows1)))
    r2 = Relation(("?k", "?b"), list(set(rows2)))
    r3 = Relation(("?k", "?c"), list(set(rows3)))
    star = star_join([r1, r2, r3], on=("?k",)).to_set()
    cascade_rel = hash_join(hash_join(r1, r2), r3)
    cascade = {
        tuple(d[a] for a in ("?k", "?a", "?b", "?c"))
        for d in cascade_rel.as_dicts()
    }
    assert star == cascade
