"""Dynamic lock-order witness — the runtime counterpart of LOCK002.

With ``REPRO_LOCK_CHECK=1`` in the environment, locks wrapped with
:func:`checked` (and the RW locks, which report through
:func:`note_acquired`/:func:`note_released`) record every *acquired
while holding* edge into one global, process-wide graph.  Two things are
enforced on each new edge:

* **acyclicity** — if adding ``held -> new`` closes a cycle with edges
  observed on any thread, a :class:`LockOrderError` is raised at the
  acquisition that completed the cycle, with both offending stacks named;
* **the declared hierarchy** — when both locks carry a rank in
  :mod:`repro.analysis.hierarchy`, acquiring a lower-ranked (outer) lock
  while holding a higher-ranked (inner) one is an inversion, reported
  even before any reverse edge is observed.

Witness nodes are *names*, not lock instances: every instance of
``LRUCache._lock`` is one node.  Consequently same-name edges (two
sibling instances acquired together) are skipped rather than reported as
self-cycles — sibling-instance ordering needs an instance-level protocol
(e.g. address order) that no current code path requires.

When the flag is off, :func:`checked` returns the lock unchanged and
the RW-lock hooks are never installed, so production paths pay nothing.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Any

from repro.analysis.hierarchy import rank_of

ENV_FLAG = "REPRO_LOCK_CHECK"


def lock_check_enabled() -> bool:
    """True iff the dynamic witness is enabled in this environment."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class LockOrderError(RuntimeError):
    """A lock acquisition closed a cycle or inverted the hierarchy."""


def _caller() -> str:
    """A short one-line provenance for the current acquisition site."""
    for frame in reversed(traceback.extract_stack(limit=12)[:-3]):
        if "/repro/analysis/locks" not in frame.filename:
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class LockWitness:
    """Process-wide acquisition graph with per-thread held stacks."""

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        self._edges: dict[tuple[str, str], str] = {}
        self._local = threading.local()

    # -- held-stack bookkeeping -------------------------------------------

    def _held(self) -> list[str]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
        return held

    def acquired(self, name: str) -> None:
        """Record that the current thread acquired *name*."""
        held = self._held()
        if name not in held:  # re-entrant RLock acquisitions add no edge
            site = None
            for outer in held:
                if outer == name:
                    continue
                if site is None:
                    site = _caller()
                self._note_edge(outer, name, site)
        held.append(name)

    def released(self, name: str) -> None:
        """Record that the current thread released *name*."""
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    # -- the graph --------------------------------------------------------

    def _note_edge(self, outer: str, inner: str, site: str) -> None:
        outer_rank, inner_rank = rank_of(outer), rank_of(inner)
        if (
            outer_rank is not None
            and inner_rank is not None
            and inner_rank < outer_rank
        ):
            raise LockOrderError(
                f"hierarchy inversion: acquiring {inner!r} (tier "
                f"{inner_rank}) while holding {outer!r} (tier "
                f"{outer_rank}) at {site}; the declared order is "
                "outer tiers first (repro.analysis.hierarchy)"
            )
        with self._graph_lock:
            if (outer, inner) in self._edges:
                return
            reverse_path = self._path(inner, outer)
            if reverse_path is not None:
                steps = " -> ".join(reverse_path)
                first = self._edges.get(
                    (reverse_path[0], reverse_path[1]), "<unknown>"
                )
                raise LockOrderError(
                    f"lock-order cycle: acquiring {inner!r} while holding "
                    f"{outer!r} at {site}, but the reverse order "
                    f"{steps} was observed first at {first}"
                )
            self._edges[(outer, inner)] = site

    def _path(self, src: str, dst: str) -> list[str] | None:
        """A path src -> ... -> dst over observed edges, else None."""
        stack: list[list[str]] = [[src]]
        seen = {src}
        while stack:
            path = stack.pop()
            node = path[-1]
            if node == dst:
                return path
            for a, b in self._edges:
                if a == node and b not in seen:
                    seen.add(b)
                    stack.append(path + [b])
        return None

    # -- introspection (tests, debugging) ---------------------------------

    def edges(self) -> dict[tuple[str, str], str]:
        with self._graph_lock:
            return dict(self._edges)

    def reset(self) -> None:
        with self._graph_lock:
            self._edges.clear()
        self._local = threading.local()


#: The process-wide witness.  Tests may construct private instances.
WITNESS = LockWitness()

# A fork taken while the parent holds locks (worker spawn under a shard
# lock, process pools) would copy the forking thread's held stack into
# the child, where those locks are phantoms: reset the child's witness.
if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=WITNESS.reset)


def note_acquired(name: str) -> None:
    """RW-lock hook: record an acquisition on the global witness."""
    WITNESS.acquired(name)


def note_released(name: str) -> None:
    """RW-lock hook: record a release on the global witness."""
    WITNESS.released(name)


class CheckedLock:
    """A drop-in proxy adding witness bookkeeping to any lock-like object.

    Supports plain ``Lock``/``RLock`` and ``Condition`` (``wait`` et al.
    pass through; the lock is counted as held for the duration of a
    ``wait``, which matches what other threads may deduce from this
    thread's stack only conservatively).
    """

    __slots__ = ("_lock", "_name", "_witness")

    def __init__(
        self, lock: Any, name: str, witness: LockWitness | None = None
    ) -> None:
        self._lock = lock
        self._name = name
        self._witness = witness if witness is not None else WITNESS

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        got = self._lock.acquire(*args, **kwargs)
        if got:
            self._witness.acquired(self._name)
        return bool(got)

    def release(self) -> None:
        self._witness.released(self._name)
        self._lock.release()

    def __enter__(self) -> "CheckedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._lock, attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckedLock({self._name!r}, {self._lock!r})"


def checked(lock: Any, name: str) -> Any:
    """Wrap *lock* for witness bookkeeping iff ``REPRO_LOCK_CHECK=1``.

    The flag is consulted at lock *creation* (object construction), so
    setting it before building services/routers/backends is sufficient;
    with the flag off the very same lock object is returned untouched.
    """
    if not lock_check_enabled():
        return lock
    return CheckedLock(lock, name)


def witness_name_if_enabled(name: str) -> str | None:
    """For RW locks: the witness node name, or None when disabled."""
    return name if lock_check_enabled() else None
