"""Repo-specific AST lint: concurrency and protocol conventions, checked.

PRs 1–7 grew a concurrent system whose correctness rests on conventions
that review alone enforced.  This linter turns them into checked facts:

``LOCK001`` *guarded-by* — an attribute assigned with a trailing
    ``# guarded-by: _lock`` comment may only be read or written inside a
    ``with self._lock`` block (or via a local alias of that lock) in the
    same class.  ``__init__`` is exempt (construction happens-before
    publication).

``LOCK002`` *lock order* — lexically nested ``with`` acquisitions must
    respect the declared hierarchy (:mod:`repro.analysis.hierarchy`);
    acquiring an outer-tier lock while a ``with`` already holds an
    inner-tier one is an inversion.  The dynamic witness
    (:mod:`repro.analysis.locks`) enforces the same ranks across call
    boundaries at runtime.

``SPEC001`` *picklable specs* — every ``TaskSpec`` subclass that carries
    fields must be a frozen dataclass whose field types are picklable by
    reference: no ``Callable``/function types (including module-level
    aliases of ``Callable``) and no lambda defaults.

``FRAME001`` *frame exhaustiveness* — in a module declaring
    ``MESSAGE_TYPES``, every frame must appear in exactly one of the
    ``WORKER_HANDLED``/``CLIENT_HANDLED`` dispatch tables, every
    worker-handled frame must be matched by an ``isinstance`` check, and
    every frame must have a pickle-round-trip example registered in
    ``tests/test_rpc_frames.py`` — an unknown or unhandled frame is a
    lint error, not a runtime surprise.

``LINT000`` — a suppression without a justification.  Findings are
    suppressed line-by-line with ``# lint: disable=RULE — why``; the
    justification is mandatory and the linter errors on bare disables.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

RULES = ("LOCK001", "LOCK002", "SPEC001", "FRAME001", "LINT000")

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)\s*(.*)"
)
_LOCKISH_RE = re.compile(r"lock|cond|rwlock|mutex|sem", re.IGNORECASE)

#: Type names (and module-level aliases of them) that break pickling by
#: reference when they appear in a spec field annotation.
_UNPICKLABLE_TYPES = {"Callable", "FunctionType", "LambdaType", "MethodType"}

#: Bases that mark a class as a task spec (plus same-file transitivity).
_SPEC_BASES = {"TaskSpec", "MapTaskSpec", "ReduceTaskSpec"}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class _Suppression:
    line: int
    rules: tuple[str, ...]
    justified: bool


# -- comment handling ------------------------------------------------------


def _comments(source: str) -> dict[int, str]:
    """Line -> comment text, via tokenize (comments only, not strings)."""
    out: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                out[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass
    return out


def _suppressions(comments: dict[int, str]) -> dict[int, _Suppression]:
    out: dict[int, _Suppression] = {}
    for line, text in comments.items():
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        rules = tuple(r.strip() for r in m.group(1).split(","))
        why = m.group(2).strip().lstrip("—–:-").strip()
        out[line] = _Suppression(line=line, rules=rules, justified=len(why) >= 8)
    return out


# -- lock-name extraction --------------------------------------------------


def _lock_names_in(expr: ast.expr, aliases: dict[str, str]) -> set[str]:
    """Lock attribute names mentioned by a ``with``-item expression.

    ``self._lock`` -> ``_lock``; ``self._rw.read()`` -> ``_rw``;
    ``self._shard_locks[i]`` -> ``_shard_locks``; a bare name resolves
    through the function-local alias map (``lock = self._x; with lock:``).
    """
    names: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and _LOCKISH_RE.search(node.attr):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            if node.id in aliases:
                names.add(aliases[node.id])
            elif _LOCKISH_RE.search(node.id):
                names.add(node.id)
    return names


def _local_lock_aliases(fn: ast.AST) -> dict[str, str]:
    """``name -> attr`` for simple ``name = self.<attr>...`` lock aliases."""
    aliases: dict[str, str] = {}
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Attribute) and _LOCKISH_RE.search(sub.attr):
                aliases[target.id] = sub.attr
                break
    return aliases


# -- LOCK001 / LOCK002 -----------------------------------------------------


def _guarded_attrs(cls: ast.ClassDef, comments: dict[int, str]) -> dict[str, str]:
    """Attribute -> guarding lock, from ``# guarded-by:`` annotations."""
    guards: dict[str, str] = {}
    for node in ast.walk(cls):
        m = None
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            comment = comments.get(node.lineno)
            m = _GUARD_RE.search(comment) if comment else None
        if not m:
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guards[target.attr] = m.group(1)
    return guards


class _LockVisitor(ast.NodeVisitor):
    """Walks one method with a stack of lexically held locks."""

    def __init__(
        self,
        path: str,
        guards: dict[str, str],
        aliases: dict[str, str],
        rank_of: "Callable[[str], int | None]",
        findings: list[Finding],
    ) -> None:
        self.path = path
        self.guards = guards
        self.aliases = aliases
        self.rank_of = rank_of
        self.findings = findings
        self.held: list[str] = []

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            acquired.extend(_lock_names_in(item.context_expr, self.aliases))
        for new in acquired:
            new_rank = self.rank_of(new)
            for outer in self.held:
                outer_rank = self.rank_of(outer)
                if (
                    new_rank is not None
                    and outer_rank is not None
                    and outer != new
                    and new_rank < outer_rank
                ):
                    self.findings.append(
                        Finding(
                            self.path,
                            node.lineno,
                            "LOCK002",
                            f"acquires {new!r} (tier {new_rank}) while "
                            f"holding {outer!r} (tier {outer_rank}); the "
                            "declared hierarchy orders outer tiers first",
                        )
                    )
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(acquired):]

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.guards
        ):
            lock = self.guards[node.attr]
            if lock not in self.held:
                self.findings.append(
                    Finding(
                        self.path,
                        node.lineno,
                        "LOCK001",
                        f"access to {node.attr!r} (guarded by {lock!r}) "
                        f"outside `with self.{lock}`",
                    )
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs run on their own schedule (threads, callbacks):
        # a lock held at their *definition* site is not held at their
        # call site, so the held stack resets inside.
        saved, self.held = self.held, []
        self.generic_visit(node)
        self.held = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]


def _check_locks(
    path: str, tree: ast.Module, comments: dict[int, str]
) -> list[Finding]:
    from repro.analysis.hierarchy import rank_of

    findings: list[Finding] = []
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        guards = _guarded_attrs(cls, comments)
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            aliases = _local_lock_aliases(fn)
            visitor = _LockVisitor(
                path,
                guards if fn.name != "__init__" else {},
                aliases,
                rank_of,
                findings,
            )
            for stmt in fn.body:
                visitor.visit(stmt)
    return findings


# -- SPEC001 ---------------------------------------------------------------


def _callable_aliases(tree: ast.Module) -> set[str]:
    """Module-level names aliasing ``Callable[...]`` types."""
    aliases: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and any(
                isinstance(sub, ast.Name) and sub.id in _UNPICKLABLE_TYPES
                for sub in ast.walk(node.value)
            ):
                aliases.add(target.id)
    return aliases


def _dataclass_frozen(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        if isinstance(dec, ast.Call):
            name = dec.func
            if (
                isinstance(name, ast.Name)
                and name.id == "dataclass"
                or isinstance(name, ast.Attribute)
                and name.attr == "dataclass"
            ):
                for kw in dec.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


def _check_specs(path: str, tree: ast.Module) -> list[Finding]:
    findings: list[Finding] = []
    forbidden = _UNPICKLABLE_TYPES | _callable_aliases(tree)
    spec_classes = set(_SPEC_BASES)
    # Same-file transitivity: a class deriving from a spec class is one.
    changed = True
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    flagged: list[ast.ClassDef] = []
    while changed:
        changed = False
        for cls in classes:
            if cls.name in spec_classes:
                continue
            base_names = {
                b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                for b in cls.bases
            }
            if base_names & spec_classes:
                spec_classes.add(cls.name)
                flagged.append(cls)
                changed = True
    for cls in flagged:
        fields = [n for n in cls.body if isinstance(n, ast.AnnAssign)]
        if not fields:
            continue  # field-less mixins/abstract intermediates are exempt
        if not _dataclass_frozen(cls):
            findings.append(
                Finding(
                    path,
                    cls.lineno,
                    "SPEC001",
                    f"task spec {cls.name!r} with fields must be a "
                    "@dataclass(frozen=True)",
                )
            )
        for f in fields:
            bad = sorted(
                {
                    sub.id
                    for sub in ast.walk(f.annotation)
                    if isinstance(sub, ast.Name) and sub.id in forbidden
                }
                | {
                    sub.attr
                    for sub in ast.walk(f.annotation)
                    if isinstance(sub, ast.Attribute)
                    and sub.attr in _UNPICKLABLE_TYPES
                }
            )
            if bad:
                findings.append(
                    Finding(
                        path,
                        f.lineno,
                        "SPEC001",
                        f"spec field of {cls.name!r} has unpicklable type "
                        f"{'/'.join(bad)} (specs must pickle by reference)",
                    )
                )
            if f.value is not None and any(
                isinstance(sub, ast.Lambda) for sub in ast.walk(f.value)
            ):
                findings.append(
                    Finding(
                        path,
                        f.lineno,
                        "SPEC001",
                        f"spec field of {cls.name!r} defaults to a lambda",
                    )
                )
    return findings


# -- FRAME001 --------------------------------------------------------------


def _name_tuple(node: ast.expr) -> list[str] | None:
    if isinstance(node, (ast.Tuple, ast.List)):
        names = []
        for el in node.elts:
            if isinstance(el, ast.Name):
                names.append(el.id)
            elif isinstance(el, ast.Attribute):
                names.append(el.attr)
            else:
                return None
        return names
    return None


def _module_tuple_assign(tree: ast.Module, name: str) -> list[str] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == name:
                return _name_tuple(node.value)
    return None


def _isinstance_targets(tree: ast.Module) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            arg = node.args[1]
            names = _name_tuple(arg)
            if names is not None:
                out.update(names)
            elif isinstance(arg, ast.Name):
                out.add(arg.id)
            elif isinstance(arg, ast.Attribute):
                out.add(arg.attr)
    return out


def _frame_registry(root: Path) -> set[str] | None:
    """Frame names registered in tests/test_rpc_frames.py, or None."""
    reg = root / "tests" / "test_rpc_frames.py"
    if not reg.exists():
        return None
    try:
        tree = ast.parse(reg.read_text())
    except SyntaxError:  # pragma: no cover - broken test file
        return None
    for node in tree.body:
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
            if isinstance(node, ast.AnnAssign) and node.value is not None
            else []
        )
        value = node.value if isinstance(node, (ast.Assign, ast.AnnAssign)) else None
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "FRAME_EXAMPLES"
                and isinstance(value, ast.Dict)
            ):
                keys: set[str] = set()
                for k in value.keys:
                    if isinstance(k, ast.Constant) and isinstance(k.value, str):
                        keys.add(k.value)
                    elif isinstance(k, ast.Name):
                        keys.add(k.id)
                    elif isinstance(k, ast.Attribute):
                        keys.add(k.attr)
                return keys
    return None


def _repo_root(path: Path) -> Path | None:
    for parent in [path, *path.parents]:
        if (parent / "src").is_dir() and (parent / "tests").is_dir():
            return parent
    return None


def _check_frames(path: str, tree: ast.Module) -> list[Finding]:
    frames = _module_tuple_assign(tree, "MESSAGE_TYPES")
    if frames is None:
        return []
    findings: list[Finding] = []
    line = next(
        (
            n.lineno
            for n in tree.body
            if isinstance(n, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "MESSAGE_TYPES"
                for t in n.targets
            )
        ),
        1,
    )
    worker = _module_tuple_assign(tree, "WORKER_HANDLED")
    client = _module_tuple_assign(tree, "CLIENT_HANDLED")
    if worker is None or client is None:
        findings.append(
            Finding(
                path,
                line,
                "FRAME001",
                "module declares MESSAGE_TYPES but no WORKER_HANDLED/"
                "CLIENT_HANDLED dispatch tables",
            )
        )
        return findings
    handled = set(worker) | set(client)
    for frame in frames:
        if frame not in handled:
            findings.append(
                Finding(
                    path,
                    line,
                    "FRAME001",
                    f"frame {frame!r} is in MESSAGE_TYPES but in neither "
                    "dispatch table (unhandled frames are a protocol bug)",
                )
            )
    for name in sorted(handled - set(frames)):
        findings.append(
            Finding(
                path,
                line,
                "FRAME001",
                f"dispatch table lists {name!r} which is not a declared "
                "frame (stale entry?)",
            )
        )
    matched = _isinstance_targets(tree)
    for frame in worker:
        if frame not in matched:
            findings.append(
                Finding(
                    path,
                    line,
                    "FRAME001",
                    f"worker-handled frame {frame!r} is never matched by "
                    "an isinstance() dispatch check",
                )
            )
    root = _repo_root(Path(path).resolve())
    if root is not None:
        registry = _frame_registry(root)
        if registry is not None:
            for frame in frames:
                if frame not in registry:
                    findings.append(
                        Finding(
                            path,
                            line,
                            "FRAME001",
                            f"frame {frame!r} has no pickle-round-trip "
                            "example in tests/test_rpc_frames.py "
                            "(FRAME_EXAMPLES)",
                        )
                    )
    return findings


# -- driver ----------------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one python source string; returns surviving findings."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path, exc.lineno or 1, "LINT000", f"syntax error: {exc.msg}"
            )
        ]
    comments = _comments(source)
    suppressions = _suppressions(comments)

    findings: list[Finding] = []
    findings.extend(_check_locks(path, tree, comments))
    findings.extend(_check_specs(path, tree))
    findings.extend(_check_frames(path, tree))

    kept: list[Finding] = []
    for finding in findings:
        sup = suppressions.get(finding.line)
        if sup is not None and finding.rule in sup.rules and sup.justified:
            continue
        kept.append(finding)
    for sup in suppressions.values():
        if not sup.justified:
            kept.append(
                Finding(
                    path,
                    sup.line,
                    "LINT000",
                    f"suppression of {','.join(sup.rules)} lacks a "
                    "justification (`# lint: disable=RULE — why`)",
                )
            )
    return sorted(kept)


def lint_file(path: Path) -> list[Finding]:
    return lint_source(path.read_text(), str(path))


def lint_paths(paths: list[Path]) -> list[Finding]:
    """Lint every ``*.py`` under the given files/directories."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))
    return findings
