"""CLI driver: ``python -m repro.analysis [paths...] [--plans]``.

Modes:

* ``python -m repro.analysis src/`` — lint every ``*.py`` under the
  given paths; print findings, exit non-zero iff any survive.
* ``python -m repro.analysis --plans [--synthetic N]`` — run the
  plan-invariant corpus sweep (all 14 LUBM queries + N randomized
  synthetic BGPs, default 120) and exit non-zero on any violation.

Both modes run in CI's ``static-analysis`` job.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro static analysis: concurrency/protocol lint "
        "and CliqueSquare plan-invariant checks",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to lint"
    )
    parser.add_argument(
        "--plans",
        action="store_true",
        help="run the plan-invariant corpus sweep instead of the lint",
    )
    parser.add_argument(
        "--synthetic",
        type=int,
        default=120,
        help="number of randomized synthetic BGPs in the sweep",
    )
    parser.add_argument(
        "--seed", type=int, default=8612, help="synthetic workload seed"
    )
    parser.add_argument(
        "--max-patterns",
        type=int,
        default=8,
        help="largest synthetic BGP size",
    )
    args = parser.parse_args(argv)

    if args.plans:
        from repro.analysis.plan_check import PlanInvariantError, sweep_corpus

        def progress(query: object, opt: int, counters: dict) -> None:
            print(
                f"  {query.name or '<anon>'}: optimal height {opt} "
                f"({counters['plans']} plans so far)"
            )

        try:
            counters = sweep_corpus(
                synthetic=args.synthetic,
                seed=args.seed,
                max_patterns=args.max_patterns,
                progress=progress,
            )
        except PlanInvariantError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(
            f"plan corpus clean: {counters['queries']} queries, "
            f"{counters['plans']} plans, {counters['physical']} physical, "
            f"{counters['compiled']} compiled"
        )
        return 0

    if not args.paths:
        parser.error("give at least one path to lint (or --plans)")
    from repro.analysis.lint import lint_paths

    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
