"""Plan-invariant checker — the paper's structural guarantees, verified.

CliqueSquare's headline property is structural: the clique-decomposition
search produces *flat* plans whose space provably contains a
height-optimal plan (HO-partial, Theorem 4.3), built from n-ary star
joins that agree on all shared attributes.  Until now those properties
were only implied by figure-reproduction benchmarks; this module checks
them mechanically on any plan:

* :func:`check_logical_plan` — leaf coverage, per-level join-variable
  disjointness, star-join attribute agreement, dead-variable-only
  projections, and the flatness bound ``height <= n_patterns - 1``;
* :func:`check_plan_space` — the HO-partial guarantee: the optimizer's
  retained plan set still contains a plan of the query's optimal height
  (this catches ``max_plans`` truncation dropping every HO plan);
* :func:`check_physical_plan` — §5.2 translation invariants: map joins
  only over co-located scan chains, no reduce join consuming another
  reduce join directly, shufflers wired to real producers, the root
  projecting exactly the distinguished variables;
* :func:`check_compiled_plan` — §5.3 job-DAG shape: one job per reduce
  join, dependency depth equal to the reduce-join nesting depth, level
  schedule consistent with the plan height.

Runtime hook: with ``REPRO_CHECK_PLANS=1`` in the environment,
``PlanExecutor.prepare``/``ShardedPlanExecutor.prepare`` and the
service's optimizer call :func:`maybe_check` on every plan they touch,
so any pipeline bug that breaks a paper invariant fails loudly at the
point of introduction instead of as a wrong answer much later.
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.logical import Join, LogicalOperator, LogicalPlan, Match, Project
from repro.core.properties import height, operator_height, optimal_height
from repro.physical.operators import (
    Filter,
    MapJoin,
    MapScan,
    MapShuffler,
    PhysicalOperator,
    PhysProject,
    ReduceJoin,
)
from repro.sparql.ast import BGPQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.algorithm import OptimizerResult
    from repro.physical.job_compiler import CompiledPlan, JobSpec
    from repro.physical.translate import PhysicalPlan

ENV_FLAG = "REPRO_CHECK_PLANS"


class PlanInvariantError(AssertionError):
    """A plan violates one of the paper's structural invariants.

    Derives from :class:`AssertionError` because the checks are
    assertion-grade: they can only fire on an optimizer/translator bug
    (or a hand-built plan), never on user input.
    """

    def __init__(self, where: str, problems: list[str]) -> None:
        self.where = where
        self.problems = list(problems)
        lines = "\n  - ".join(self.problems)
        super().__init__(f"plan invariants violated in {where}:\n  - {lines}")


@dataclass
class _Report:
    """Accumulates violations so one raise lists every problem at once."""

    where: str
    problems: list[str] = field(default_factory=list)

    def check(self, ok: bool, message: str) -> None:
        if not ok:
            self.problems.append(message)

    def raise_if_failed(self) -> None:
        if self.problems:
            raise PlanInvariantError(self.where, self.problems)


def plans_checked() -> bool:
    """True iff the opt-in runtime assertion mode is enabled."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


# -- logical plans ---------------------------------------------------------


def _join_levels(plan: LogicalPlan) -> dict[int, list[Join]]:
    """Joins of the plan DAG grouped by level (1 = closest to leaves)."""
    memo: dict[int, int] = {}
    levels: dict[int, list[Join]] = defaultdict(list)
    seen: set[int] = set()
    for op in plan.root.iter_operators():
        if isinstance(op, Join) and id(op) not in seen:
            seen.add(id(op))
            levels[operator_height(op, memo)].append(op)
    return dict(levels)


def _op_variables(op: LogicalOperator) -> frozenset[str]:
    """Variables produced by *op*, recomputed from its patterns."""
    out: set[str] = set()
    for tp in op.patterns():
        out.update(tp.variables())
    return frozenset(out)


def check_logical_plan(plan: LogicalPlan, query: BGPQuery | None = None) -> None:
    """Verify the §4 structural invariants of one logical plan.

    Raises :class:`PlanInvariantError` listing every violation.  When
    *query* is omitted the plan's own attached query is used.
    """
    q = query if query is not None else plan.query
    report = _Report(where=f"logical plan for {q.name or q}")

    # 1. Leaf coverage: the Match leaves are exactly the query patterns,
    #    each covered by exactly one distinct Match operator (shared
    #    sub-DAGs may reference it from several consumers).
    leaves = [op for op in plan.root.iter_operators() if isinstance(op, Match)]
    leaf_patterns = {m.pattern for m in leaves}
    query_patterns = set(q.patterns)
    report.check(
        leaf_patterns == query_patterns,
        f"leaves {sorted(map(str, leaf_patterns))} do not cover the query "
        f"patterns {sorted(map(str, query_patterns))} exactly",
    )

    levels = _join_levels(plan)

    for level in sorted(levels):
        claimed: dict[str, int] = {}
        for join in levels[level]:
            # 2. n-ary star joins: >= 2 inputs, non-empty key, and every
            #    input agrees on (i.e. produces) all shared attributes.
            #    (A key may include variables that are not query join
            #    variables when two inputs share a sub-DAG — the shared
            #    subtree makes its private variables common to both.)
            report.check(len(join.inputs) >= 2, f"join {join} has < 2 inputs")
            report.check(bool(join.on), f"join {join} has an empty key")
            for v in join.on:
                for child in join.inputs:
                    report.check(
                        v in _op_variables(child),
                        f"join input {child} does not produce shared "
                        f"attribute {v!r} of {join}",
                    )
                # 3. Exactly-once coverage per level: the clique
                #    decomposition assigns each variable to at most one
                #    clique per reduction step, so two joins of the same
                #    level must never both resolve the same variable.
                previous = claimed.setdefault(v, id(join))
                report.check(
                    previous == id(join),
                    f"variable {v!r} is covered by two joins at level {level}",
                )

    # 4. Projections drop only dead variables: anything a projection
    #    removes must be needed neither by the distinguished variables
    #    nor by any join evaluated above the projection.
    _check_projections(plan, q, report)

    # 5. Flatness: a plan over n patterns has at most n - 1 join levels
    #    (each level strictly reduces the number of unjoined components).
    n = len(q.patterns)
    h = height(plan)
    report.check(
        h <= max(0, n - 1),
        f"height {h} exceeds the structural bound {max(0, n - 1)} "
        f"for {n} patterns",
    )

    report.raise_if_failed()


def _check_projections(
    plan: LogicalPlan, query: BGPQuery, report: _Report
) -> None:
    needed_above: dict[int, set[str]] = {}

    def walk(op: LogicalOperator, needed: set[str]) -> None:
        prior = needed_above.get(id(op))
        if prior is not None and needed <= prior:
            return  # already walked with a superset of requirements
        merged = set(needed) | (prior or set())
        needed_above[id(op)] = merged
        if isinstance(op, Project):
            dropped = _op_variables(op.child) - set(op.on)
            live = dropped & merged
            report.check(
                not live,
                f"projection {op.on} drops live variable(s) "
                f"{sorted(live)} still needed above",
            )
        child_needed = set(merged)
        if isinstance(op, Join):
            child_needed |= set(op.on)
        for child in op.children:
            walk(child, child_needed)

    walk(plan.root, set(query.distinguished))


def check_plan_space(
    query: BGPQuery,
    result: "OptimizerResult",
    *,
    optimal: int | None = None,
    check_each: bool = False,
    timeout_s: float | None = 100.0,
) -> int:
    """Verify the HO-partial guarantee on an optimizer result.

    The retained plan set must contain at least one plan of the query's
    optimal height (Theorem 4.3) — in particular, ``max_plans``
    truncation must never drop *every* height-optimal plan.  Returns the
    optimal height.  With ``check_each`` every retained plan is also run
    through :func:`check_logical_plan` (the corpus sweep does this; the
    runtime hook skips it for cost).
    """
    report = _Report(where=f"plan space of {query.name or query}")
    if not result.plans:
        raise PlanInvariantError(report.where, ["optimizer produced no plan"])
    opt = optimal if optimal is not None else optimal_height(query, timeout_s=timeout_s)
    heights = [height(p) for p in result.plans]
    report.check(
        min(heights) == opt,
        f"retained plans have min height {min(heights)} but the optimal "
        f"height is {opt} (every height-optimal plan was dropped)",
    )
    bound = max(0, len(query.patterns) - 1)
    report.check(
        max(heights) <= bound,
        f"max plan height {max(heights)} exceeds the structural bound {bound}",
    )
    report.raise_if_failed()
    if check_each:
        for p in result.plans:
            check_logical_plan(p, query)
    return opt


# -- physical plans --------------------------------------------------------


def _physical_attrs(op: PhysicalOperator, report: _Report) -> tuple[str, ...]:
    """Recompute output attributes bottom-up, cross-checking ``op.attrs``."""
    if isinstance(op, MapScan):
        computed: tuple[str, ...] = op.pattern.variables()
    elif isinstance(op, (Filter, PhysProject)):
        child = _physical_attrs(op.children[0], report)
        computed = op.on if isinstance(op, PhysProject) else child
        if isinstance(op, PhysProject):
            missing = set(op.on) - set(child)
            report.check(
                not missing,
                f"projection {op.on} keeps attribute(s) {sorted(missing)} "
                "its child does not produce",
            )
    elif isinstance(op, MapShuffler):
        computed = op.source_attrs
    elif isinstance(op, (MapJoin, ReduceJoin)):
        seen: list[str] = []
        for child in op.inputs:
            for a in _physical_attrs(child, report):
                if a not in seen:
                    seen.append(a)
        computed = tuple(seen)
    else:  # pragma: no cover - future operator types
        report.check(False, f"unknown physical operator {type(op).__name__}")
        return op.attrs
    report.check(
        set(computed) == set(op.attrs),
        f"{op} advertises attrs {op.attrs} but its inputs produce {computed}",
    )
    return computed


def _is_map_side_chain(op: PhysicalOperator) -> bool:
    """True iff *op* is a pure map-side chain (no reduce join inside)."""
    if isinstance(op, ReduceJoin):
        return False
    return all(_is_map_side_chain(c) for c in op.children)


def check_physical_plan(
    plan: "PhysicalPlan", query: BGPQuery | None = None
) -> None:
    """Verify the §5.2 translation invariants of one physical plan."""
    report = _Report(where="physical plan")
    producers = {rj.output_name: rj for rj in plan.reduce_joins}
    report.check(
        len(producers) == len(plan.reduce_joins),
        "duplicate reduce-join output names",
    )

    for op in plan.operators():
        if isinstance(op, (MapJoin, ReduceJoin)):
            report.check(len(op.inputs) >= 2, f"join {op} has < 2 inputs")
            report.check(bool(op.on), f"join {op} has an empty key")
            for child in op.inputs:
                missing = set(op.on) - set(child.attrs)
                report.check(
                    not missing,
                    f"input {child} of {op} lacks join attribute(s) "
                    f"{sorted(missing)}",
                )
        if isinstance(op, MapJoin):
            # Map joins are first-level, co-located: every input must be
            # a map-side chain over base scans (no shufflers: a shuffled
            # input means a prior job, hence a reduce join).
            for child in op.inputs:
                ok = _is_map_side_chain(child) and not any(
                    isinstance(o, MapShuffler)
                    for o in _chain_operators(child)
                )
                report.check(
                    ok,
                    f"map join {op} consumes non-co-located input {child}",
                )
        if isinstance(op, ReduceJoin):
            for child in op.inputs:
                report.check(
                    not isinstance(child, ReduceJoin),
                    f"reduce join {op} consumes reduce join {child} "
                    "directly (a shuffler must sit between jobs)",
                )
        if isinstance(op, MapShuffler):
            report.check(
                op.source in producers,
                f"shuffler {op} reads {op.source!r} which no reduce join "
                "produces",
            )
            if op.source in producers:
                produced = set(producers[op.source].attrs)
                report.check(
                    set(op.source_attrs) <= produced,
                    f"shuffler {op} advertises attrs not produced by "
                    f"{op.source!r}",
                )

    _physical_attrs(plan.root, report)

    if query is not None:
        report.check(
            isinstance(plan.root, PhysProject),
            "plan root is not a projection",
        )
        report.check(
            set(plan.root.attrs) == set(query.distinguished),
            f"root projects {plan.root.attrs} instead of the "
            f"distinguished variables {query.distinguished}",
        )
    report.raise_if_failed()


def _chain_operators(op: PhysicalOperator) -> list[PhysicalOperator]:
    out = [op]
    for child in op.children:
        out.extend(_chain_operators(child))
    return out


# -- compiled job DAGs -----------------------------------------------------


def check_compiled_plan(
    compiled: "CompiledPlan",
    physical: "PhysicalPlan",
    plan: LogicalPlan | None = None,
) -> None:
    """Verify the §5.3 job-DAG invariants of one compiled plan."""
    report = _Report(where="compiled plan")
    by_name = {job.name: job for job in compiled.jobs}
    report.check(len(by_name) == len(compiled.jobs), "duplicate job names")

    # One job per reduce join, plus a single map-only job for flat plans.
    rj_jobs = [j for j in compiled.jobs if j.reduce_join is not None]
    report.check(
        len(rj_jobs) == len(physical.reduce_joins),
        f"{len(physical.reduce_joins)} reduce joins but {len(rj_jobs)} "
        "reduce jobs",
    )
    if not physical.reduce_joins:
        report.check(
            len(compiled.jobs) == 1 and compiled.jobs[0].map_only,
            "plan without reduce joins must compile to one map-only job",
        )

    terminals = [j for j in compiled.jobs if j.output_name == "result"]
    report.check(len(terminals) == 1, "expected exactly one terminal job")

    for job in compiled.jobs:
        for dep in job.depends:
            report.check(
                dep in by_name, f"job {job.name} depends on unknown {dep!r}"
            )

    # Dependency depth == reduce-join nesting depth: the job DAG adds no
    # extra synchronization levels beyond what the plan's shape forces.
    def job_depth(job: "JobSpec", seen: tuple = ()) -> int:
        if job.name in seen:
            report.check(False, f"dependency cycle through {job.name}")
            return 0
        deps = [by_name[d] for d in job.depends if d in by_name]
        return 1 + max((job_depth(d, (*seen, job.name)) for d in deps), default=0)

    depth = max((job_depth(j) for j in compiled.jobs), default=0)
    rj_by_name = {rj.output_name: rj for rj in physical.reduce_joins}

    def rj_depth(rj: ReduceJoin, seen: tuple = ()) -> int:
        if rj.output_name in seen:
            return 0
        inner = 0
        for child in rj.inputs:
            source = getattr(child, "source", None)
            if source in rj_by_name:
                inner = max(
                    inner, rj_depth(rj_by_name[source], (*seen, rj.output_name))
                )
        return inner + 1

    expected = max((rj_depth(rj) for rj in physical.reduce_joins), default=1)
    report.check(
        depth == expected,
        f"job DAG depth {depth} != reduce-join nesting depth {expected}",
    )

    if plan is not None:
        # Levels consistent with the plan height: first-level joins may
        # collapse into map tasks, everything else costs one job level.
        h = height(plan)
        report.check(
            max(1, h - 1) <= depth <= max(1, h),
            f"job DAG depth {depth} inconsistent with plan height {h}",
        )
    report.raise_if_failed()


# -- runtime hook + corpus sweep -------------------------------------------


def maybe_check(
    plan: LogicalPlan,
    physical: "PhysicalPlan | None" = None,
    compiled: "CompiledPlan | None" = None,
    query: BGPQuery | None = None,
) -> None:
    """Run every applicable check iff ``REPRO_CHECK_PLANS=1``.

    This is the hook the executors and the optimizer call; it is a
    single env lookup when the mode is off.
    """
    if not plans_checked():
        return
    check_logical_plan(plan, query)
    if physical is not None:
        check_physical_plan(physical, query if query is not None else plan.query)
    if physical is not None and compiled is not None:
        check_compiled_plan(compiled, physical, plan)


def sweep_corpus(
    synthetic: int = 120,
    seed: int = 8612,
    max_patterns: int = 8,
    progress: "Callable[[BGPQuery, int, dict], None] | None" = None,
) -> dict[str, int]:
    """Check every invariant across the LUBM 14 + a synthetic corpus.

    Every query is optimized, its full retained plan space validated
    (:func:`check_plan_space` with per-plan checks), and the selected
    plan translated + compiled and validated at all three levels.
    Returns counters; raises :class:`PlanInvariantError` on the first
    violating query.
    """
    from repro.core.algorithm import cliquesquare
    from repro.core.decomposition import MSC
    from repro.physical.job_compiler import compile_plan
    from repro.physical.translate import translate
    from repro.workloads.lubm_queries import all_queries
    from repro.workloads.synthetic import SyntheticWorkload

    queries = list(all_queries())
    shapes = SyntheticWorkload(
        queries_per_shape=max(1, (synthetic + 3) // 4),
        max_patterns=max_patterns,
        seed=seed,
    ).generate()
    for batch in shapes.values():
        queries.extend(batch)

    counters = {"queries": 0, "plans": 0, "physical": 0, "compiled": 0}
    for query in queries:
        result = cliquesquare(query, MSC, max_plans=None, timeout_s=100.0)
        opt = check_plan_space(query, result, check_each=True)
        counters["plans"] += len(result.plans)
        # Validate the full pipeline on a height-optimal plan *and* on
        # the structurally worst retained plan (tallest): both must
        # translate and compile into invariant-respecting job DAGs.
        picks = {
            id(min(result.plans, key=height)): min(result.plans, key=height),
            id(max(result.plans, key=height)): max(result.plans, key=height),
        }
        for pick in picks.values():
            physical = translate(pick)
            check_physical_plan(physical, query)
            compiled = compile_plan(physical)
            check_compiled_plan(compiled, physical, pick)
            counters["physical"] += 1
            counters["compiled"] += 1
        counters["queries"] += 1
        if progress is not None:
            progress(query, opt, counters)
    return counters
