"""The declared lock hierarchy — single source of truth for LOCK002.

Locks are ranked into tiers; a thread may only acquire a lock whose tier
is **strictly greater** than every lock it already holds (outermost
locks have the smallest tier).  The static rule ``LOCK002`` rejects
lexically nested ``with`` acquisitions that invert the order, and the
dynamic witness (:mod:`repro.analysis.locks`, ``REPRO_LOCK_CHECK=1``)
enforces the same ranks across function-call boundaries at runtime.

Names are matched by their final attribute component (``_store_lock``),
optionally qualified by class (``QueryService._store_lock`` wins over a
bare ``_store_lock`` entry).  Locks absent from the table are unranked:
the witness still includes them in cycle detection, but no ordering is
imposed — add an entry when a new lock participates in nesting.

Tier map (outermost first):

* **10 — orchestration**: single-flight registries consulted before any
  engine state is touched.
* **20 — engine state**: the store RW locks and template/bound-spec
  registries; held across planning and level execution.
* **30 — transport**: per-shard client management, connection swap and
  send serialization on the RPC path.
* **40 — leaves**: counters, caches, pools and gauges; never held while
  acquiring anything else.
"""

from __future__ import annotations

LOCK_RANKS: dict[str, int] = {
    # -- orchestration ----------------------------------------------------
    "_flights_lock": 10,  # service single-flight (queries + templates)
    "_pool_lock": 15,  # executor pool lifecycle; close() holds it while
    #   tearing down the executor -> router -> shard clients
    # -- engine state -----------------------------------------------------
    "_store_lock": 20,  # QueryService store RW lock
    "rwlock": 20,  # RPC worker snapshot RW lock
    "_bound_lock": 20,  # worker template/bound-spec state
    # -- transport --------------------------------------------------------
    "_shard_locks": 30,  # per-shard client slot (respawn/prime; a live
    #   rebalance walks these shard by shard for prime/delta/flip, under
    #   the service's _store_lock write side — same tiers, no new ranks)
    "_close_lock": 30,  # client connection swap
    "_cond": 32,  # coalescer leader/pending wait
    "_serial_lock": 34,  # unpipelined request serialization
    "_send_lock": 36,  # frame write + codec commit ordering
    "_registry_lock": 38,  # router template registry (snapshot reads only;
    #   taken inside _start_worker while the shard lock is held)
    # -- leaves -----------------------------------------------------------
    "_waiters_lock": 40,  # reply futures table
    "_counter_lock": 40,  # router per-level counters
    "_stats_lock": 40,  # worker telemetry gauges
    "_dedup_lock": 40,  # request-id dedup LRU
    "send_lock": 40,  # worker reply-write serialization
    "_lock": 40,  # leaf utility locks (caches, backends, router pool)
    # -- observability (repro.obs; below every engine lock so spans and
    #    metrics may be recorded from any instrumented path) --------------
    "MetricsRegistry._lock": 41,  # family directory; held before children
    "_metric_lock": 42,  # per-child counter/gauge/histogram state
    "TraceSink._lock": 44,  # trace store (span append, snapshot, evict)
    "_trace_dir_lock": 46,  # process-local trace_id -> sink directory
}


def rank_of(name: str) -> int | None:
    """The declared tier of a lock name, or None when unranked.

    *name* may be fully qualified (``Class._attr``); the qualified form
    is consulted first, then the bare attribute.
    """
    if name in LOCK_RANKS:
        return LOCK_RANKS[name]
    attr = name.rsplit(".", 1)[-1]
    return LOCK_RANKS.get(attr)
