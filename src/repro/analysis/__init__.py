"""Static analysis & invariant checking for the repro codebase.

Three pillars (see the module docstrings for the details):

* :mod:`repro.analysis.lint` — AST lint for the repo's concurrency and
  protocol conventions (LOCK001 guarded-by, LOCK002 lock order, SPEC001
  picklable specs, FRAME001 frame exhaustiveness);
* :mod:`repro.analysis.plan_check` — mechanical verification of the
  paper's structural plan invariants (flatness, HO-partiality, star-join
  agreement, job-DAG shape), also available as the ``REPRO_CHECK_PLANS=1``
  runtime assertion mode;
* :mod:`repro.analysis.locks` — a dynamic lock-order witness
  (``REPRO_LOCK_CHECK=1``) validating the hierarchy declared in
  :mod:`repro.analysis.hierarchy` at runtime.

CLI: ``python -m repro.analysis src/`` lints a tree (exit 0 iff clean);
``python -m repro.analysis --plans`` runs the plan-invariant corpus
sweep (LUBM 14 + randomized synthetic BGPs).
"""

# Re-exports are lazy: engine modules (rpc, backends, service) import
# repro.analysis.locks at startup, and a plain package __init__ would
# pull the whole plan checker — and with it repro.core / repro.physical
# — into every import chain, inviting cycles.
_EXPORTS = {
    "Finding": "repro.analysis.lint",
    "lint_paths": "repro.analysis.lint",
    "lint_source": "repro.analysis.lint",
    "PlanInvariantError": "repro.analysis.plan_check",
    "check_compiled_plan": "repro.analysis.plan_check",
    "check_logical_plan": "repro.analysis.plan_check",
    "check_physical_plan": "repro.analysis.plan_check",
    "check_plan_space": "repro.analysis.plan_check",
    "maybe_check": "repro.analysis.plan_check",
    "plans_checked": "repro.analysis.plan_check",
    "sweep_corpus": "repro.analysis.plan_check",
}


def __getattr__(name: str) -> object:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "PlanInvariantError",
    "check_compiled_plan",
    "check_logical_plan",
    "check_physical_plan",
    "check_plan_space",
    "maybe_check",
    "plans_checked",
    "sweep_corpus",
]
