"""repro.service — the concurrent query service with plan & result caching.

Layered over one §5.1 partitioned store, the service amortizes the
CliqueSquare optimizer across a workload: canonical query signatures
key a plan cache (repeated query shapes skip optimization entirely), an
LRU result cache short-circuits repeated fully-bound queries until the
graph changes, and batches of independent queries run concurrently with
duplicate submissions coalesced.  See :mod:`repro.service.service`.
"""

from repro.service.cache import (
    LRUCache,
    PlanCache,
    PlanEntry,
    ResultCache,
    ResultEntry,
)
from repro.service.service import (
    QueryOutcome,
    QueryService,
    ServiceConfig,
)
from repro.service.stats import (
    LatencySummary,
    QueryTimings,
    ServiceStats,
    StatsSnapshot,
    percentile,
)

__all__ = [
    "LRUCache",
    "LatencySummary",
    "PlanCache",
    "PlanEntry",
    "QueryOutcome",
    "QueryService",
    "QueryTimings",
    "ResultCache",
    "ResultEntry",
    "ServiceConfig",
    "ServiceStats",
    "StatsSnapshot",
    "percentile",
]
