"""repro.service — the concurrent query service with template, plan &
result caching.

Layered over one §5.1 partitioned store, the service exposes one
prepare → bind → execute surface: constant-independent template
signatures key a template cache (the optimizer runs once per query
*structure*; constants late-bind into the compiled plan), instance keys
(template + constants) key a bound-plan cache and an LRU result cache
that short-circuits repeated fully-bound queries until the graph
changes, and batches of independent queries run concurrently with
duplicate submissions coalesced.  See :mod:`repro.service.service`.
"""

from repro.cluster.rpc import ShardUnavailable
from repro.service.cache import (
    LRUCache,
    PlanCache,
    PlanEntry,
    ResultCache,
    ResultEntry,
    TemplateCache,
    TemplateEntry,
)
from repro.service.service import (
    BoundQuery,
    PreparedQuery,
    QueryOutcome,
    QueryService,
    ServiceConfig,
    ServiceOverloaded,
)
from repro.service.stats import (
    LatencySummary,
    QueryTimings,
    ServiceStats,
    StatsSnapshot,
    percentile,
)

__all__ = [
    "BoundQuery",
    "LRUCache",
    "LatencySummary",
    "PlanCache",
    "PlanEntry",
    "PreparedQuery",
    "QueryOutcome",
    "QueryService",
    "QueryTimings",
    "ResultCache",
    "ResultEntry",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceStats",
    "ShardUnavailable",
    "StatsSnapshot",
    "TemplateCache",
    "TemplateEntry",
    "percentile",
]
