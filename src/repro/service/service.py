"""The concurrent CliqueSquare query service.

A :class:`QueryService` is a long-lived serving layer over one
partitioned store (§5.1) that amortizes optimization across a workload:

* submissions are canonicalized (:mod:`repro.sparql.canonical`), so the
  optimizer+coster pipeline runs once per *query shape* and its output
  is memoized in a :class:`~repro.service.cache.PlanCache`;
* answers of fully-bound queries are memoized in an LRU
  :class:`~repro.service.cache.ResultCache`, invalidated by a graph
  version counter whenever triples are added;
* :meth:`QueryService.submit_batch` schedules independent queries on a
  shared thread pool and *coalesces* duplicates: queries with the same
  canonical signature execute once and fan their answer out (the
  single-flight discipline also applies to concurrent :meth:`submit`
  calls racing on one shape);
* a readers–writer lock lets any number of queries read the store
  concurrently while :meth:`add_triples` gets exclusive access, and
  every submission is recorded in :class:`~repro.service.stats.ServiceStats`;
* task execution is delegated to a pluggable
  :class:`~repro.mapreduce.backends.ExecutionBackend`
  (``ServiceConfig.backend``): ``"process"`` fans each query's
  map/reduce tasks out across worker processes — the GIL-free path that
  lets :meth:`submit_batch` actually parallelize CPU-bound work — with
  automatic serial fallback (recorded as a stats warning) where process
  pools are unavailable.

The classic CSQ system (:mod:`repro.systems.csq`) is a thin session over
this service; later scaling work (sharding, async backends, admission
control) is meant to slot in behind the same ``submit`` interface.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.core.algorithm import OptimizerResult, cliquesquare
from repro.core.decomposition import MSC, DecompositionOption
from repro.core.logical import LogicalPlan
from repro.cost.cardinality import CardinalityEstimator, CatalogStatistics
from repro.cost.model import PlanCoster, select_best_plan
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.backends import make_backend
from repro.mapreduce.counters import ExecutionReport
from repro.mapreduce.engine import ClusterConfig
from repro.mapreduce.jobs import TaskContext
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import ExecutionResult, PlanExecutor, PreparedPlan
from repro.rdf.graph import RDFGraph, Triple
from repro.service.cache import PlanCache, PlanEntry, ResultCache, ResultEntry
from repro.service.stats import QueryTimings, ServiceStats, StatsSnapshot
from repro.sparql.ast import BGPQuery
from repro.sparql.canonical import (
    CanonicalizationBudgetExceeded,
    CanonicalQuery,
    canonicalize,
)
from repro.sparql.parser import parse_query
from repro.systems.base import SystemReport


class _ReadWriteLock:
    """Writer-preferring readers–writer lock.

    Queries hold the read side while scanning the partitioned store;
    :meth:`QueryService.add_triples` takes the write side, so mutation
    never interleaves with a running scan.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._waiting_writers += 1
            while self._readers or self._writer:
                self._cond.wait()
            self._waiting_writers -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Side:
        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()

        def __exit__(self, *exc):
            self._release()
            return False

    def read(self) -> "_ReadWriteLock._Side":
        return self._Side(self.acquire_read, self.release_read)

    def write(self) -> "_ReadWriteLock._Side":
        return self._Side(self.acquire_write, self.release_write)


@dataclass
class ServiceConfig:
    """Deployment knobs for the query service."""

    num_nodes: int = 7
    option: DecompositionOption = MSC
    max_plans: int | None = 20_000
    timeout_s: float | None = 100.0
    params: CostParams = DEFAULT_PARAMS
    #: LRU capacity of the plan cache (None = unbounded).
    plan_cache_size: int | None = None
    #: LRU capacity of the result cache (0 disables result caching).
    result_cache_size: int | None = 256
    #: worker threads for submit_batch
    max_workers: int = 8
    #: task execution backend: "serial" | "thread" | "process" (or an
    #: ExecutionBackend instance).  "process" actually parallelizes the
    #: CPU-bound map/reduce work of each query across worker processes;
    #: where process pools are unavailable it falls back to serial and
    #: records a warning in ServiceStats.
    backend: str = "serial"
    #: workers for the thread/process execution backend (None = auto:
    #: 4 threads, or one process per available CPU)
    backend_workers: int | None = None
    #: individualization budget of the canonicalizer
    canonical_budget: int = 4096
    #: drop cached plans when the graph (hence statistics) changes
    invalidate_plans_on_mutation: bool = False


@dataclass
class _Answer:
    """A resolved query in canonical variable space (shared by waiters)."""

    attrs: tuple[str, ...]
    rows: frozenset[tuple]
    plan: LogicalPlan
    report: ExecutionReport
    job_signature: str
    plan_hit: bool
    result_hit: bool
    optimize_s: float
    execute_s: float
    version: int


@dataclass
class _Flight:
    """Single-flight slot: first submitter computes, the rest wait."""

    done: threading.Event = field(default_factory=threading.Event)
    answer: _Answer | None = None
    error: BaseException | None = None


@dataclass
class QueryOutcome:
    """Everything the service knows about one submission."""

    query: BGPQuery
    attrs: tuple[str, ...]
    rows: set[tuple]
    plan: LogicalPlan
    report: ExecutionReport
    job_signature: str
    plan_cache_hit: bool
    result_cache_hit: bool
    coalesced: bool
    cacheable: bool
    timings: QueryTimings
    graph_version: int

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    @property
    def response_time(self) -> float:
        """Simulated cluster response time (not wall-clock)."""
        return self.report.response_time

    @property
    def num_jobs(self) -> int:
        return self.report.num_jobs

    @property
    def pwoc(self) -> bool:
        return self.job_signature == "M"

    def to_report(self, system: str = "QueryService") -> SystemReport:
        return SystemReport(
            system=system,
            query_name=self.query.name or str(self.query),
            answers=self.rows,
            response_time=self.response_time,
            num_jobs=self.num_jobs,
            job_signature=self.job_signature,
            pwoc=self.pwoc,
            details={"plan": self.plan, "report": self.report, "outcome": self},
        )


class QueryService:
    """A concurrent, caching SPARQL-BGP query service over one store."""

    def __init__(self, graph: RDFGraph, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.graph = graph
        self.store = partition_graph(graph, self.config.num_nodes)
        self.catalog = CatalogStatistics.from_graph(graph)
        self.estimator = CardinalityEstimator(self.catalog)
        self.coster = PlanCoster(self.estimator, self.config.params)
        self.backend = make_backend(
            self.config.backend,
            num_workers=self.config.backend_workers,
            on_fallback=self._on_backend_fallback,
        )
        self.executor = PlanExecutor(
            self.store,
            ClusterConfig(num_nodes=self.config.num_nodes),
            self.config.params,
            backend=self.backend,
        )
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self.result_cache = ResultCache(self.config.result_cache_size)
        self.stats = ServiceStats()
        self._version = 0
        self._store_lock = _ReadWriteLock()
        self._flights: dict[tuple, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False
        # Start process workers (if any) before serving threads exist:
        # fork-based pools must not be created from a multithreaded
        # batch submission mid-flight.
        self.backend.prime(
            TaskContext(
                num_nodes=self.config.num_nodes, store=self.store.snapshot()
            )
        )

    # -- lifecycle ---------------------------------------------------------

    def _on_backend_fallback(self, message: str) -> None:
        self.stats.record_warning(message)

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            self.backend.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            self._check_open()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.max_workers,
                    thread_name_prefix="repro-service",
                )
            return self._pool

    # -- reusable planning/execution steps (uncached) ----------------------

    def optimize(self, query: BGPQuery) -> tuple[LogicalPlan, OptimizerResult]:
        """CliqueSquare plans + cost-based selection of the best one."""
        result = cliquesquare(
            query,
            self.config.option,
            max_plans=self.config.max_plans,
            timeout_s=self.config.timeout_s,
        )
        if not result.plans:
            raise ValueError(
                f"{self.config.option} produced no plan for {query.name or query}"
            )
        best, _ = select_best_plan(result.unique_plans(), self.coster)
        return best, result

    def prepare(self, plan: LogicalPlan) -> PreparedPlan:
        """Translate + compile a logical plan (pure, reusable)."""
        return self.executor.prepare(plan)

    def execute_plan(self, plan: LogicalPlan) -> ExecutionResult:
        """Run an arbitrary logical plan under the store's read lock."""
        return self.execute_prepared(self.executor.prepare(plan))

    def execute_prepared(self, prepared: PreparedPlan) -> ExecutionResult:
        with self._store_lock.read():
            return self.executor.execute_prepared(prepared)

    # -- mutation ----------------------------------------------------------

    @property
    def graph_version(self) -> int:
        return self._version

    def add_triples(self, triples) -> int:
        """Add triples to the live graph; returns the number of new ones.

        Bumps the graph version (lazily invalidating every cached
        result), refreshes catalog statistics, and — if configured —
        drops cached plans so later queries re-optimize against the new
        statistics.
        """
        self._check_open()
        with self._store_lock.write():
            added = 0
            try:
                for triple in triples:
                    s, p, o = triple
                    if self.graph.add(s, p, o):
                        self.store.add((s, p, o))
                        added += 1
            finally:
                # Even if a later triple is rejected mid-batch, whatever
                # was applied must invalidate cached results and refresh
                # the statistics — otherwise stale answers keep serving.
                if added:
                    self._version += 1
                    # Swap in a fresh estimator/coster pair rather than
                    # resetting in place: an optimize() racing this
                    # mutation keeps its consistent pre-mutation view and
                    # writes its memoized cardinalities into the discarded
                    # estimator, not the new one.
                    self.catalog = CatalogStatistics.from_graph(self.graph)
                    self.estimator = CardinalityEstimator(self.catalog)
                    self.coster = PlanCoster(self.estimator, self.config.params)
                    if self.config.invalidate_plans_on_mutation:
                        self.plan_cache.clear()
                    self.stats.record_mutation()
                    # Rebuild process worker pools now, while the write
                    # lock quiesces every query thread: a fork-based pool
                    # must not be (re)created mid-batch from a pool
                    # thread, and the workers' store snapshot is stale
                    # anyway.
                    self.backend.prime(
                        TaskContext(
                            num_nodes=self.config.num_nodes,
                            store=self.store.snapshot(),
                        )
                    )
        return added

    # -- serving -----------------------------------------------------------

    def submit(self, query: BGPQuery | str, name: str = "") -> QueryOutcome:
        """Answer one query, through the plan and result caches."""
        self._check_open()
        started = time.perf_counter()
        try:
            parsed = parse_query(query, name) if isinstance(query, str) else query
        except ValueError:
            self.stats.record_error()
            raise
        try:
            t0 = time.perf_counter()
            canon = canonicalize(parsed, self.config.canonical_budget)
            canonicalize_s = time.perf_counter() - t0
        except CanonicalizationBudgetExceeded:
            return self._submit_uncacheable(parsed, started)
        answer, coalesced = self._resolve(canon)
        outcome = self._project(parsed, canon, answer, coalesced, started)
        outcome.timings = replace(outcome.timings, canonicalize_s=canonicalize_s)
        self.stats.record_query(
            outcome.timings,
            plan_hit=outcome.plan_cache_hit,
            result_hit=outcome.result_cache_hit,
            coalesced=coalesced,
        )
        return outcome

    def submit_batch(
        self, queries, *, dedup: bool = True, return_exceptions: bool = False
    ) -> list[QueryOutcome | BaseException]:
        """Answer many independent queries, concurrently.

        With ``dedup`` (the default), queries sharing a canonical
        signature are *coalesced*: each distinct shape optimizes and
        executes once and every duplicate reuses the answer — on a
        repeated workload mix a batch therefore does strictly less work
        than submitting its members one by one.

        Queries are independent, so with ``return_exceptions`` a failing
        member (parse error, planning error) yields its exception object
        in the result list instead of aborting the rest of the batch; by
        default the first failure propagates.

        Batch timings measure submission-to-availability: each member's
        ``total_s`` starts when the batch is submitted.
        """
        batch_started = time.perf_counter()
        items: list[BGPQuery | BaseException] = []
        for q in queries:
            try:
                items.append(parse_query(q) if isinstance(q, str) else q)
            except ValueError as exc:
                if not return_exceptions:
                    raise
                self.stats.record_error()
                items.append(exc)
        if not items:
            return []
        if len(items) == 1:
            only = items[0]
            if isinstance(only, BaseException):
                return [only]
            try:
                return [self.submit(only)]
            except Exception as exc:
                if not return_exceptions:
                    raise
                return [exc]
        pool = self._ensure_pool()
        if not dedup:
            futures = [
                None if isinstance(it, BaseException) else pool.submit(self.submit, it)
                for it in items
            ]
            outcomes: list[QueryOutcome | BaseException] = []
            for item, future in zip(items, futures):
                if future is None:
                    outcomes.append(item)
                    continue
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    if not return_exceptions:
                        raise
                    outcomes.append(exc)
            return outcomes
        #: per member: ("err", exc) | ("unc", future) | ("ok", query, canon, canon_s)
        entries: list[tuple] = []
        flights: dict[tuple, object] = {}
        for item in items:
            if isinstance(item, BaseException):
                entries.append(("err", item))
                continue
            t0 = time.perf_counter()
            try:
                canon = canonicalize(item, self.config.canonical_budget)
            except CanonicalizationBudgetExceeded:
                entries.append(
                    ("unc", pool.submit(self._submit_uncacheable, item, batch_started))
                )
                continue
            entries.append(("ok", item, canon, time.perf_counter() - t0))
            if canon.signature not in flights:
                flights[canon.signature] = pool.submit(self._resolve, canon)
        outcomes = []
        leaders: set[tuple] = set()
        for entry in entries:
            if entry[0] == "err":
                outcomes.append(entry[1])
                continue
            if entry[0] == "unc":
                try:
                    outcomes.append(entry[1].result())
                except Exception as exc:
                    # _submit_uncacheable already recorded the error.
                    if not return_exceptions:
                        raise
                    outcomes.append(exc)
                continue
            _, query, canon, canonicalize_s = entry
            try:
                answer, coalesced = flights[canon.signature].result()
            except Exception as exc:
                # The flight leader already recorded the error.
                if not return_exceptions:
                    raise
                outcomes.append(exc)
                continue
            coalesced = coalesced or canon.signature in leaders
            leaders.add(canon.signature)
            outcome = self._project(query, canon, answer, coalesced, batch_started)
            outcome.timings = replace(
                outcome.timings, canonicalize_s=canonicalize_s
            )
            self.stats.record_query(
                outcome.timings,
                plan_hit=outcome.plan_cache_hit,
                result_hit=outcome.result_cache_hit,
                coalesced=coalesced,
            )
            outcomes.append(outcome)
        return outcomes

    def snapshot_stats(self) -> StatsSnapshot:
        return self.stats.snapshot(self._version)

    # -- internals ---------------------------------------------------------

    def _resolve(self, canon: CanonicalQuery) -> tuple[_Answer, bool]:
        """Answer a canonical query, via caches and single-flight."""
        entry = self.result_cache.get_current(canon.signature, self._version)
        if entry is not None:
            return (
                _Answer(
                    attrs=entry.attrs,
                    rows=entry.rows,
                    plan=entry.plan,
                    report=entry.report,
                    job_signature=entry.job_signature,
                    plan_hit=True,
                    result_hit=True,
                    optimize_s=0.0,
                    execute_s=0.0,
                    version=entry.version,
                ),
                False,
            )
        with self._flights_lock:
            flight = self._flights.get(canon.signature)
            leader = flight is None
            if leader:
                flight = self._flights[canon.signature] = _Flight()
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.answer is not None
            if flight.answer.version != self._version:
                # The flight predates a mutation that committed after we
                # joined; its rows are stale for us. Recompute at the
                # current version instead of serving them.
                return self._resolve(canon)
            return flight.answer, True
        try:
            answer = self._compute(canon)
            flight.answer = answer
            return answer, False
        except BaseException as exc:
            flight.error = exc
            self.stats.record_error()
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(canon.signature, None)
            flight.done.set()

    def _compute(self, canon: CanonicalQuery) -> _Answer:
        entry = self.plan_cache.get(canon.signature)
        plan_hit = entry is not None
        if entry is None:
            t0 = time.perf_counter()
            plan, optimizer = self.optimize(canon.query)
            prepared = self.executor.prepare(plan)
            optimize_s = time.perf_counter() - t0
            entry = PlanEntry(
                plan=plan,
                prepared=prepared,
                optimize_s=optimize_s,
                plan_count=optimizer.plan_count,
                truncated=optimizer.truncated,
            )
            self.plan_cache.put(canon.signature, entry)
        else:
            optimize_s = 0.0
        t0 = time.perf_counter()
        with self._store_lock.read():
            version = self._version
            result = self.executor.execute_prepared(entry.prepared)
        execute_s = time.perf_counter() - t0
        answer = _Answer(
            attrs=result.attrs,
            rows=frozenset(result.rows),
            plan=entry.plan,
            report=result.report,
            job_signature=result.job_signature(),
            plan_hit=plan_hit,
            result_hit=False,
            optimize_s=optimize_s,
            execute_s=execute_s,
            version=version,
        )
        self.result_cache.put(
            canon.signature,
            ResultEntry(
                version=version,
                attrs=answer.attrs,
                rows=answer.rows,
                plan=answer.plan,
                report=answer.report,
                job_signature=answer.job_signature,
            ),
        )
        return answer

    def _project(
        self,
        query: BGPQuery,
        canon: CanonicalQuery,
        answer: _Answer,
        coalesced: bool,
        started: float,
    ) -> QueryOutcome:
        """Map a canonical-space answer back onto *query*'s variables."""
        wanted = [canon.mapping[v] for v in query.distinguished]
        index = [answer.attrs.index(c) for c in wanted]
        if index == list(range(len(answer.attrs))):
            rows = set(answer.rows)
        else:
            rows = {tuple(row[i] for i in index) for row in answer.rows}
        total_s = time.perf_counter() - started
        return QueryOutcome(
            query=query,
            attrs=tuple(query.distinguished),
            rows=rows,
            plan=answer.plan,
            report=answer.report,
            job_signature=answer.job_signature,
            plan_cache_hit=answer.plan_hit,
            result_cache_hit=answer.result_hit,
            coalesced=coalesced,
            cacheable=True,
            timings=QueryTimings(
                optimize_s=answer.optimize_s,
                execute_s=answer.execute_s,
                total_s=total_s,
            ),
            graph_version=answer.version,
        )

    def _submit_uncacheable(
        self, query: BGPQuery, started: float
    ) -> QueryOutcome:
        """Serve a query the canonicalizer gave up on, bypassing caches."""
        t0 = time.perf_counter()
        try:
            plan, _ = self.optimize(query)
            prepared = self.executor.prepare(plan)
        except Exception:
            self.stats.record_error()
            raise
        optimize_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        with self._store_lock.read():
            version = self._version
            result = self.executor.execute_prepared(prepared)
        execute_s = time.perf_counter() - t0
        timings = QueryTimings(
            optimize_s=optimize_s,
            execute_s=execute_s,
            total_s=time.perf_counter() - started,
        )
        self.stats.record_query(timings, plan_hit=False, result_hit=False)
        return QueryOutcome(
            query=query,
            attrs=result.attrs,
            rows=set(result.rows),
            plan=plan,
            report=result.report,
            job_signature=result.job_signature(),
            plan_cache_hit=False,
            result_cache_hit=False,
            coalesced=False,
            cacheable=False,
            timings=timings,
            graph_version=version,
        )
