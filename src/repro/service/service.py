"""The concurrent CliqueSquare query service.

A :class:`QueryService` is a long-lived serving layer over one
partitioned store (§5.1) that amortizes optimization across a workload.
Its native currency is the *prepared query*: every submission — ad-hoc
``submit``, ``submit_batch``, ``CSQ.run``, or an explicit
:meth:`QueryService.prepare` — routes through one
**prepare → bind → execute** pipeline:

* *prepare*: the query's liftable constants are extracted into a
  parameterized :class:`~repro.sparql.canonical.QueryTemplate` whose
  structure signature is constant-independent; the optimizer+coster
  pipeline runs once per template and its prepared (translated +
  compiled) plan is memoized in a
  :class:`~repro.service.cache.TemplateCache`.  Queries that differ only
  in constants — the dominant repetition pattern of production SPARQL
  workloads — therefore trigger exactly one optimizer invocation.
* *bind*: concrete constants are late-bound into the template's
  compiled task specs (the selection predicates inside
  ``ChainMapSpec``/``MapOnlySpec`` chains) without re-planning; bound
  plans are memoized per instance in a
  :class:`~repro.service.cache.PlanCache`, and fully-bound answers in an
  LRU :class:`~repro.service.cache.ResultCache` invalidated by a graph
  version counter whenever triples are added.
* *execute*: runs under a readers–writer lock (any number of queries
  read concurrently; :meth:`add_triples` gets exclusive access) on a
  pluggable :class:`~repro.mapreduce.backends.ExecutionBackend`
  (``ServiceConfig.backend``): ``"process"`` fans each query's
  map/reduce tasks out across worker processes — with automatic serial
  fallback (recorded as a stats warning) where pools are unavailable.
  A process pool receives each template once and only small binding
  substitutions after it.

:meth:`QueryService.submit_batch` schedules independent queries on a
shared thread pool and *coalesces* duplicates: queries with the same
instance key execute once and fan their answer out, and queries sharing
only a template single-flight the optimization.  Every submission is
recorded in :class:`~repro.service.stats.ServiceStats`, which breaks
plan-level outcomes into full plan-cache hits, template hits, and cold
optimizations.

The classic CSQ system (:mod:`repro.systems.csq`) is a thin session over
this service.  Two deployment knobs scale it out and keep it stable
under load:

* ``ServiceConfig.shards=N`` replaces the single store with the
  :mod:`repro.cluster` distribution layer — N shard workers each hold a
  slice of the §5.1 layout, a shard router runs map levels shard-local
  with a cross-shard exchange at the shuffle, per-shard reports merge
  into one, and shards receive a template once with per-query bindings
  after it.  Answers are identical for any shard count.
* ``ServiceConfig.max_inflight=K`` admission-controls the service:
  beyond K concurrently executing submissions, ``submit`` /
  ``submit_batch`` / ``PreparedQuery.execute`` raise
  :class:`ServiceOverloaded` instead of queueing without bound.
"""

from __future__ import annotations

import threading
import time
import warnings as _warnings
from collections import deque
from typing import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.analysis.locks import (
    checked,
    note_acquired,
    note_released,
    witness_name_if_enabled,
)
from repro.cluster import ShardedPlanExecutor, ShardedStore, shard_graph
from repro.columnar.wire import WIRE_FORMATS
from repro.core.algorithm import OptimizerResult, cliquesquare
from repro.core.decomposition import MSC, DecompositionOption
from repro.core.logical import LogicalPlan, rewrite_patterns
from repro.cost.cardinality import (
    CardinalityEstimator,
    CatalogStatistics,
    triple_delta,
)
from repro.cost.model import PlanCoster, select_best_plan
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.backends import DEFAULT_RPC_PIPELINE, make_backend
from repro.mapreduce.counters import ExecutionReport
from repro.mapreduce.engine import ClusterConfig
from repro.obs.trace import (
    Trace,
    TraceSink,
    activate,
    current_ref,
    record_remote,
    span,
    trace_ctx,
)
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import ExecutionResult, PlanExecutor, PreparedPlan
from repro.physical.explain import explain as explain_plan
from repro.rdf.graph import RDFGraph, Triple
from repro.service.cache import (
    PlanCache,
    PlanEntry,
    ResultCache,
    ResultEntry,
    TemplateCache,
    TemplateEntry,
)
from repro.service.stats import (
    QueryTimings,
    ServiceStats,
    ShardWorkerGauge,
    StatsSnapshot,
)
from repro.sparql.ast import BGPQuery
from repro.sparql.canonical import (
    CanonicalizationBudgetExceeded,
    QueryTemplate,
    extract_template,
)
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.systems.base import SystemReport


class ServiceOverloaded(RuntimeError):
    """Raised when the service is at ``max_inflight`` and rejects work.

    Admission control: rejecting instantly at the door (instead of
    queueing without bound) keeps latency predictable under overload —
    the caller sees a typed error and can retry with backoff.  Rejected
    submissions are counted in ``snapshot_stats().rejected``.
    """


class _ReadWriteLock:
    """Writer-preferring readers–writer lock.

    Queries hold the read side while scanning the partitioned store;
    :meth:`QueryService.add_triples` takes the write side, so mutation
    never interleaves with a running scan.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0
        # Lock-order witness node (REPRO_LOCK_CHECK=1); the internal
        # _cond is deliberately not witnessed — it is held only for the
        # bookkeeping instants, never across user code.
        self._witness = witness_name_if_enabled("QueryService._store_lock")

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1
        if self._witness:
            note_acquired(self._witness)

    def release_read(self) -> None:
        if self._witness:
            note_released(self._witness)
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._waiting_writers += 1
            while self._readers or self._writer:
                self._cond.wait()
            self._waiting_writers -= 1
            self._writer = True
        if self._witness:
            note_acquired(self._witness)

    def release_write(self) -> None:
        if self._witness:
            note_released(self._witness)
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Side:
        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()

        def __exit__(self, *exc):
            self._release()
            return False

    def read(self) -> "_ReadWriteLock._Side":
        return self._Side(self.acquire_read, self.release_read)

    def write(self) -> "_ReadWriteLock._Side":
        return self._Side(self.acquire_write, self.release_write)


@dataclass
class ServiceConfig:
    """Deployment knobs for the query service."""

    num_nodes: int = 7
    option: DecompositionOption = MSC
    max_plans: int | None = 20_000
    timeout_s: float | None = 100.0
    params: CostParams = DEFAULT_PARAMS
    #: LRU capacity of the bound-plan cache (None = unbounded).  Keyed
    #: per *instance* (template + constants), so on constant-varying
    #: workloads it must stay bounded — a miss only re-binds the cached
    #: template (cheap), never re-optimizes.
    plan_cache_size: int | None = 1024
    #: LRU capacity of the result cache (0 disables result caching).
    result_cache_size: int | None = 256
    #: worker threads for submit_batch
    max_workers: int = 8
    #: task execution backend: "serial" | "thread" | "process" (or an
    #: ExecutionBackend instance).  "process" actually parallelizes the
    #: CPU-bound map/reduce work of each query across worker processes;
    #: where process pools are unavailable it falls back to serial and
    #: records a warning in ServiceStats.
    backend: str = "serial"
    #: workers for the thread/process execution backend (None = auto:
    #: 4 threads, or one process per available CPU)
    backend_workers: int | None = None
    #: individualization budget of the canonicalizer
    canonical_budget: int = 4096
    #: drop cached plans when the graph (hence statistics) changes
    invalidate_plans_on_mutation: bool = False
    #: lift constants into parameterized plan templates, so queries that
    #: differ only in constants share one optimizer run.  False keeps
    #: explicit $params working but degenerates the template signature
    #: to the classical constant-inclusive canonical signature (one
    #: optimization per constant combination) — the legacy behaviour,
    #: kept as an ablation/escape hatch.
    enable_templates: bool = True
    #: LRU capacity of the template cache (None = unbounded)
    template_cache_size: int | None = None
    #: number of store shards.  0 keeps the single in-process store; with
    #: N >= 1 the store is hash-partitioned across N shard workers behind
    #: a ShardRouter (repro.cluster): map levels run shard-local, the
    #: shuffle between map and reduce is the cross-shard exchange, and
    #: per-shard reports merge into one.  Answers are identical for any
    #: shard count.  With backend="process" every shard gets a worker
    #: pool of its own (backend_workers is split across shards).
    shards: int = 0
    #: width of the slot ring behind the sharded store's node→shard map
    #: (repro.cluster.slots).  Nodes hash onto ``max(slots, num_nodes)``
    #: slots and a versioned SlotTable maps slots to shards, so
    #: :meth:`QueryService.rebalance` can grow/shrink/deskew the
    #: topology by moving slot ownership — answers are invariant across
    #: every table version.  Ignored unless ``shards >= 1``.
    slots: int = 64
    #: how the shard workers are reached (requires ``shards >= 1``):
    #: "inproc" calls per-shard execution backends in-process; "rpc"
    #: runs each shard as a long-lived server process behind
    #: repro.cluster.rpc — the worker holds its snapshot, registered
    #: templates and a local backend resident, and per query only bound
    #: constant vectors, level metadata and exchange rows cross the
    #: localhost socket.  A crashed worker is respawned (and the failed
    #: request retried) once; sustained failure raises a typed
    #: ShardUnavailable, counted in snapshot_stats().shard_failures.
    shard_transport: str = "inproc"
    #: row encoding of the rpc shard exchanges: "columnar" (default)
    #: ships map inputs, reduce exchange rows and results as
    #: dictionary-encoded id buffers plus a delta of terms the worker's
    #: resident snapshot doesn't hold (repro.columnar.wire); "pickle"
    #: keeps the original pickled tuple-list frames.  Answers and
    #: reports are identical either way; shard_bytes reports the
    #: encoded request sizes.  Ignored unless shard_transport="rpc".
    wire_format: str = "columnar"
    #: outstanding requests per shard rpc connection.  Each frame
    #: carries a request id; a per-connection reader thread matches
    #: replies to waiters, and each shard worker executes up to this
    #: many levels concurrently on a dispatch pool (state-mutating
    #: frames still serialize).  0 = serial request-response (one
    #: outstanding request at a time — the pre-multiplexing baseline).
    #: Ignored unless shard_transport="rpc".
    rpc_pipeline: int = DEFAULT_RPC_PIPELINE
    #: cross-query level coalescing: when > 0 (and coalesce_max_batch
    #: > 1), ExecuteLevels that concurrent queries dispatch to the same
    #: shard within this window are merged into one ExecuteBatch frame
    #: — one encode/send/recv per shard instead of one per query.
    #: Adds up to this much latency to a lone query's level; answers
    #: and reports are unchanged.  Ignored unless shard_transport="rpc".
    coalesce_window_ms: float = 0.0
    #: upper bound on levels merged into one ExecuteBatch frame
    #: (1 = coalescing off).  Ignored unless shard_transport="rpc".
    coalesce_max_batch: int = 1
    #: admission control: maximum concurrently executing submissions.
    #: Beyond it, submit/submit_batch/PreparedQuery.execute raise
    #: ServiceOverloaded instead of queueing.  None = unbounded.
    max_inflight: int | None = None
    #: record a wall-clock span tree per submission (parse/canonicalize/
    #: optimize/bind/execute, engine levels, and — under the rpc
    #: transport — per-shard RPC and worker spans) into the service's
    #: trace sink.  Off by default; the off path costs one contextvar
    #: read per span site.  :meth:`QueryService.explain_analyze` forces
    #: tracing for its own query regardless of this flag.
    tracing: bool = False
    #: submissions whose wall-clock ``total_s`` meets or exceeds this
    #: many seconds land in :meth:`QueryService.slow_queries` (a bounded
    #: ring) with their trace id when tracing was on.  None = disabled.
    slow_query_s: float | None = None
    #: trace retention: completed traces kept (oldest evicted first)
    #: and spans recorded per trace (the root counts; excess spans are
    #: dropped and tallied on ``Trace.truncated``).
    trace_max_traces: int = 256
    trace_span_cap: int = 512


@dataclass
class _Answer:
    """A resolved query in canonical variable space (shared by waiters)."""

    attrs: tuple[str, ...]
    rows: frozenset[tuple]
    plan: LogicalPlan
    report: ExecutionReport
    job_signature: str
    plan_hit: bool
    template_hit: bool
    result_hit: bool
    optimize_s: float
    execute_s: float
    bind_s: float
    version: int


@dataclass
class _Flight:
    """Single-flight slot: first submitter computes, the rest wait."""

    done: threading.Event = field(default_factory=threading.Event)
    value: object | None = None
    error: BaseException | None = None


@dataclass(frozen=True)
class _Instance:
    """One fully-bound instance of a template, ready to resolve.

    ``entry`` is set when the instance comes from a live
    :class:`PreparedQuery` handle: even if the template cache has since
    evicted (or a mutation invalidated) the shared entry, the handle's
    own optimized template is used — a held prepared query never
    re-optimizes.
    """

    template: QueryTemplate
    values: tuple[str, ...]
    key: tuple
    entry: "TemplateEntry | None" = None


@dataclass
class QueryOutcome:
    """Everything the service knows about one submission.

    This is the one result object of the unified prepare/bind/execute
    surface: ``submit``, ``submit_batch``, ``PreparedQuery.execute`` and
    ``CSQ.run`` all produce it, and :meth:`to_report` derives the
    figure-benchmark :class:`~repro.systems.base.SystemReport` view from
    it — including cache/template provenance (which cache level served
    the submission, which template the plan came from, which parameter
    values were bound).
    """

    query: BGPQuery
    attrs: tuple[str, ...]
    rows: set[tuple]
    plan: LogicalPlan
    report: ExecutionReport
    job_signature: str
    plan_cache_hit: bool
    result_cache_hit: bool
    coalesced: bool
    cacheable: bool
    timings: QueryTimings
    graph_version: int
    #: the submission bound new constants into a cached template
    #: (optimizer skipped; bound-plan cache missed)
    template_hit: bool = False
    #: short digest of the template signature ("" for uncacheable queries)
    template_digest: str = ""
    #: (parameter name, bound constant) pairs, in slot order
    parameters: tuple[tuple[str, str], ...] = ()
    #: id of this submission's trace in ``QueryService.trace_sink``
    #: ("" when tracing was off for the submission)
    trace_id: str = ""

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    @property
    def response_time(self) -> float:
        """Simulated cluster response time (not wall-clock)."""
        return self.report.response_time

    @property
    def num_jobs(self) -> int:
        return self.report.num_jobs

    @property
    def pwoc(self) -> bool:
        return self.job_signature == "M"

    @property
    def provenance(self) -> dict[str, object]:
        """Where this answer came from, for logging/tooling."""
        served_by = (
            "result-cache"
            if self.result_cache_hit
            else "plan-cache"
            if self.plan_cache_hit
            else "template"
            if self.template_hit
            else "optimizer"
        )
        return {
            "served_by": served_by,
            "template": self.template_digest,
            "parameters": self.parameters,
            "coalesced": self.coalesced,
            "graph_version": self.graph_version,
        }

    def to_report(self, system: str = "QueryService") -> SystemReport:
        return SystemReport(
            system=system,
            query_name=self.query.name or str(self.query),
            answers=self.rows,
            response_time=self.response_time,
            num_jobs=self.num_jobs,
            job_signature=self.job_signature,
            pwoc=self.pwoc,
            details={
                "plan": self.plan,
                "report": self.report,
                "outcome": self,
                "provenance": self.provenance,
            },
        )


class PreparedQuery:
    """A canonicalized-once, optimized-once handle on a query shape.

    Obtained from :meth:`QueryService.prepare`.  The query's liftable
    constants (and explicit ``$name`` placeholders) are parameters;
    :meth:`bind` supplies constants — positionally in query-text order,
    or by name — and :meth:`execute` runs a binding without ever
    re-entering the optimizer.  Lifted constants keep their original
    values as defaults, so ``prepare(q).execute()`` answers exactly like
    ``submit(q)``.
    """

    def __init__(
        self,
        service: "QueryService",
        template: QueryTemplate,
        entry: TemplateEntry,
        template_cache_hit: bool,
    ) -> None:
        self._service = service
        self.template = template
        self._entry = entry
        #: the template was already cached when this handle was prepared
        self.template_cache_hit = template_cache_hit

    # -- introspection -----------------------------------------------------

    @property
    def query(self) -> BGPQuery:
        """The source query this handle was prepared from."""
        return self.template.source

    @property
    def name(self) -> str:
        return self.template.source.name

    @property
    def params(self):
        """The template's parameter slots (canonical order)."""
        return self.template.params

    @property
    def param_names(self) -> tuple[str, ...]:
        """User-facing parameter names, in query-text occurrence order."""
        return self.template.param_names

    @property
    def signature(self) -> tuple:
        """The constant-independent template structure signature."""
        return self.template.signature

    def digest(self) -> str:
        return self.template.digest()

    @property
    def plan(self) -> LogicalPlan:
        """The template's cost-selected logical plan (placeholders)."""
        return self._entry.plan

    def __repr__(self) -> str:
        params = ", ".join(f"${n}" for n in self.param_names) or "no params"
        return (
            f"PreparedQuery({self.name or self.template.digest()}, {params})"
        )

    # -- the prepared surface ----------------------------------------------

    def bind(self, *args: str, **kwargs: str) -> "BoundQuery":
        """Bind constants to parameters; unbound lifted constants keep
        their original values.  Positional arguments follow query-text
        occurrence order; keywords use the parameter names (``$uni`` →
        ``uni=...``)."""
        names = self.param_names
        if len(args) > len(names):
            raise ValueError(
                f"{self!r} takes at most {len(names)} positional values, "
                f"got {len(args)}"
            )
        assigned: dict[str, str] = {}
        for name, value in zip(names, args):
            assigned[name] = value
        for name, value in kwargs.items():
            if name not in names:
                raise ValueError(
                    f"unknown parameter {name!r}; {self!r} has "
                    f"{', '.join(names) or 'none'}"
                )
            if name in assigned:
                raise ValueError(f"parameter {name!r} bound twice")
            assigned[name] = value
        values = list(self.template.default_values())
        for i, param in enumerate(self.template.params):
            if param.name in assigned:
                values[i] = assigned[param.name]
        checked = self.template.check_values(tuple(values))
        return BoundQuery(prepared=self, values=checked)

    def execute(self, *args: str, **kwargs: str) -> QueryOutcome:
        """``bind(...).execute()`` in one call."""
        return self.bind(*args, **kwargs).execute()

    def explain(self) -> str:
        """Template provenance plus the three-layer plan explanation."""
        t = self.template
        lines = [
            f"== template {t.digest()} "
            f"({len(t.params)} params; cached={self.template_cache_hit}) ==",
            str(t.query),
        ]
        for p in t.params:
            default = f" = {p.default}" if p.default is not None else ""
            lines.append(f"  {p.placeholder} <- ${p.name} [{p.kind}]{default}")
        store = self._service.store
        config = self._service.config
        sharded = isinstance(store, ShardedStore)
        backend = (
            config.backend
            if isinstance(config.backend, str)
            else type(config.backend).__name__
        )
        rpc = sharded and config.shard_transport == "rpc"
        lines.append(
            explain_plan(
                self._entry.plan,
                backend=backend,
                template=t.digest(),
                shard_map=store.node_shards if sharded else None,
                shard_triples=store.triples_per_shard() if sharded else None,
                transport=config.shard_transport if sharded else None,
                rows="columnar" if backend == "columnar" else "tuple",
                wire=config.wire_format if rpc else None,
                wire_bytes=self._service._last_wire_bytes if rpc else None,
            )
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class BoundQuery:
    """A prepared query with every parameter bound: ready to execute."""

    prepared: PreparedQuery
    #: constants in canonical slot order
    values: tuple[str, ...]

    @property
    def query(self) -> BGPQuery:
        """The fully-bound query, in the source query's variable space."""
        return self.prepared.template.bind_source(self.values)

    @property
    def parameters(self) -> tuple[tuple[str, str], ...]:
        return tuple(
            (p.name, v)
            for p, v in zip(self.prepared.template.params, self.values)
        )

    @property
    def instance_key(self) -> tuple:
        return self.prepared.template.instance_key(self.values)

    def execute(self) -> QueryOutcome:
        """Run through the service's caches; never re-optimizes."""
        return self.prepared._service._execute_bound(self)


class QueryService:
    """A concurrent, caching SPARQL-BGP query service over one store."""

    def __init__(self, graph: RDFGraph, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.graph = graph
        if self.config.shard_transport not in ("inproc", "rpc"):
            raise ValueError(
                f"unknown shard_transport {self.config.shard_transport!r}; "
                "expected 'inproc' or 'rpc'"
            )
        if self.config.shard_transport == "rpc" and not self.config.shards:
            raise ValueError(
                "shard_transport='rpc' requires shards >= 1 "
                "(the RPC boundary sits between router and shard workers)"
            )
        if self.config.wire_format not in WIRE_FORMATS:
            raise ValueError(
                f"unknown wire_format {self.config.wire_format!r}; "
                f"expected one of {WIRE_FORMATS}"
            )
        if self.config.rpc_pipeline < 0:
            raise ValueError(
                f"rpc_pipeline must be >= 0, got {self.config.rpc_pipeline}"
            )
        if self.config.coalesce_window_ms < 0:
            raise ValueError(
                "coalesce_window_ms must be >= 0, "
                f"got {self.config.coalesce_window_ms}"
            )
        if self.config.coalesce_max_batch < 1:
            raise ValueError(
                "coalesce_max_batch must be >= 1, "
                f"got {self.config.coalesce_max_batch}"
            )
        if self.config.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.config.slots}")
        if self.config.shards:
            # Sharded deployment: N shard workers each hold one slice of
            # the §5.1 layout; the global catalog is aggregated from the
            # shards' placement-disjoint local statistics.
            self.store = shard_graph(
                graph,
                self.config.num_nodes,
                self.config.shards,
                slots=self.config.slots,
            )
            self.catalog = self.store.aggregate_statistics()
            self.backend = None
            self.executor: PlanExecutor | ShardedPlanExecutor = (
                ShardedPlanExecutor(
                    self.store,
                    ClusterConfig(num_nodes=self.config.num_nodes),
                    self.config.params,
                    backend=self.config.backend,
                    backend_workers=self.config.backend_workers,
                    on_fallback=self._on_backend_fallback,
                    transport=self.config.shard_transport,
                    on_shard_failure=self._on_shard_failure,
                    wire_format=self.config.wire_format,
                    rpc_pipeline=self.config.rpc_pipeline,
                    coalesce_window_ms=self.config.coalesce_window_ms,
                    coalesce_max_batch=self.config.coalesce_max_batch,
                )
            )
        else:
            self.store = partition_graph(graph, self.config.num_nodes)
            self.catalog = CatalogStatistics.from_graph(graph)
            self.backend = make_backend(
                self.config.backend,
                num_workers=self.config.backend_workers,
                on_fallback=self._on_backend_fallback,
            )
            self.executor = PlanExecutor(
                self.store,
                ClusterConfig(num_nodes=self.config.num_nodes),
                self.config.params,
                backend=self.backend,
            )
        self.estimator = CardinalityEstimator(self.catalog)
        self.coster = PlanCoster(self.estimator, self.config.params)
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self.template_cache = TemplateCache(self.config.template_cache_size)
        self.result_cache = ResultCache(self.config.result_cache_size)
        self.stats = ServiceStats()
        #: the one metrics registry of the service: ServiceStats keeps
        #: its counters/histograms here, and render_prometheus() syncs
        #: transport gauges into it at scrape time.
        self.registry = self.stats.registry
        #: bounded retention of completed query traces (tracing config
        #: knob or explain_analyze); export via export_chrome_trace().
        self.trace_sink = TraceSink(
            max_traces=self.config.trace_max_traces,
            span_cap=self.config.trace_span_cap,
        )
        #: recent slow submissions (config.slow_query_s), oldest first.
        #: Advisory ring: appended per query, read racily by
        #: slow_queries() — deque append is atomic, never synchronized.
        self._slow_queries: deque = deque(maxlen=32)
        self._version = 0
        self._store_lock = _ReadWriteLock()
        self._flights_lock = checked(
            threading.Lock(), "QueryService._flights_lock"
        )
        self._flights: dict[tuple, _Flight] = {}  # guarded-by: _flights_lock
        self._template_flights: dict[tuple, _Flight] = {}  # guarded-by: _flights_lock
        self._pool_lock = checked(threading.Lock(), "QueryService._pool_lock")
        self._pool: ThreadPoolExecutor | None = None  # guarded-by: _pool_lock
        # Written only under _pool_lock; read lock-free in _check_open as
        # a monotonic False -> True latch (and under the lock in
        # _ensure_pool, which is why _check_open itself cannot lock).
        self._closed = False
        #: encoded request bytes of the most recent rpc-sharded query
        #: (sum over shards) — surfaced by EXPLAIN's wire line.  Advisory:
        #: written per query, read racily by EXPLAIN, never synchronized.
        self._last_wire_bytes: int | None = None
        self._inflight = (
            None
            if self.config.max_inflight is None
            else threading.Semaphore(self.config.max_inflight)
        )
        # Start process workers (if any) before serving threads exist:
        # fork-based pools must not be created from a multithreaded
        # batch submission mid-flight.  With shards, every shard's pool
        # is primed against its own snapshot slice.
        self.executor.prime()

    # -- lifecycle ---------------------------------------------------------

    def _on_backend_fallback(self, message: str) -> None:
        self.stats.record_warning(message)

    def _on_shard_failure(self, shard: int, message: str) -> None:
        """A shard worker died (or failed to respawn) under the RPC
        transport; surfaced through admission stats and warnings."""
        self.stats.record_shard_failure()
        self.stats.record_warning(f"shard {shard} worker failure: {message}")

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            # The executor owns the execution backend(s) — per-shard in
            # a sharded deployment — and closing is idempotent.
            self.executor.close()

    @property
    def sharded(self) -> bool:
        """Is the store sharded (``ServiceConfig.shards`` >= 1)?"""
        return isinstance(self.store, ShardedStore)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            self._check_open()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.max_workers,
                    thread_name_prefix="repro-service",
                )
            return self._pool

    # -- admission control -------------------------------------------------

    def _admit(self, permits: int = 1, submissions: int | None = None) -> None:
        """Reserve *permits* in-flight slots or reject the submission.

        Non-blocking: when fewer than *permits* slots are free the
        whole reservation rolls back and :class:`ServiceOverloaded` is
        raised (a batch is admitted or rejected as a unit).
        ``submissions`` is what the rejection counter records — for a
        batch, its member count rather than its (clamped) permit count.
        """
        sem = self._inflight
        if sem is None or permits <= 0:
            return
        acquired = 0
        for _ in range(permits):
            if sem.acquire(blocking=False):
                acquired += 1
                continue
            for _ in range(acquired):
                sem.release()
            self.stats.record_rejection(
                permits if submissions is None else submissions
            )
            raise ServiceOverloaded(
                f"service is at max_inflight={self.config.max_inflight}; "
                f"rejected {submissions or permits} submission(s)"
            )

    def _release(self, permits: int = 1) -> None:
        sem = self._inflight
        if sem is None:
            return
        for _ in range(permits):
            sem.release()

    # -- reusable planning/execution steps (uncached) ----------------------

    def optimize(self, query: BGPQuery) -> tuple[LogicalPlan, OptimizerResult]:
        """CliqueSquare plans + cost-based selection of the best one."""
        result = cliquesquare(
            query,
            self.config.option,
            max_plans=self.config.max_plans,
            timeout_s=self.config.timeout_s,
        )
        if not result.plans:
            raise ValueError(
                f"{self.config.option} produced no plan for {query.name or query}"
            )
        best, _ = select_best_plan(result.unique_plans(), self.coster)
        from repro.analysis.plan_check import check_plan_space, plans_checked

        if plans_checked():
            # Opt-in invariant mode: the retained space must still hold
            # a height-optimal plan (HO-partiality survives max_plans
            # truncation); the chosen plan itself is checked in prepare.
            check_plan_space(query, result)
        return best, result

    # -- the prepared-query surface ----------------------------------------

    def prepare(
        self, query: BGPQuery | str | LogicalPlan, name: str = ""
    ) -> "PreparedQuery | PreparedPlan":
        """Prepare a query once: canonicalize, extract its parameter
        template, optimize (or fetch the cached template), and return a
        :class:`PreparedQuery` to bind and execute many times.

        Constants already in the query become parameters with those
        constants as defaults; explicit ``$name`` placeholders become
        required parameters.  Raises
        :class:`~repro.sparql.canonical.CanonicalizationBudgetExceeded`
        for pathologically symmetric queries (serve those via
        :meth:`submit`, which falls back to an uncached path).

        Passing a :class:`~repro.core.logical.LogicalPlan` is the
        deprecated pre-template behaviour (translate+compile only) and
        returns a raw :class:`~repro.physical.executor.PreparedPlan`.
        """
        self._check_open()
        if isinstance(query, LogicalPlan):
            _warnings.warn(
                "QueryService.prepare(plan) is deprecated; use "
                "prepare(query) -> PreparedQuery, or executor.prepare(plan) "
                "for raw logical plans",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.executor.prepare(query)
        parsed = self._parse(query, name)
        template = self._extract(parsed)
        entry, hit = self._template_entry(template)
        return PreparedQuery(
            service=self,
            template=template,
            entry=entry,
            template_cache_hit=hit,
        )

    def explain(self, query: BGPQuery | str, name: str = "") -> str:
        """Template signature + three-layer plan explanation of *query*."""
        prepared = self.prepare(query, name)
        assert isinstance(prepared, PreparedQuery)
        return prepared.explain()

    # -- legacy plan-level escape hatches ----------------------------------

    def execute_plan(self, plan: LogicalPlan) -> ExecutionResult:
        """Run an arbitrary logical plan under the store's read lock.

        Low-level escape hatch for hand-built plans (figure baselines);
        queries should go through prepare/bind/execute or submit.
        """
        return self.execute_prepared(self.executor.prepare(plan))

    def execute_prepared(self, prepared: PreparedPlan) -> ExecutionResult:
        """Run an already-prepared plan under the store's read lock."""
        with self._store_lock.read():
            return self.executor.execute_prepared(prepared)

    # -- mutation ----------------------------------------------------------

    @property
    def graph_version(self) -> int:
        return self._version

    def add_triples(self, triples) -> int:
        """Add triples to the live graph; returns the number of new ones.

        Bumps the graph version (lazily invalidating every cached
        result), maintains catalog statistics *incrementally* — the
        catalog is copied once per batch and a per-triple delta applied
        for each genuinely new triple, O(batch + |P|) instead of the
        former O(|G|) full recompute — and, if configured, drops cached
        plans so later queries re-optimize against the new statistics.
        """
        self._check_open()
        with self._store_lock.write():
            added = 0
            catalog: CatalogStatistics | None = None
            try:
                for triple in triples:
                    s, p, o = triple
                    # The delta must be probed before insertion (it asks
                    # "is this value new?"); None means the triple is
                    # already present and the graph won't change.
                    delta = triple_delta(self.graph, s, p, o)
                    if delta is None:
                        continue
                    self.graph.add(s, p, o)
                    if catalog is None:
                        catalog = self.catalog.copy()
                    catalog.apply_delta(delta)
                    self.store.add((s, p, o))
                    added += 1
            finally:
                # Even if a later triple is rejected mid-batch, whatever
                # was applied must invalidate cached results and refresh
                # the statistics — otherwise stale answers keep serving.
                if added:
                    self._version += 1
                    # Swap in a fresh catalog/estimator/coster trio
                    # rather than mutating in place: an optimize() racing
                    # this mutation keeps its consistent pre-mutation
                    # view and writes its memoized cardinalities into the
                    # discarded estimator, not the new one.
                    assert catalog is not None
                    self.catalog = catalog
                    self.estimator = CardinalityEstimator(self.catalog)
                    self.coster = PlanCoster(self.estimator, self.config.params)
                    if self.config.invalidate_plans_on_mutation:
                        # The optimizer's output lives in the template
                        # cache; bound instances in the plan cache.  Both
                        # must go for later queries to re-optimize
                        # against the new statistics.
                        self.template_cache.clear()
                        self.plan_cache.clear()
                    self.stats.record_mutation()
                    # Rebuild process worker pools now, while the write
                    # lock quiesces every query thread: a fork-based pool
                    # must not be (re)created mid-batch from a pool
                    # thread, and the workers' store snapshot is stale
                    # anyway.  Sharded stores rebuild only the pools of
                    # shards the batch actually touched (snapshot tokens
                    # are per shard).
                    self.executor.prime()
        return added

    # -- topology ----------------------------------------------------------

    def rebalance(
        self,
        target_shards: int | None = None,
        moves: "Sequence[tuple[int, int, int]] | None" = None,
    ):
        """Move shard ownership live: grow, shrink, or shed skew.

        Requires a sharded deployment.  Pass *target_shards* for a
        minimal resize plan, or explicit ``(slot, src, dst)`` *moves*
        (e.g. from :meth:`suggest_rebalance`).  The migration runs
        under the store's **write lock**: in-flight queries against the
        old epoch drain first, queries submitted meanwhile block, and
        both resume against the flipped table — answers are identical
        before, during and after.  Over the RPC transport only the
        moved slots' snapshot slices cross the wire; a mid-migration
        failure rolls the store back and raises typed, leaving the old
        topology serving.  Returns a
        :class:`~repro.cluster.router.RebalanceReport`.
        """
        self._check_open()
        if not isinstance(self.executor, ShardedPlanExecutor):
            raise ValueError(
                "rebalance requires a sharded deployment "
                "(ServiceConfig(shards=N))"
            )
        started = time.perf_counter()
        if not self.config.tracing:
            report = self._rebalance_locked(target_shards, moves)
        else:
            ref = self.trace_sink.start_trace("rebalance", epoch=started)
            try:
                with activate(ref):
                    report = self._rebalance_locked(target_shards, moves)
            finally:
                self.trace_sink.finish_trace(
                    ref.trace_id, time.perf_counter() - started
                )
        phases = {
            "plan": report.slots_moved,
            "prime": sum(
                1
                for _slot, _src, dst in report.moves
                if dst >= report.old_shards
            ),
            "delta": sum(
                1
                for _slot, _src, dst in report.moves
                if dst < report.old_shards
            ),
            "flip": report.slots_moved if report.new_epoch > report.old_epoch else 0,
        }
        self.stats.record_rebalance(phases)
        return report

    def _rebalance_locked(self, target_shards, moves):
        # Acquiring the write lock *is* the drain: it blocks until
        # every in-flight query (a reader) finishes and holds new ones
        # out until the table has flipped.
        with span("rebalance:drain"):
            lock = self._store_lock.write()
            lock.__enter__()
        try:
            with span(
                "rebalance:migrate",
                target_shards=target_shards if target_shards is not None else -1,
            ):
                return self.executor.rebalance(target_shards, moves)
        finally:
            lock.__exit__(None, None, None)

    def suggest_rebalance(self, max_moves: int = 1):
        """A skew-shedding plan from live worker load, or ``()``.

        Feeds the RPC shard workers' ``tasks_run`` gauges (PR 9
        telemetry) into :func:`~repro.cluster.slots.plan_skew`; without
        live gauges (inproc transport, cold fleet) it falls back to
        stored triples per shard.  The plan is advice — pass it to
        :meth:`rebalance` to act on it.
        """
        self._check_open()
        if not isinstance(self.executor, ShardedPlanExecutor):
            raise ValueError(
                "suggest_rebalance requires a sharded deployment "
                "(ServiceConfig(shards=N))"
            )
        load: dict[int, float] = {}
        for gauge in self._shard_worker_gauges():
            if not gauge.stale:
                load[gauge.shard] = float(gauge.tasks_run)
        return self.executor.suggest_rebalance(
            load=load or None, max_moves=max_moves
        )

    # -- serving -----------------------------------------------------------

    def submit(self, query: BGPQuery | str, name: str = "") -> QueryOutcome:
        """Answer one fully-bound query (prepare → bind → execute).

        Raises :class:`ServiceOverloaded` without doing any work when
        the service is already at ``max_inflight`` submissions.
        """
        self._check_open()
        started = time.perf_counter()
        parsed = self._parse(query, name)
        parsed_at = time.perf_counter()
        self._reject_unbound(parsed)
        self._admit()
        try:
            return self._submit_parsed(parsed, started, parsed_at=parsed_at)
        finally:
            self._release()

    def _submit_parsed(
        self,
        parsed: BGPQuery,
        started: float,
        parsed_at: float | None = None,
        force_trace: bool = False,
    ) -> QueryOutcome:
        """Serve an already-parsed, admitted query.

        When tracing is on (config or *force_trace*), a trace rooted at
        *started* is opened around the whole submission: the root is
        installed as the active contextvar span, so every stage below —
        down to RPC frames and shard-worker spans — lands in it, and
        the root's duration is closed from the authoritative wall-clock
        total.  Batch pool threads call this too; each call gets its
        own trace (the contextvar is per-thread/context).
        """
        if not (force_trace or self.config.tracing):
            return self._serve_parsed(parsed, started)
        ref = self.trace_sink.start_trace(parsed.name or "query", epoch=started)
        if parsed_at is not None:
            record_remote(ref.ctx(), "parse", started, parsed_at)
        try:
            with activate(ref):
                return self._serve_parsed(parsed, started)
        finally:
            self.trace_sink.finish_trace(
                ref.trace_id, time.perf_counter() - started
            )

    def _serve_parsed(self, parsed: BGPQuery, started: float) -> QueryOutcome:
        try:
            t0 = time.perf_counter()
            inst = self._instantiate(parsed)
            canonicalize_s = time.perf_counter() - t0
        except CanonicalizationBudgetExceeded:
            return self._submit_uncacheable(parsed, started)
        record_remote(trace_ctx(), "canonicalize", t0, time.perf_counter())
        answer, coalesced = self._resolve(inst)
        outcome = self._project(parsed, inst, answer, coalesced, started)
        outcome.timings = replace(outcome.timings, canonicalize_s=canonicalize_s)
        self._record(outcome, coalesced)
        return outcome

    def _parse(self, query: BGPQuery | str, name: str = "") -> BGPQuery:
        """Parse a query string; every failure surfaces as a
        :class:`~repro.sparql.parser.SparqlSyntaxError` carrying the
        query *name*, and is recorded as a service error."""
        if isinstance(query, BGPQuery):
            return query
        try:
            return parse_query(query, name)
        except SparqlSyntaxError:
            self.stats.record_error()
            raise
        except ValueError as exc:
            self.stats.record_error()
            raise SparqlSyntaxError(str(exc), name=name) from exc

    def _reject_unbound(self, parsed: BGPQuery) -> None:
        unbound = parsed.placeholders()
        if unbound:
            self.stats.record_error()
            raise ValueError(
                f"query {parsed.name or parsed} has unbound parameters "
                f"{', '.join(unbound)}; prepare() it and bind them"
            )

    def _extract(self, parsed: BGPQuery) -> QueryTemplate:
        return extract_template(
            parsed,
            self.config.canonical_budget,
            lift_constants=self.config.enable_templates,
        )

    def _instantiate(self, parsed: BGPQuery) -> _Instance:
        """Template + default binding vector for a fully-bound query."""
        template = self._extract(parsed)
        values = template.check_values(template.default_values())
        return _Instance(
            template=template,
            values=values,
            key=template.instance_key(values),
        )

    def _record(self, outcome: QueryOutcome, coalesced: bool) -> None:
        if outcome.report.shard_bytes is not None:
            self._last_wire_bytes = sum(outcome.report.shard_bytes)
        self.stats.record_query(
            outcome.timings,
            plan_hit=outcome.plan_cache_hit,
            result_hit=outcome.result_cache_hit,
            template_hit=outcome.template_hit,
            coalesced=coalesced,
        )
        self._note_slow(outcome)

    def _note_slow(self, outcome: QueryOutcome) -> None:
        limit = self.config.slow_query_s
        if limit is None or outcome.timings.total_s < limit:
            return
        self._slow_queries.append(
            {
                "query": outcome.query.name or str(outcome.query),
                "total_s": outcome.timings.total_s,
                "execute_s": outcome.timings.execute_s,
                "rows": len(outcome.rows),
                "served_by": outcome.provenance["served_by"],
                "trace_id": outcome.trace_id,
            }
        )

    def _execute_bound(self, bound: "BoundQuery") -> QueryOutcome:
        """Serve a :class:`BoundQuery` (extraction already paid)."""
        self._check_open()
        started = time.perf_counter()
        inst = _Instance(
            template=bound.prepared.template,
            values=bound.values,
            key=bound.instance_key,
            entry=bound.prepared._entry,
        )
        self._admit()
        ref = (
            self.trace_sink.start_trace(
                bound.query.name or "prepared", epoch=started
            )
            if self.config.tracing
            else None
        )
        try:
            with activate(ref):
                answer, coalesced = self._resolve(inst)
                outcome = self._project(
                    bound.query, inst, answer, coalesced, started
                )
        finally:
            self._release()
            if ref is not None:
                self.trace_sink.finish_trace(
                    ref.trace_id, time.perf_counter() - started
                )
        self._record(outcome, coalesced)
        return outcome

    def submit_batch(
        self, queries, *, dedup: bool = True, return_exceptions: bool = False
    ) -> list[QueryOutcome | BaseException]:
        """Answer many independent queries, concurrently.

        With ``dedup`` (the default), queries sharing an instance key
        (same template, same constants) are *coalesced*: each distinct
        instance binds and executes once and every duplicate reuses the
        answer; queries sharing only a *template* (same shape, different
        constants) still single-flight the optimizer — on a repeated
        workload mix a batch therefore does strictly less work than
        submitting its members one by one.

        Queries are independent, so with ``return_exceptions`` a failing
        member (parse error, planning error) yields its exception object
        in the result list instead of aborting the rest of the batch; by
        default the first failure propagates.

        Admission control treats the batch as one unit: it reserves one
        in-flight slot per member — capped at ``max_inflight``, so a
        batch larger than the limit is still admissible on an otherwise
        idle service (its internal thread pool bounds true concurrency
        anyway) — or the whole batch is rejected with
        :class:`ServiceOverloaded` (which always propagates —
        ``return_exceptions`` covers per-query failures, not refusal to
        start).

        Batch timings measure submission-to-availability: each member's
        ``total_s`` starts when the batch is submitted.
        """
        batch_started = time.perf_counter()
        items: list[BGPQuery | BaseException] = []
        for q in queries:
            try:
                parsed = self._parse(q)
                self._reject_unbound(parsed)
                items.append(parsed)
            except ValueError as exc:
                if not return_exceptions:
                    raise
                items.append(exc)
        if not items:
            return []
        members = sum(1 for it in items if not isinstance(it, BaseException))
        permits = members
        if self.config.max_inflight is not None and members:
            # Cap at the limit so an oversized batch stays admissible on
            # an idle service, but never below one slot — max_inflight=0
            # must still reject.
            permits = max(1, min(members, self.config.max_inflight))
        self._admit(permits, submissions=members)
        try:
            return self._run_batch(
                items, batch_started, dedup=dedup,
                return_exceptions=return_exceptions,
            )
        finally:
            self._release(permits)

    def _run_batch(
        self,
        items: list,
        batch_started: float,
        *,
        dedup: bool,
        return_exceptions: bool,
    ) -> list:
        """Execute an admitted batch (see :meth:`submit_batch`)."""
        if len(items) == 1:
            only = items[0]
            if isinstance(only, BaseException):
                return [only]
            try:
                return [self._submit_parsed(only, batch_started)]
            except Exception as exc:
                if not return_exceptions:
                    raise
                return [exc]
        pool = self._ensure_pool()
        if not dedup:
            futures = [
                None
                if isinstance(it, BaseException)
                else pool.submit(self._submit_parsed, it, batch_started)
                for it in items
            ]
            outcomes: list[QueryOutcome | BaseException] = []
            for item, future in zip(items, futures):
                if future is None:
                    outcomes.append(item)
                    continue
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    if not return_exceptions:
                        raise
                    outcomes.append(exc)
            return outcomes
        #: per member: ("err", exc) | ("unc", future) | ("ok", query, inst, canon_s)
        entries: list[tuple] = []
        flights: dict[tuple, object] = {}
        for item in items:
            if isinstance(item, BaseException):
                entries.append(("err", item))
                continue
            t0 = time.perf_counter()
            try:
                inst = self._instantiate(item)
            except CanonicalizationBudgetExceeded:
                entries.append(
                    ("unc", pool.submit(self._submit_uncacheable, item, batch_started))
                )
                continue
            entries.append(("ok", item, inst, time.perf_counter() - t0))
            if inst.key not in flights:
                flights[inst.key] = pool.submit(self._resolve, inst)
        outcomes = []
        leaders: set[tuple] = set()
        for entry in entries:
            if entry[0] == "err":
                outcomes.append(entry[1])
                continue
            if entry[0] == "unc":
                try:
                    outcomes.append(entry[1].result())
                except Exception as exc:
                    # _submit_uncacheable already recorded the error.
                    if not return_exceptions:
                        raise
                    outcomes.append(exc)
                continue
            _, query, inst, canonicalize_s = entry
            try:
                answer, coalesced = flights[inst.key].result()
            except Exception as exc:
                # The flight leader already recorded the error.
                if not return_exceptions:
                    raise
                outcomes.append(exc)
                continue
            coalesced = coalesced or inst.key in leaders
            leaders.add(inst.key)
            outcome = self._project(query, inst, answer, coalesced, batch_started)
            outcome.timings = replace(
                outcome.timings, canonicalize_s=canonicalize_s
            )
            self._record(outcome, coalesced)
            outcomes.append(outcome)
        return outcomes

    def snapshot_stats(self) -> StatsSnapshot:
        return self.stats.snapshot(
            self._version,
            templates_cached=len(self.template_cache),
            shard_workers=self._shard_worker_gauges(),
        )

    def _shard_worker_gauges(self) -> tuple[ShardWorkerGauge, ...]:
        """Load gauges of the RPC shard workers (best-effort: a shard
        never spawned or already reaped is absent; a worker whose probe
        failed mid-flight — dead, mid-respawn — surfaces as a *stale*
        gauge rather than silently disappearing or raising)."""
        if self.config.shard_transport != "rpc" or not self.config.shards:
            return ()
        try:
            probes = self.executor.router.worker_gauges()  # type: ignore[union-attr]
        except Exception:
            return ()
        gauges = []
        for shard, reply in probes:
            if reply is None:
                gauges.append(
                    ShardWorkerGauge(
                        shard=shard,
                        inflight=0,
                        queue_depth=0,
                        max_concurrency=0,
                        peak_inflight=0,
                        tasks_run=0,
                        batches=0,
                        deduped=0,
                        stale=True,
                    )
                )
                continue
            gauges.append(
                ShardWorkerGauge(
                    shard=shard,
                    inflight=reply.inflight,
                    queue_depth=reply.queue_depth,
                    max_concurrency=reply.pipeline,
                    peak_inflight=reply.peak_inflight,
                    tasks_run=reply.tasks_run,
                    batches=reply.batches,
                    deduped=reply.deduped,
                )
            )
        return tuple(gauges)

    # -- observability surfaces --------------------------------------------

    def explain_analyze(self, query: BGPQuery | str, name: str = "") -> str:
        """Run *query* with tracing forced on; render plan + span tree.

        The EXPLAIN section shows what the optimizer chose; the trace
        section shows where the wall-clock actually went — driver
        stages (parse/canonicalize/optimize/bind/execute), engine
        levels, and (under the rpc transport) per-shard RPC spans with
        the workers' own queue-wait/lock-wait/bind/execute/encode
        breakdown shipped back on the replies.  The trace stays in
        ``trace_sink`` for :meth:`export_chrome_trace`.
        """
        self._check_open()
        started = time.perf_counter()
        parsed = self._parse(query, name)
        parsed_at = time.perf_counter()
        self._reject_unbound(parsed)
        self._admit()
        try:
            outcome = self._submit_parsed(
                parsed, started, parsed_at=parsed_at, force_trace=True
            )
        finally:
            self._release()
        sections = [self.explain(parsed)]
        trace = self.trace_sink.get(outcome.trace_id)
        if trace is not None:
            sections.append(f"== trace {trace.trace_id} ==\n{trace.render()}")
        return "\n\n".join(sections)

    def trace(self, outcome: QueryOutcome) -> Trace | None:
        """The recorded span tree of *outcome* — None when tracing was
        off for the submission or the sink has since evicted it."""
        if not outcome.trace_id:
            return None
        return self.trace_sink.get(outcome.trace_id)

    def export_chrome_trace(
        self, path: str, trace_ids: "list[str] | None" = None
    ) -> int:
        """Write retained traces (default: all) as Chrome trace-event
        JSON for chrome://tracing / ui.perfetto.dev; returns the event
        count written."""
        return self.trace_sink.export_chrome_trace(path, trace_ids)

    def slow_queries(self) -> list[dict]:
        """The most recent submissions at or over
        ``ServiceConfig.slow_query_s`` (bounded ring, oldest first)."""
        return list(self._slow_queries)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the service's registry.

        Service counters and latency histograms are recorded on the hot
        path; transport-side gauges (shard worker load, driver wire
        counters, trace retention) are synced in here, at scrape time,
        so frames never pay a registry write.
        """
        self._sync_transport_metrics()
        return self.registry.render_prometheus()

    def _sync_transport_metrics(self) -> None:
        registry = self.registry
        registry.gauge(
            "repro_traces_retained", "Completed traces held by the sink."
        ).set(len(self.trace_sink.trace_ids()))
        caches = registry.gauge(
            "repro_cache_entries",
            "Entries per service cache.",
            labels=("cache",),
        )
        caches.labels(cache="plan").set(len(self.plan_cache))
        caches.labels(cache="template").set(len(self.template_cache))
        caches.labels(cache="result").set(len(self.result_cache))
        workers = self._shard_worker_gauges()
        if not workers:
            return
        fields = registry.gauge(
            "repro_shard_worker",
            "Point-in-time RPC shard worker load (stale=1: probe failed).",
            labels=("shard", "field"),
        )
        for g in workers:
            shard = str(g.shard)
            fields.labels(shard=shard, field="stale").set(1.0 if g.stale else 0.0)
            if g.stale:
                continue
            for name, value in (
                ("inflight", g.inflight),
                ("queue_depth", g.queue_depth),
                ("max_concurrency", g.max_concurrency),
                ("peak_inflight", g.peak_inflight),
                ("tasks_run", g.tasks_run),
                ("batches", g.batches),
                ("deduped", g.deduped),
            ):
                fields.labels(shard=shard, field=name).set(float(value))
        try:
            wire = self.executor.router.wire_stats()  # type: ignore[union-attr]
        except Exception:
            return
        link = registry.gauge(
            "repro_shard_wire",
            "Driver-side transport counters per shard connection.",
            labels=("shard", "field"),
        )
        for shard, stats in wire:
            for name, value in stats.items():
                link.labels(shard=str(shard), field=name).set(float(value))

    # -- internals ---------------------------------------------------------

    def _single_flight(
        self, flights: dict, key, compute, on_error=None
    ) -> tuple[object, bool]:
        """Run *compute* once per concurrent *key*: the first caller
        computes, the rest wait and share the value (or the raised
        error).  Returns ``(value, reused)``; ``reused`` is True for
        waiters."""
        with self._flights_lock:
            flight = flights.get(key)
            leader = flight is None
            if leader:
                flight = flights[key] = _Flight()
        if not leader:
            with span("flight_wait"):
                flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, True
        try:
            value = compute()
            flight.value = value
            return value, False
        except BaseException as exc:
            flight.error = exc
            if on_error is not None:
                on_error()
            raise
        finally:
            with self._flights_lock:
                flights.pop(key, None)
            flight.done.set()

    def _resolve(self, inst: _Instance) -> tuple[_Answer, bool]:
        """Answer a bound instance, via caches and single-flight."""
        while True:
            entry = self.result_cache.get_current(inst.key, self._version)
            if entry is not None:
                return (
                    _Answer(
                        attrs=entry.attrs,
                        rows=entry.rows,
                        plan=entry.plan,
                        report=entry.report,
                        job_signature=entry.job_signature,
                        plan_hit=True,
                        template_hit=False,
                        result_hit=True,
                        optimize_s=0.0,
                        execute_s=0.0,
                        bind_s=0.0,
                        version=entry.version,
                    ),
                    False,
                )
            answer, reused = self._single_flight(
                self._flights,  # lint: disable=LOCK001 — reference only; _single_flight mutates it under _flights_lock
                inst.key,
                lambda: self._compute(inst),
                on_error=self.stats.record_error,
            )
            assert isinstance(answer, _Answer)
            if reused and answer.version != self._version:
                # The flight predates a mutation that committed after we
                # joined; its rows are stale for us. Recompute at the
                # current version instead of serving them.
                continue
            return answer, reused

    def _template_entry(
        self, template: QueryTemplate, seed: TemplateEntry | None = None
    ) -> tuple[TemplateEntry, bool]:
        """The optimized-once entry for *template* (single-flight).

        Returns ``(entry, hit)``; ``hit`` is True when the caller did
        not pay for the optimization (cache hit, another thread's
        in-flight optimization, or a caller-held *seed* entry from a
        live PreparedQuery whose template the cache has since dropped —
        the seed is used directly, without resurrecting it into the
        shared cache, so mutation-triggered invalidation stays
        effective for everyone else).
        """
        entry = self.template_cache.get(template.signature)
        if entry is not None:
            return entry, True
        if seed is not None:
            return seed, True

        def build() -> TemplateEntry:
            built = self._build_template_entry(template)
            self.template_cache.put(template.signature, built)
            return built

        entry, reused = self._single_flight(
            self._template_flights,  # lint: disable=LOCK001 — reference only; _single_flight mutates it under _flights_lock
            template.signature,
            build,
        )
        assert isinstance(entry, TemplateEntry)
        return entry, reused

    def _build_template_entry(self, template: QueryTemplate) -> TemplateEntry:
        """Optimize a template once and prepare its parameterized plan.

        Plan selection *sniffs* the extracting query's own constants
        (classical prepared-statement parameter sniffing): the optimizer
        and cost model see exactly the query that would have been
        optimized without templates, and the chosen plan is then lifted
        back to placeholder form.  When sniffing is impossible (explicit
        placeholders without defaults, or constant-collapsed duplicate
        patterns) the template itself is optimized, costing placeholders
        like average-selectivity constants.
        """
        self.stats.record_optimizer_run()
        t0 = time.perf_counter()
        defaults = template.default_values()
        plan: LogicalPlan | None = None
        if template.arity and all(v is not None for v in defaults):
            values = tuple(defaults)  # type: ignore[arg-type]
            bound_query = template.bind_canonical(values)
            # Bound pattern -> template pattern, to lift the chosen plan
            # back to placeholder form.  Binding may collapse two
            # distinct template patterns into one (duplicate patterns
            # modulo constants) — the optimizer would then plan only one
            # of them, so fall back to optimizing the template directly.
            pairs: dict = {}
            collapse = False
            for btp, ttp in zip(bound_query.patterns, template.query.patterns):
                if btp in pairs and pairs[btp] != ttp:
                    collapse = True
                    break
                pairs.setdefault(btp, ttp)
            if not collapse:
                bound_plan, optimizer = self.optimize(bound_query)
                plan = LogicalPlan(
                    root=rewrite_patterns(
                        bound_plan.root, lambda tp: pairs[tp]
                    ),
                    query=template.query,
                )
        if plan is None:
            plan, optimizer = self.optimize(template.query)
        prepared = self.executor.prepare(plan)
        if isinstance(self.executor, ShardedPlanExecutor):
            # Ship the template's job structure to every shard once;
            # each query afterwards sends only its binding-substituted
            # task specs (the snapshot already lives in the shard pools).
            self.executor.register_template(prepared)
        optimize_s = time.perf_counter() - t0
        record_remote(
            trace_ctx(),
            "optimize",
            t0,
            time.perf_counter(),
            plans=optimizer.plan_count,
            truncated=optimizer.truncated,
        )
        return TemplateEntry(
            template=template,
            plan=plan,
            prepared=prepared,
            optimize_s=optimize_s,
            plan_count=optimizer.plan_count,
            truncated=optimizer.truncated,
        )

    def _compute(self, inst: _Instance) -> _Answer:
        entry = self.plan_cache.get(inst.key)
        plan_hit = entry is not None
        template_hit = False
        optimize_s = 0.0
        bind_s = 0.0
        if entry is None:
            tentry, template_hit = self._template_entry(
                inst.template, inst.entry
            )
            t0 = time.perf_counter()
            with span("bind", template_hit=template_hit):
                prepared = tentry.prepared.bind(
                    inst.template.substitution(inst.values)
                )
            bind_s = time.perf_counter() - t0
            if not template_hit:
                optimize_s = tentry.optimize_s
            entry = PlanEntry(
                plan=prepared.plan,
                prepared=prepared,
                optimize_s=optimize_s,
                plan_count=tentry.plan_count,
                truncated=tentry.truncated,
            )
            self.plan_cache.put(inst.key, entry)
        t0 = time.perf_counter()
        with self._store_lock.read():
            version = self._version
            with span("execute", plan_hit=plan_hit):
                result = self.executor.execute_prepared(entry.prepared)
        execute_s = time.perf_counter() - t0
        answer = _Answer(
            attrs=result.attrs,
            rows=frozenset(result.rows),
            plan=entry.plan,
            report=result.report,
            job_signature=result.job_signature(),
            plan_hit=plan_hit,
            template_hit=template_hit,
            result_hit=False,
            optimize_s=optimize_s,
            execute_s=execute_s,
            bind_s=bind_s,
            version=version,
        )
        self.result_cache.put(
            inst.key,
            ResultEntry(
                version=version,
                attrs=answer.attrs,
                rows=answer.rows,
                plan=answer.plan,
                report=answer.report,
                job_signature=answer.job_signature,
            ),
        )
        return answer

    def _project(
        self,
        query: BGPQuery,
        inst: _Instance,
        answer: _Answer,
        coalesced: bool,
        started: float,
    ) -> QueryOutcome:
        """Map a canonical-space answer back onto *query*'s variables."""
        mapping = inst.template.mapping
        wanted = [mapping[v] for v in query.distinguished]
        index = [answer.attrs.index(c) for c in wanted]
        if index == list(range(len(answer.attrs))):
            rows = set(answer.rows)
        else:
            rows = {tuple(row[i] for i in index) for row in answer.rows}
        total_s = time.perf_counter() - started
        ref = current_ref()
        return QueryOutcome(
            query=query,
            attrs=tuple(query.distinguished),
            rows=rows,
            plan=answer.plan,
            report=answer.report,
            job_signature=answer.job_signature,
            plan_cache_hit=answer.plan_hit,
            result_cache_hit=answer.result_hit,
            coalesced=coalesced,
            cacheable=True,
            timings=QueryTimings(
                optimize_s=answer.optimize_s,
                execute_s=answer.execute_s,
                bind_s=answer.bind_s,
                total_s=total_s,
            ),
            graph_version=answer.version,
            template_hit=answer.template_hit,
            template_digest=inst.template.digest(),
            parameters=tuple(
                (p.name, v)
                for p, v in zip(inst.template.params, inst.values)
            ),
            trace_id="" if ref is None else ref.trace_id,
        )

    def _submit_uncacheable(
        self, query: BGPQuery, started: float
    ) -> QueryOutcome:
        """Serve a query the canonicalizer gave up on, bypassing caches."""
        self.stats.record_optimizer_run()
        t0 = time.perf_counter()
        try:
            with span("optimize", cacheable=False):
                plan, _ = self.optimize(query)
                prepared = self.executor.prepare(plan)
        except Exception:
            self.stats.record_error()
            raise
        optimize_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        with self._store_lock.read():
            version = self._version
            with span("execute"):
                result = self.executor.execute_prepared(prepared)
        execute_s = time.perf_counter() - t0
        timings = QueryTimings(
            optimize_s=optimize_s,
            execute_s=execute_s,
            total_s=time.perf_counter() - started,
        )
        self.stats.record_query(timings, plan_hit=False, result_hit=False)
        ref = current_ref()
        outcome = QueryOutcome(
            query=query,
            attrs=result.attrs,
            rows=set(result.rows),
            plan=plan,
            report=result.report,
            job_signature=result.job_signature(),
            plan_cache_hit=False,
            result_cache_hit=False,
            coalesced=False,
            cacheable=False,
            timings=timings,
            graph_version=version,
            trace_id="" if ref is None else ref.trace_id,
        )
        self._note_slow(outcome)
        return outcome
