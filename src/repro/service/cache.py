"""Template, plan and result caches for the query service.

The caches form a hierarchy keyed on canonical forms from
:mod:`repro.sparql.canonical`:

* :class:`TemplateCache` — keyed on the *constant-independent* template
  signature — memoizes the expensive optimizer pipeline once per query
  *structure*: the parameterized logical plan together with its prepared
  (translated + compiled) template form.  Every query that differs only
  in constants binds into this one entry without re-optimizing.
* :class:`PlanCache` — keyed on the *instance key* (template signature +
  binding vector) — memoizes fully-bound prepared plans, skipping even
  the (cheap) bind/recompile step for repeated identical queries.
  Plans stay *correct* across data mutations (they encode only query
  structure; scans read live store state), so both plan-level caches
  survive graph updates — though the cached choice may drift from
  cost-optimal as statistics move.
* :class:`ResultCache` — keyed on the instance key — memoizes answers of
  fully-bound queries.  Answers are stale the moment the graph changes,
  so every entry records the graph version it was computed at and is
  dropped on version mismatch.

All are LRU with O(1) operations and are safe for concurrent use.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

from repro.analysis.locks import checked
from repro.core.logical import LogicalPlan
from repro.mapreduce.counters import ExecutionReport
from repro.physical.executor import PreparedPlan
from repro.sparql.canonical import QueryTemplate

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A thread-safe LRU mapping.  ``maxsize=None`` means unbounded."""

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be None or >= 0")
        self.maxsize = maxsize
        self._lock = checked(threading.Lock(), "LRUCache._lock")
        self._data: OrderedDict[K, V] = OrderedDict()  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    def get(self, key: K) -> V | None:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def discard(self, key: K) -> None:
        with self._lock:
            self._data.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0


@dataclass
class PlanEntry:
    """One memoized optimizer outcome (for the canonical query).

    Only the chosen plan and its prepared form are pinned — never the
    optimizer's full plan list (up to ``max_plans`` per shape), which
    would grow the cache without bound for no reader.
    """

    plan: LogicalPlan
    prepared: PreparedPlan
    optimize_s: float
    #: summary of the enumeration that produced the plan
    plan_count: int = 0
    truncated: bool = False


class PlanCache(LRUCache[tuple, PlanEntry]):
    """instance key -> cost-selected, fully-bound prepared plan."""


@dataclass
class TemplateEntry:
    """One memoized template optimization.

    ``prepared`` is the template's prepared plan — scan patterns carry
    ``$s<slot>`` placeholders where constants go — ready to
    :meth:`~repro.physical.executor.PreparedPlan.bind`.  ``template`` is
    the extraction that populated the entry (equivalent, for binding
    purposes, to any other extraction with the same signature).
    """

    template: QueryTemplate
    plan: LogicalPlan
    prepared: PreparedPlan
    optimize_s: float
    #: summary of the enumeration that produced the plan
    plan_count: int = 0
    truncated: bool = False


class TemplateCache(LRUCache[tuple, TemplateEntry]):
    """template signature -> optimized-once parameterized plan."""


@dataclass
class ResultEntry:
    """One memoized answer set, in canonical variable space."""

    version: int
    attrs: tuple[str, ...]
    rows: frozenset[tuple]
    plan: LogicalPlan
    report: ExecutionReport
    job_signature: str


class ResultCache(LRUCache[tuple, ResultEntry]):
    """signature -> answers, invalidated by graph version."""

    def __init__(self, maxsize: int | None = 256) -> None:
        super().__init__(maxsize)
        self.stale_drops = 0  # guarded-by: _lock

    def get_current(self, key: tuple, version: int) -> ResultEntry | None:
        """The cached entry, unless absent or computed at an older version."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.version != version:
                del self._data[key]
                self.stale_drops += 1
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return entry
