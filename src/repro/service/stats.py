"""Service telemetry: per-query timings and aggregate statistics.

The service records one :class:`QueryTimings` per submission and folds
it into a :class:`ServiceStats` accumulator; :meth:`ServiceStats.snapshot`
produces an immutable summary (hit rates, latency percentiles,
throughput) suitable for logging or assertion in benchmarks.

Latency reservoirs are bounded (the most recent ``window`` samples per
series) so a long-lived service does not grow without bound.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.locks import checked


def percentile(samples: list[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]); 0.0 on no samples."""
    if not samples:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one latency series, in seconds."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    total: float

    @classmethod
    def of(cls, samples: list[float]) -> "LatencySummary":
        if not samples:
            return cls(count=0, p50=0.0, p95=0.0, p99=0.0, mean=0.0, total=0.0)
        total = sum(samples)
        return cls(
            count=len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            mean=total / len(samples),
            total=total,
        )


@dataclass(frozen=True)
class QueryTimings:
    """Wall-clock breakdown of one submission, in seconds."""

    canonicalize_s: float = 0.0
    optimize_s: float = 0.0
    #: binding constants into the template's compiled plan (template
    #: extraction itself is under canonicalize_s)
    bind_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0


@dataclass(frozen=True)
class ShardWorkerGauge:
    """Point-in-time load of one live RPC shard worker.

    Sampled by :meth:`QueryService.snapshot_stats` from the workers'
    telemetry so overload is observable *before* admission control
    rejects: a queue depth persistently above zero means levels are
    waiting behind the worker's dispatch pool.
    """

    shard: int
    #: levels currently executing on the worker's dispatch pool
    inflight: int
    #: levels accepted but not yet started
    queue_depth: int
    #: dispatch-pool size (the concurrency ceiling)
    max_concurrency: int
    #: high-water mark of ``inflight`` over the worker's life
    peak_inflight: int
    tasks_run: int
    #: coalesced ExecuteBatch frames served
    batches: int
    #: duplicate request ids answered from the dedup cache
    deduped: int


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable aggregate view of a service's lifetime."""

    submitted: int
    errors: int
    plan_hits: int
    plan_misses: int
    result_hits: int
    result_misses: int
    coalesced: int
    mutations: int
    graph_version: int
    uptime_s: float
    optimize: LatencySummary
    bind: LatencySummary
    execute: LatencySummary
    total: LatencySummary
    #: operational warnings (e.g. an execution backend falling back)
    warnings: tuple[str, ...] = ()
    #: submissions that skipped the optimizer by binding a cached
    #: template (the bound-plan cache itself missed)
    template_hits: int = 0
    #: distinct templates currently held by the template cache
    templates_cached: int = 0
    #: times the CliqueSquare optimizer actually ran (template builds —
    #: via submit or an explicit prepare() — plus uncacheable queries).
    #: The three-way split of submission outcomes is ``plan_hits`` (full
    #: bound-plan cache hit), ``template_hits`` (new constants bound
    #: into a cached template), ``plan_misses`` (cold submission).
    optimizer_runs: int = 0
    #: submissions rejected by admission control (max_inflight reached);
    #: rejected submissions are not counted in ``submitted``
    rejected: int = 0
    #: shard worker failures observed by the RPC transport (each worker
    #: death, failed respawn or post-respawn failure counts once; a
    #: single transparent respawn therefore shows up as 1)
    shard_failures: int = 0
    #: point-in-time load gauges of the live RPC shard workers
    #: (empty for non-RPC deployments or when no worker is up)
    shard_workers: tuple[ShardWorkerGauge, ...] = ()

    @property
    def plan_hit_rate(self) -> float:
        seen = self.plan_hits + self.plan_misses
        return self.plan_hits / seen if seen else 0.0

    @property
    def result_hit_rate(self) -> float:
        seen = self.result_hits + self.result_misses
        return self.result_hits / seen if seen else 0.0

    @property
    def throughput_qps(self) -> float:
        return self.submitted / self.uptime_s if self.uptime_s > 0 else 0.0

    def format(self) -> str:
        """A compact human-readable rendering."""
        lines = [
            f"queries: {self.submitted} ({self.errors} errors, "
            f"{self.coalesced} coalesced, {self.rejected} rejected), "
            f"mutations: {self.mutations} (graph v{self.graph_version}), "
            f"shard failures: {self.shard_failures}",
            f"plan cache:   {self.plan_hits} full hits, "
            f"{self.template_hits} template hits, "
            f"{self.plan_misses} cold submissions "
            f"({self.templates_cached} templates cached, "
            f"{self.optimizer_runs} optimizer runs)",
            f"result cache: {self.result_hits}/{self.result_hits + self.result_misses} hits "
            f"({100 * self.result_hit_rate:.1f}%)",
            f"throughput:   {self.throughput_qps:.1f} q/s over {self.uptime_s:.2f}s",
        ]
        for label, summary in (
            ("optimize", self.optimize),
            ("bind", self.bind),
            ("execute", self.execute),
            ("total", self.total),
        ):
            lines.append(
                f"{label:>8} latency: p50={1e3 * summary.p50:.2f}ms "
                f"p95={1e3 * summary.p95:.2f}ms p99={1e3 * summary.p99:.2f}ms "
                f"(n={summary.count})"
            )
        for gauge in self.shard_workers:
            lines.append(
                f"shard {gauge.shard} worker: "
                f"{gauge.inflight}/{gauge.max_concurrency} inflight "
                f"(queue {gauge.queue_depth}, peak {gauge.peak_inflight}), "
                f"{gauge.tasks_run} tasks, {gauge.batches} batches, "
                f"{gauge.deduped} deduped"
            )
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)


@dataclass
class ServiceStats:
    """Mutable accumulator behind the service front end."""

    window: int = 4096
    submitted: int = 0
    errors: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    template_hits: int = 0
    optimizer_runs: int = 0
    result_hits: int = 0
    result_misses: int = 0
    coalesced: int = 0
    mutations: int = 0
    rejected: int = 0
    shard_failures: int = 0
    warnings: list = field(default_factory=list)
    _optimize: deque = field(default_factory=deque, repr=False)
    _bind: deque = field(default_factory=deque, repr=False)
    _execute: deque = field(default_factory=deque, repr=False)
    _total: deque = field(default_factory=deque, repr=False)
    _lock: threading.Lock = field(
        default_factory=lambda: checked(threading.Lock(), "ServiceStats._lock"),
        repr=False,
    )
    _started: float = field(default_factory=time.monotonic, repr=False)

    def __post_init__(self) -> None:
        for name in ("_optimize", "_bind", "_execute", "_total"):
            setattr(self, name, deque(getattr(self, name), maxlen=self.window))

    def record_query(
        self,
        timings: QueryTimings,
        *,
        plan_hit: bool,
        result_hit: bool,
        template_hit: bool = False,
        coalesced: bool = False,
    ) -> None:
        with self._lock:
            self.submitted += 1
            if coalesced:
                self.coalesced += 1
            if result_hit:
                self.result_hits += 1
                # A result hit never consults the plan cache.
            else:
                self.result_misses += 1
                if coalesced:
                    # The submission rode a flight another query started:
                    # it paid for neither optimization nor execution, so
                    # count it as amortized (a hit) and record no samples.
                    self.plan_hits += 1
                elif plan_hit:
                    self.plan_hits += 1
                    self._execute.append(timings.execute_s)
                elif template_hit:
                    # New constants bound into a cached template: the
                    # optimizer was skipped, only bind + execute ran.
                    self.template_hits += 1
                    self._bind.append(timings.bind_s)
                    self._execute.append(timings.execute_s)
                else:
                    self.plan_misses += 1
                    self._optimize.append(timings.optimize_s)
                    self._bind.append(timings.bind_s)
                    self._execute.append(timings.execute_s)
            self._total.append(timings.total_s)

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_rejection(self, count: int = 1) -> None:
        """Count submissions turned away by admission control."""
        with self._lock:
            self.rejected += count

    def record_shard_failure(self) -> None:
        """Count one shard worker failure seen by the RPC transport."""
        with self._lock:
            self.shard_failures += 1

    def record_optimizer_run(self) -> None:
        """Count one actual CliqueSquare optimizer invocation."""
        with self._lock:
            self.optimizer_runs += 1

    def record_mutation(self) -> None:
        with self._lock:
            self.mutations += 1

    def record_warning(self, message: str) -> None:
        """Record an operational warning (deduplicated, kept forever)."""
        with self._lock:
            if message not in self.warnings:
                self.warnings.append(message)

    def snapshot(
        self,
        graph_version: int = 0,
        templates_cached: int = 0,
        shard_workers: tuple[ShardWorkerGauge, ...] = (),
    ) -> StatsSnapshot:
        with self._lock:
            return StatsSnapshot(
                submitted=self.submitted,
                errors=self.errors,
                plan_hits=self.plan_hits,
                plan_misses=self.plan_misses,
                template_hits=self.template_hits,
                templates_cached=templates_cached,
                optimizer_runs=self.optimizer_runs,
                result_hits=self.result_hits,
                result_misses=self.result_misses,
                coalesced=self.coalesced,
                mutations=self.mutations,
                rejected=self.rejected,
                shard_failures=self.shard_failures,
                graph_version=graph_version,
                uptime_s=time.monotonic() - self._started,
                optimize=LatencySummary.of(list(self._optimize)),
                bind=LatencySummary.of(list(self._bind)),
                execute=LatencySummary.of(list(self._execute)),
                total=LatencySummary.of(list(self._total)),
                warnings=tuple(self.warnings),
                shard_workers=shard_workers,
            )
