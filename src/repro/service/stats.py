"""Service telemetry: per-query timings and aggregate statistics.

The service records one :class:`QueryTimings` per submission and folds
it into a :class:`ServiceStats` accumulator; :meth:`ServiceStats.snapshot`
produces an immutable summary (hit rates, latency percentiles,
throughput) suitable for logging or assertion in benchmarks.

The accumulator is backed by a :class:`repro.obs.metrics.MetricsRegistry`
(counters for event totals, fixed-bucket histograms for the latency
series), so the same numbers are exposed via
``QueryService.render_prometheus()``.  Percentiles are computed over a
bounded reservoir of the most recent ``window`` samples per series (a
long-lived service does not grow without bound); ``count``/``mean``/
``total`` come from the histograms and are therefore *exact over the
whole series* — the pre-obs implementation silently computed them over
the window too, under-reporting totals once a series wrapped.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.locks import checked
from repro.obs.metrics import Histogram, MetricsRegistry


def percentile(samples: list[float], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]); 0.0 on no samples."""
    if not samples:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Summary of one latency series, in seconds.

    ``count``/``mean``/``total`` cover the *entire* series;
    ``p50``/``p95``/``p99`` are nearest-rank percentiles over the most
    recent ``windowed`` samples (the bounded reservoir).
    """

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    total: float
    #: how many samples the percentiles were computed over
    windowed: int = 0

    @classmethod
    def of(cls, samples: list[float]) -> "LatencySummary":
        """Summary of an in-memory series (window == whole series)."""
        if not samples:
            return cls(count=0, p50=0.0, p95=0.0, p99=0.0, mean=0.0, total=0.0)
        total = sum(samples)
        return cls(
            count=len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            mean=total / len(samples),
            total=total,
            windowed=len(samples),
        )

    @classmethod
    def of_series(
        cls, histogram: Histogram, window: list[float]
    ) -> "LatencySummary":
        """Exact running totals from *histogram*, percentiles from the
        recent *window* reservoir."""
        count = histogram.count
        if count == 0:
            return cls(count=0, p50=0.0, p95=0.0, p99=0.0, mean=0.0, total=0.0)
        total = histogram.sum
        return cls(
            count=count,
            p50=percentile(window, 50),
            p95=percentile(window, 95),
            p99=percentile(window, 99),
            mean=total / count,
            total=total,
            windowed=len(window),
        )


@dataclass(frozen=True)
class QueryTimings:
    """Wall-clock breakdown of one submission, in seconds."""

    canonicalize_s: float = 0.0
    optimize_s: float = 0.0
    #: binding constants into the template's compiled plan (template
    #: extraction itself is under canonicalize_s)
    bind_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0


@dataclass(frozen=True)
class ShardWorkerGauge:
    """Point-in-time load of one live RPC shard worker.

    Sampled by :meth:`QueryService.snapshot_stats` from the workers'
    telemetry so overload is observable *before* admission control
    rejects: a queue depth persistently above zero means levels are
    waiting behind the worker's dispatch pool.
    """

    shard: int
    #: levels currently executing on the worker's dispatch pool
    inflight: int
    #: levels accepted but not yet started
    queue_depth: int
    #: dispatch-pool size (the concurrency ceiling)
    max_concurrency: int
    #: high-water mark of ``inflight`` over the worker's life
    peak_inflight: int
    tasks_run: int
    #: coalesced ExecuteBatch frames served
    batches: int
    #: duplicate request ids answered from the dedup cache
    deduped: int
    #: the probe failed (dead/unresponsive worker): the numbers are
    #: zeros, not a live reading — a snapshot never raises mid-probe
    stale: bool = False


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable aggregate view of a service's lifetime."""

    submitted: int
    errors: int
    plan_hits: int
    plan_misses: int
    result_hits: int
    result_misses: int
    coalesced: int
    mutations: int
    graph_version: int
    uptime_s: float
    optimize: LatencySummary
    bind: LatencySummary
    execute: LatencySummary
    total: LatencySummary
    #: operational warnings (e.g. an execution backend falling back)
    warnings: tuple[str, ...] = ()
    #: submissions that skipped the optimizer by binding a cached
    #: template (the bound-plan cache itself missed)
    template_hits: int = 0
    #: distinct templates currently held by the template cache
    templates_cached: int = 0
    #: times the CliqueSquare optimizer actually ran (template builds —
    #: via submit or an explicit prepare() — plus uncacheable queries).
    #: The three-way split of submission outcomes is ``plan_hits`` (full
    #: bound-plan cache hit), ``template_hits`` (new constants bound
    #: into a cached template), ``plan_misses`` (cold submission).
    optimizer_runs: int = 0
    #: submissions rejected by admission control (max_inflight reached);
    #: rejected submissions are not counted in ``submitted``
    rejected: int = 0
    #: shard worker failures observed by the RPC transport (each worker
    #: death, failed respawn or post-respawn failure counts once; a
    #: single transparent respawn therefore shows up as 1)
    shard_failures: int = 0
    #: point-in-time load gauges of the live RPC shard workers
    #: (empty for non-RPC deployments or when no worker is up)
    shard_workers: tuple[ShardWorkerGauge, ...] = ()
    #: completed slot-table rebalances (grow, shrink or skew-shedding)
    rebalances: int = 0

    @property
    def plan_hit_rate(self) -> float:
        seen = self.plan_hits + self.plan_misses
        return self.plan_hits / seen if seen else 0.0

    @property
    def result_hit_rate(self) -> float:
        seen = self.result_hits + self.result_misses
        return self.result_hits / seen if seen else 0.0

    @property
    def throughput_qps(self) -> float:
        return self.submitted / self.uptime_s if self.uptime_s > 0 else 0.0

    def format(self) -> str:
        """A compact human-readable rendering."""
        lines = [
            f"queries: {self.submitted} ({self.errors} errors, "
            f"{self.coalesced} coalesced, {self.rejected} rejected), "
            f"mutations: {self.mutations} (graph v{self.graph_version}), "
            f"shard failures: {self.shard_failures}, "
            f"rebalances: {self.rebalances}",
            f"plan cache:   {self.plan_hits} full hits, "
            f"{self.template_hits} template hits, "
            f"{self.plan_misses} cold submissions "
            f"({self.templates_cached} templates cached, "
            f"{self.optimizer_runs} optimizer runs)",
            f"result cache: {self.result_hits}/{self.result_hits + self.result_misses} hits "
            f"({100 * self.result_hit_rate:.1f}%)",
            f"throughput:   {self.throughput_qps:.1f} q/s over {self.uptime_s:.2f}s",
        ]
        for label, summary in (
            ("optimize", self.optimize),
            ("bind", self.bind),
            ("execute", self.execute),
            ("total", self.total),
        ):
            window = (
                f", window={summary.windowed}"
                if summary.windowed != summary.count
                else ""
            )
            lines.append(
                f"{label:>8} latency: p50={1e3 * summary.p50:.2f}ms "
                f"p95={1e3 * summary.p95:.2f}ms p99={1e3 * summary.p99:.2f}ms "
                f"(n={summary.count}{window}) "
                f"mean={1e3 * summary.mean:.2f}ms total={summary.total:.3f}s"
            )
        for gauge in self.shard_workers:
            if gauge.stale:
                lines.append(
                    f"shard {gauge.shard} worker: STALE (probe failed)"
                )
                continue
            lines.append(
                f"shard {gauge.shard} worker: "
                f"{gauge.inflight}/{gauge.max_concurrency} inflight "
                f"(queue {gauge.queue_depth}, peak {gauge.peak_inflight}), "
                f"{gauge.tasks_run} tasks, {gauge.batches} batches, "
                f"{gauge.deduped} deduped"
            )
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)


#: StatsSnapshot counter field -> ``repro_service_events_total`` label.
_EVENTS = (
    "submitted",
    "errors",
    "plan_hits",
    "plan_misses",
    "template_hits",
    "optimizer_runs",
    "result_hits",
    "result_misses",
    "coalesced",
    "mutations",
    "rejected",
    "shard_failures",
    "rebalances",
)

#: Latency series recorded per query stage.
_STAGES = ("optimize", "bind", "execute", "total")


@dataclass
class ServiceStats:
    """Mutable accumulator behind the service front end.

    Counters and latency histograms live in a
    :class:`~repro.obs.metrics.MetricsRegistry` (families
    ``repro_service_events_total{event=...}`` and
    ``repro_query_stage_seconds{stage=...}``); the bounded per-stage
    deques only feed the windowed percentiles.  ``_lock`` serializes
    writers so one query's multi-counter update is not interleaved.
    """

    window: int = 4096
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    warnings: list = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=lambda: checked(threading.Lock(), "ServiceStats._lock"),
        repr=False,
    )
    _started: float = field(default_factory=time.monotonic, repr=False)

    def __post_init__(self) -> None:
        events = self.registry.counter(
            "repro_service_events_total",
            "Lifetime service event counts by kind.",
            labels=("event",),
        )
        self._events = {name: events.labels(event=name) for name in _EVENTS}
        stages = self.registry.histogram(
            "repro_query_stage_seconds",
            "Per-stage query latency (optimize/bind/execute/total).",
            labels=("stage",),
        )
        self._series = {name: stages.labels(stage=name) for name in _STAGES}
        self._windows = {
            name: deque(maxlen=self.window) for name in _STAGES
        }
        self._slot_moves = self.registry.counter(
            "repro_slot_moves_total",
            "Slots handled by topology rebalances, by migration phase.",
            labels=("phase",),
        )

    def _count(self, event: str, amount: int = 1) -> None:
        self._events[event].inc(amount)

    def _observe(self, stage: str, value: float) -> None:
        self._series[stage].observe(value)
        self._windows[stage].append(value)

    def record_query(
        self,
        timings: QueryTimings,
        *,
        plan_hit: bool,
        result_hit: bool,
        template_hit: bool = False,
        coalesced: bool = False,
    ) -> None:
        with self._lock:
            self._count("submitted")
            if coalesced:
                self._count("coalesced")
            if result_hit:
                self._count("result_hits")
                # A result hit never consults the plan cache.
            else:
                self._count("result_misses")
                if coalesced:
                    # The submission rode a flight another query started:
                    # it paid for neither optimization nor execution, so
                    # count it as amortized (a hit) and record no samples.
                    self._count("plan_hits")
                elif plan_hit:
                    self._count("plan_hits")
                    self._observe("execute", timings.execute_s)
                elif template_hit:
                    # New constants bound into a cached template: the
                    # optimizer was skipped, only bind + execute ran.
                    self._count("template_hits")
                    self._observe("bind", timings.bind_s)
                    self._observe("execute", timings.execute_s)
                else:
                    self._count("plan_misses")
                    self._observe("optimize", timings.optimize_s)
                    self._observe("bind", timings.bind_s)
                    self._observe("execute", timings.execute_s)
            self._observe("total", timings.total_s)

    def record_error(self) -> None:
        self._count("errors")

    def record_rejection(self, count: int = 1) -> None:
        """Count submissions turned away by admission control."""
        self._count("rejected", count)

    def record_shard_failure(self) -> None:
        """Count one shard worker failure seen by the RPC transport."""
        self._count("shard_failures")

    def record_optimizer_run(self) -> None:
        """Count one actual CliqueSquare optimizer invocation."""
        self._count("optimizer_runs")

    def record_mutation(self) -> None:
        self._count("mutations")

    def record_rebalance(self, phases: dict[str, int]) -> None:
        """Count one topology rebalance; *phases* maps migration phase
        (``plan``/``prime``/``delta``/``flip``) → slots handled there,
        feeding ``repro_slot_moves_total{phase=...}``."""
        with self._lock:
            self._count("rebalances")
            for phase, count in phases.items():
                self._slot_moves.labels(phase=phase).inc(count)

    def record_warning(self, message: str) -> None:
        """Record an operational warning (deduplicated, kept forever)."""
        with self._lock:
            if message not in self.warnings:
                self.warnings.append(message)

    def _summary(self, stage: str) -> LatencySummary:
        return LatencySummary.of_series(
            self._series[stage], list(self._windows[stage])
        )

    def snapshot(
        self,
        graph_version: int = 0,
        templates_cached: int = 0,
        shard_workers: tuple[ShardWorkerGauge, ...] = (),
    ) -> StatsSnapshot:
        with self._lock:
            counts = {name: int(c.value) for name, c in self._events.items()}
            return StatsSnapshot(
                submitted=counts["submitted"],
                errors=counts["errors"],
                plan_hits=counts["plan_hits"],
                plan_misses=counts["plan_misses"],
                template_hits=counts["template_hits"],
                templates_cached=templates_cached,
                optimizer_runs=counts["optimizer_runs"],
                result_hits=counts["result_hits"],
                result_misses=counts["result_misses"],
                coalesced=counts["coalesced"],
                mutations=counts["mutations"],
                rejected=counts["rejected"],
                shard_failures=counts["shard_failures"],
                rebalances=counts["rebalances"],
                graph_version=graph_version,
                uptime_s=time.monotonic() - self._started,
                optimize=self._summary("optimize"),
                bind=self._summary("bind"),
                execute=self._summary("execute"),
                total=self._summary("total"),
                warnings=tuple(self.warnings),
                shard_workers=shard_workers,
            )
