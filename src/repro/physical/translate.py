"""Logical-to-physical plan translation — §5.2.

Translation proceeds bottom-up:

* match: a Map Scan per outgoing edge (shared Match operators are
  re-scanned per consumer), plus a Filter when the pattern carries
  subject/object constants or repeated variables.  The scan's replica
  placement is chosen by the parent join's key so that first-level joins
  are co-located.
* join: a join whose inputs are all match operators becomes a Map Join;
  any other join becomes a Reduce Join, with Map Shufflers inserted over
  inputs that are themselves reduce joins (a reduce join cannot consume
  another reduce join's output directly).
* select/project: map to Filter / PhysProject.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.logical import (
    Join,
    LogicalOperator,
    LogicalPlan,
    Match,
    Project,
    Select,
)
from repro.cost.model import is_first_level_join
from repro.physical.operators import (
    Filter,
    MapJoin,
    MapScan,
    MapShuffler,
    PhysicalOperator,
    PhysProject,
    ReduceJoin,
    needs_filter,
)
from repro.rdf.terms import is_variable
from repro.sparql.ast import TriplePattern


@dataclass
class PhysicalPlan:
    """A physical operator tree plus bookkeeping for job compilation."""

    root: PhysicalOperator
    reduce_joins: list[ReduceJoin] = field(default_factory=list)

    def operators(self) -> list[PhysicalOperator]:
        """All operators of every job tree.

        Map shufflers reference their producing reduce join by output
        name rather than as a child (they sit in a different job), so
        the walk must start from the root *and* every reduce join.
        """
        out: list[PhysicalOperator] = []
        seen: set[int] = set()
        stack: list[PhysicalOperator] = [self.root, *self.reduce_joins]
        while stack:
            op = stack.pop()
            if id(op) in seen:
                continue
            seen.add(id(op))
            out.append(op)
            stack.extend(op.children)
        return out


ALL_REPLICAS = ("s", "p", "o")


def scan_placement(
    tp: TriplePattern,
    join_on: tuple[str, ...] | None,
    replicas: tuple[str, ...] = ALL_REPLICAS,
) -> str:
    """Pick the replica a pattern is scanned from.

    For a co-located (map) join on A, the scan must come from the replica
    hashed on A's position in this pattern; otherwise the subject replica
    (which holds every triple exactly once) is used.
    """
    if join_on:
        key = join_on[0]
        for position in tp.positions_of(key):
            if position in replicas:
                return position
    return "s"


def colocatable(op: Join, replicas: tuple[str, ...]) -> bool:
    """True iff a first-level join can run as a map join given the
    materialized replicas: every input pattern must have the join key in
    a replicated position (always true under the full §5.1 scheme)."""
    key = op.on[0]
    for child in op.inputs:
        assert isinstance(child, Match)
        if not any(
            position in replicas for position in child.pattern.positions_of(key)
        ):
            return False
    return True


class _Translator:
    def __init__(self, replicas: tuple[str, ...] = ALL_REPLICAS) -> None:
        self.replicas = replicas
        self.reduce_joins: list[ReduceJoin] = []
        self._rj_cache: dict[int, ReduceJoin] = {}
        self._rj_counter = 0

    def _translate_match(
        self, tp: TriplePattern, join_on: tuple[str, ...] | None
    ) -> PhysicalOperator:
        scan = MapScan(
            pattern=tp, placement=scan_placement(tp, join_on, self.replicas)
        )
        if needs_filter(tp, scan):
            return Filter(child=scan)
        return scan

    def translate(self, op: LogicalOperator, parent_on: tuple[str, ...] | None) -> PhysicalOperator:
        if isinstance(op, Match):
            return self._translate_match(op.pattern, parent_on)
        if isinstance(op, Join):
            if is_first_level_join(op) and colocatable(op, self.replicas):
                children = tuple(
                    self.translate(child, op.on) for child in op.inputs
                )
                return MapJoin(on=op.on, inputs=children)
            return self._translate_reduce_join(op)
        if isinstance(op, Select):
            # Logical selections only arise in hand-built plans; their
            # conditions are constant checks executed map-side, so we
            # translate the child and rely on executor-side filtering.
            return self.translate(op.child, parent_on)
        if isinstance(op, Project):
            child = self.translate(op.child, parent_on)
            if isinstance(child, ReduceJoin) and parent_on is not None:
                # A pushed-down projection over a reduce join, consumed
                # by a higher join: project inside the shuffling map task.
                child = MapShuffler(
                    on=parent_on,
                    source=child.output_name,
                    source_attrs=child.attrs,
                )
            return PhysProject(on=op.on, child=child)
        raise TypeError(f"unknown logical operator {type(op)!r}")

    def _translate_reduce_join(self, op: Join) -> ReduceJoin:
        # Shared sub-DAGs (simple covers): one reduce join -> one job,
        # multiple consumers read its output through separate shufflers.
        cached = self._rj_cache.get(id(op))
        if cached is not None:
            return cached
        inputs: list[PhysicalOperator] = []
        for child in op.inputs:
            chain = self.translate(child, op.on)
            if isinstance(chain, ReduceJoin):
                # A reduce join cannot consume another reduce join's
                # output directly: add a map shuffler (§5.2).
                chain = MapShuffler(
                    on=op.on,
                    source=chain.output_name,
                    source_attrs=chain.attrs,
                )
            inputs.append(chain)
        self._rj_counter += 1
        rj = ReduceJoin(
            on=op.on,
            inputs=tuple(inputs),
            output_name=f"rj{self._rj_counter}",
        )
        self._rj_cache[id(op)] = rj
        self.reduce_joins.append(rj)
        return rj


def translate(
    plan: LogicalPlan, replicas: tuple[str, ...] = ALL_REPLICAS
) -> PhysicalPlan:
    """Translate a logical plan into a physical plan (§5.2).

    ``replicas`` narrows the materialized placements (ablation of §5.1):
    joins that lose co-location degrade to reduce joins.
    """
    translator = _Translator(replicas)
    root = translator.translate(plan.root, None)
    if not isinstance(root, PhysProject):
        root = PhysProject(on=tuple(plan.query.distinguished), child=root)
    return PhysicalPlan(root=root, reduce_joins=translator.reduce_joins)


def substitute_pattern(
    tp: TriplePattern, subst: dict[str, str]
) -> TriplePattern:
    """The pattern with every term found in *subst* replaced."""
    if not (tp.s in subst or tp.p in subst or tp.o in subst):
        return tp
    return TriplePattern(
        subst.get(tp.s, tp.s), subst.get(tp.p, tp.p), subst.get(tp.o, tp.o)
    )


def substitute_physical(
    op: PhysicalOperator,
    subst: dict[str, str],
    _memo: dict[int, PhysicalOperator] | None = None,
) -> PhysicalOperator:
    """Rebuild a physical operator tree with terms substituted in every
    scan pattern, preserving shared-operator identity (a reduce join
    consumed by several shufflers stays one operator).

    This is how a prepared template plan is *bound*: the structure —
    placements, joins, shuffles, job grouping — is untouched, only the
    selection terms inside the map-side patterns change, so the bound
    plan recompiles to jobs with identical shape.
    """
    memo = _memo if _memo is not None else {}
    cached = memo.get(id(op))
    if cached is not None:
        return cached
    new: PhysicalOperator
    if isinstance(op, MapScan):
        new = MapScan(
            pattern=substitute_pattern(op.pattern, subst),
            placement=op.placement,
        )
    elif isinstance(op, Filter):
        child = substitute_physical(op.child, subst, memo)
        assert isinstance(child, MapScan)
        new = Filter(child=child)
    elif isinstance(op, MapJoin):
        new = MapJoin(
            on=op.on,
            inputs=tuple(
                substitute_physical(c, subst, memo) for c in op.inputs
            ),
        )
    elif isinstance(op, MapShuffler):
        new = op  # references a producer by name; carries no patterns
    elif isinstance(op, ReduceJoin):
        new = ReduceJoin(
            on=op.on,
            inputs=tuple(
                substitute_physical(c, subst, memo) for c in op.inputs
            ),
            output_name=op.output_name,
        )
    elif isinstance(op, PhysProject):
        new = PhysProject(
            on=op.on, child=substitute_physical(op.child, subst, memo)
        )
    else:
        raise TypeError(f"unknown physical operator {type(op)!r}")
    memo[id(op)] = new
    return new


def substitute_plan(plan: PhysicalPlan, subst: dict[str, str]) -> PhysicalPlan:
    """A physical plan with *subst* applied throughout (see
    :func:`substitute_physical`); reduce-join sharing is preserved."""
    memo: dict[int, PhysicalOperator] = {}
    root = substitute_physical(plan.root, subst, memo)
    reduce_joins = [
        substitute_physical(rj, subst, memo) for rj in plan.reduce_joins
    ]
    return PhysicalPlan(root=root, reduce_joins=reduce_joins)  # type: ignore[arg-type]


def bind_triple(tp: TriplePattern, triple: tuple[str, str, str]) -> tuple | None:
    """Bind a pattern against a triple: the row of variable values, or
    None when constants or repeated variables mismatch."""
    binding: dict[str, str] = {}
    for term, value in zip((tp.s, tp.p, tp.o), triple):
        if is_variable(term):
            bound = binding.get(term)
            if bound is None:
                binding[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return tuple(binding[v] for v in tp.variables())
