"""Executes compiled plans on the simulated MapReduce cluster.

Every operator really runs: map chains scan the §5.1 partitioned store
node-locally, map joins star-join co-located tuples, shuffles hash rows
to reducers, reduce joins combine their partition's groups.  Work
counters feed the timing model of the engine, and the returned answers
are exact (tested against the reference evaluator).

Tasks are *declarative specs* (:class:`ChainMapSpec`,
:class:`MapOnlySpec`, :class:`StarReduceSpec`): picklable dataclasses
holding the physical operator chain plus routing data, evaluated against
a :class:`~repro.mapreduce.jobs.TaskContext`.  That keeps plan execution
backend-agnostic — the same compiled plan runs serially, on a thread
pool, or fanned out across a process pool, with byte-identical answers.

The ``run`` methods below are also the *reference semantics* for the
vectorized evaluator: :mod:`repro.columnar.engine` executes these same
three specs over dictionary-encoded :class:`~repro.columnar.block.ColumnBlock`
columns instead of term tuples.  Both the produced rows (as multisets —
intermediate order is never observable, the reducers group by key and
the final answer is a set) and every :class:`TaskMetrics` increment in
this file are a compatibility contract: change the accounting here and
the columnar mirror must change in lockstep (the conformance harness
compares the two field-wise).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.logical import LogicalPlan, rewrite_patterns
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.backends import ExecutionBackend, make_backend
from repro.mapreduce.counters import ExecutionReport, TaskMetrics
from repro.mapreduce.engine import ClusterConfig, MapReduceEngine
from repro.mapreduce.hdfs import HDFS, DistributedRelation
from repro.mapreduce.jobs import (
    JobGraph,
    MapReduceJob,
    MapTask,
    MapTaskSpec,
    ReduceTaskSpec,
    Row,
    TaskContext,
    stable_hash,
)
from repro.obs.trace import span
from repro.partitioning.triple_partitioner import PartitionedStore
from repro.physical.job_compiler import (
    CompiledPlan,
    JobSpec,
    compile_plan,
    shuffler_sources,
)
from repro.physical.operators import (
    Filter,
    MapJoin,
    MapScan,
    MapShuffler,
    PhysicalOperator,
    PhysProject,
)
from repro.physical.translate import (
    PhysicalPlan,
    bind_triple,
    substitute_pattern,
    substitute_plan,
    translate,
)
from repro.sparql.ast import BGPQuery
from repro.relational.joins import star_join
from repro.relational.relation import Relation


@dataclass
class PreparedPlan:
    """A logical plan translated and compiled, ready to execute.

    Preparation is pure (no cluster state is touched), so a prepared
    plan can be executed any number of times — and cached: the query
    service memoizes prepared plans per query shape to skip translation
    and job compilation on repeated queries.  All three layers are plain
    dataclasses of plain data, so a prepared plan pickles: it can be
    shipped to another process or persisted and re-executed there.

    A prepared plan may be a *template*: its scan patterns can carry
    ``$`` parameter placeholders where constants will go.  :meth:`bind`
    substitutes concrete constants through all three layers without
    re-planning — structure (placements, joins, job grouping) is decided
    once per template, selection terms per binding.
    """

    plan: LogicalPlan
    physical: PhysicalPlan
    compiled: CompiledPlan
    #: registry key of the unbound template this plan was prepared from
    #: (stamped when the plan is registered with an RPC shard router);
    #: None for plans with no registered template.
    template_key: str | None = None
    #: the ``(placeholder, constant)`` pairs bound into the template to
    #: produce this plan, in sorted order.  Together with
    #: ``template_key`` this is the full provenance of a bound plan —
    #: all an RPC shard worker needs to rebuild it from the registered
    #: template, so only the constant vector crosses the wire.
    binding: tuple[tuple[str, str], ...] = ()

    def bind(self, subst: dict[str, str]) -> "PreparedPlan":
        """A copy with *subst* applied to every pattern term.

        Late binding for parameterized templates: only the selection
        terms inside scan patterns (hence the selection predicates the
        compiled :class:`ChainMapSpec`/:class:`MapOnlySpec` tasks
        evaluate) change; translation decisions are reused verbatim and
        the job DAG recompiles to the identical shape.
        """
        if not subst:
            return self

        def bind_pattern(tp):
            return substitute_pattern(tp, subst)

        query = self.plan.query
        bound_query = BGPQuery(
            distinguished=query.distinguished,
            patterns=tuple(bind_pattern(tp) for tp in query.patterns),
            name=query.name,
        )
        plan = LogicalPlan(
            root=rewrite_patterns(self.plan.root, bind_pattern),
            query=bound_query,
        )
        physical = substitute_plan(self.physical, subst)
        # Binding provenance survives exactly one hop from the unbound
        # template; re-binding an already-bound plan cannot be expressed
        # as a single substitution of the original, so it drops the key
        # (RPC falls back to registering the re-bound plan ad hoc).
        template_key = self.template_key if not self.binding else None
        return PreparedPlan(
            plan=plan,
            physical=physical,
            compiled=compile_plan(physical),
            template_key=template_key,
            binding=tuple(sorted(subst.items())) if template_key else (),
        )


# -- chain evaluation ---------------------------------------------------------


def eval_chain(
    op: PhysicalOperator, node: int, ctx: TaskContext, metrics: TaskMetrics
) -> Relation:
    """Evaluate a map-side chain on one node's local data."""
    if isinstance(op, MapScan):
        triples = ctx.store.scan(node, op.placement, op.prop, op.type_object)
        metrics.tuples_read += len(triples)
        rows = []
        for triple in triples:
            row = bind_triple(op.pattern, triple)
            if row is not None:
                rows.append(row)
        return Relation(op.attrs, rows)
    if isinstance(op, Filter):
        # The scan enforces the whole pattern via bind_triple; the
        # filter's accounted work is one check per scanned tuple.
        before = metrics.tuples_read
        child = eval_chain(op.child, node, ctx, metrics)
        metrics.checks += metrics.tuples_read - before
        return child
    if isinstance(op, MapJoin):
        inputs = [eval_chain(c, node, ctx, metrics) for c in op.inputs]
        output = star_join(inputs, on=op.on)
        metrics.join_tuples += sum(len(r) for r in inputs) + len(output)
        metrics.tuples_written += len(output)
        return output
    if isinstance(op, MapShuffler):
        relation = ctx.hdfs.read(op.source)
        rows = list(relation.partitions[node])
        metrics.tuples_read += len(rows)
        metrics.tuples_written += len(rows)
        return Relation(relation.attrs, rows)
    if isinstance(op, PhysProject):
        # A pushed-down projection running inside the map task.
        child = eval_chain(op.child, node, ctx, metrics)
        metrics.checks += len(child)
        return child.project(op.on)
    raise TypeError(f"not a map-side operator: {type(op)!r}")


# -- task specs ---------------------------------------------------------------


class _ChainTaskSpec(MapTaskSpec):
    """Shared remote-input logic for chain-evaluating map specs
    (subclasses carry ``chain`` and ``node`` fields)."""

    def hdfs_inputs(self) -> tuple[str, ...]:
        return shuffler_sources(self.chain)

    def hdfs_slice(self, hdfs: HDFS) -> dict:
        # The chain only reads this node's partitions; ship those alone
        # (the full relation would otherwise cross the process boundary
        # once per node).
        out = {}
        for name in self.hdfs_inputs():
            relation = hdfs.read(name)
            out[name] = DistributedRelation(
                attrs=relation.attrs,
                partitions=[
                    part if i == self.node else []
                    for i, part in enumerate(relation.partitions)
                ],
            )
        return out


@dataclass(frozen=True)
class ChainMapSpec(_ChainTaskSpec):
    """Map task feeding a reduce join: evaluate a chain on one node and
    shuffle its rows to reducers by the join key's stable hash."""

    chain: PhysicalOperator
    node: int
    tag: int
    key_attrs: tuple[str, ...]
    num_reducers: int

    def run(self, ctx: TaskContext, *args):
        metrics = TaskMetrics()
        relation = eval_chain(self.chain, self.node, ctx, metrics)
        # Hadoop spills map output to local disk before the shuffle.
        # Map joins and map shufflers already counted that write
        # (c(MJ)/c(MF) include it, §5.4); bare scan chains have not.
        if not isinstance(self.chain, (MapJoin, MapShuffler)):
            metrics.tuples_written += len(relation)
        key = relation.key(self.key_attrs)
        emits = [
            (stable_hash(key(row)) % self.num_reducers, self.tag, row)
            for row in relation.rows
        ]
        return emits, [], metrics


@dataclass(frozen=True)
class MapOnlySpec(_ChainTaskSpec):
    """Map-only task: evaluate a chain on one node, emit direct output."""

    chain: PhysicalOperator
    node: int
    project: tuple[str, ...] | None

    def run(self, ctx: TaskContext, *args):
        metrics = TaskMetrics()
        relation = eval_chain(self.chain, self.node, ctx, metrics)
        if self.project is not None:
            metrics.checks += len(relation)
            relation = relation.project(self.project)
        metrics.tuples_written += len(relation)
        return [], list(relation.rows), metrics


@dataclass(frozen=True)
class StarReduceSpec(ReduceTaskSpec):
    """Reduce task of a repartition join: star-join the tagged groups of
    one partition, optionally projecting the terminal job's output."""

    on: tuple[str, ...]
    child_attrs: tuple[tuple[str, ...], ...]
    project: tuple[str, ...] | None

    def run(self, ctx: TaskContext, partition: int, grouped: dict):
        metrics = TaskMetrics()
        inputs = []
        for tag, attrs in enumerate(self.child_attrs):
            rows = grouped.get(tag, [])
            metrics.tuples_shuffled += len(rows)
            # Reducers merge-read the transferred runs from disk.
            metrics.tuples_read += len(rows)
            inputs.append(Relation(attrs, rows))
        if any(len(r) == 0 for r in inputs):
            out_rows: list[Row] = []
        else:
            output = star_join(inputs, on=self.on)
            metrics.join_tuples += sum(len(r) for r in inputs) + len(output)
            if self.project is not None:
                metrics.checks += len(output)
                output = output.project(self.project)
            out_rows = list(output.rows)
        metrics.tuples_written += len(out_rows)
        return out_rows, metrics


# -- job construction (shared by PlanExecutor and the shard router) -----------


def job_output_attrs(spec: JobSpec) -> tuple[str, ...]:
    """The attribute schema of a job's output relation."""
    if spec.project is not None:
        return spec.project
    if spec.reduce_join is not None:
        return spec.reduce_join.attrs
    return spec.map_chains[0].attrs


def build_map_tasks(spec: JobSpec, num_nodes: int) -> list[MapTask]:
    """The map tasks of one job spec: per chain tag, one task per node."""
    if spec.map_only:
        chain = spec.map_chains[0]
        return [
            MapTask(
                node=node,
                label=f"{spec.name}@{node}",
                spec=MapOnlySpec(chain=chain, node=node, project=spec.project),
            )
            for node in range(num_nodes)
        ]
    rj = spec.reduce_join
    assert rj is not None
    tasks: list[MapTask] = []
    for tag, chain in enumerate(spec.map_chains):
        for node in range(num_nodes):
            tasks.append(
                MapTask(
                    node=node,
                    label=f"{spec.name}/m{tag}@{node}",
                    spec=ChainMapSpec(
                        chain=chain,
                        node=node,
                        tag=tag,
                        key_attrs=rj.on,
                        num_reducers=num_nodes,
                    ),
                )
            )
    return tasks


def job_from_spec(
    spec: JobSpec, num_nodes: int, on_complete=None
) -> MapReduceJob:
    """Instantiate the :class:`MapReduceJob` for one compiled job spec.

    ``on_complete`` receives the per-node output rows once the job
    finishes (executors use it to register results in simulated HDFS);
    the shard router passes ``None`` and handles outputs itself, because
    a job's output must be sliced per shard for the exchange step.
    """
    if spec.map_only:
        return MapReduceJob(
            name=spec.name,
            map_tasks=build_map_tasks(spec, num_nodes),
            depends_on=spec.depends,
            on_complete=on_complete,
        )
    rj = spec.reduce_join
    assert rj is not None
    return MapReduceJob(
        name=spec.name,
        map_tasks=build_map_tasks(spec, num_nodes),
        num_reducers=num_nodes,
        reduce_spec=StarReduceSpec(
            on=rj.on,
            child_attrs=tuple(chain.attrs for chain in spec.map_chains),
            project=spec.project,
        ),
        depends_on=spec.depends,
        on_complete=on_complete,
    )


# -- results ------------------------------------------------------------------


@dataclass
class ExecutionResult:
    """Answers plus the execution report of one query run."""

    attrs: tuple[str, ...]
    rows: set[tuple]
    report: ExecutionReport
    plan: LogicalPlan
    physical: PhysicalPlan
    compiled: CompiledPlan
    #: per-shard map/reduce task counts and output row counts, set only
    #: when a sharded executor (repro.cluster) produced this result
    shard_tasks: tuple[int, ...] | None = None
    shard_rows: tuple[int, ...] | None = None
    #: request bytes shipped per shard server (RPC transport only)
    shard_bytes: tuple[int, ...] | None = None
    #: request frames shipped per shard server (RPC transport only;
    #: coalesced frames carry several queries' levels)
    shard_frames: tuple[int, ...] | None = None

    @property
    def response_time(self) -> float:
        return self.report.response_time

    @property
    def num_jobs(self) -> int:
        return self.report.num_jobs

    def job_signature(self) -> str:
        return self.compiled.job_signature()


class PlanExecutor:
    """Runs logical plans over a partitioned store on a simulated cluster.

    ``backend`` selects how task specs physically execute: a backend
    name (``"serial"``/``"thread"``/``"process"``), an
    :class:`~repro.mapreduce.backends.ExecutionBackend` instance, or
    ``None`` for serial.  Answers and simulated reports are identical
    across backends; only wall-clock differs.
    """

    def __init__(
        self,
        store: PartitionedStore,
        cluster: ClusterConfig | None = None,
        params: CostParams = DEFAULT_PARAMS,
        backend: ExecutionBackend | str | None = None,
    ) -> None:
        self.store = store
        self.cluster = cluster or ClusterConfig(num_nodes=store.num_nodes)
        self.params = params
        self.backend = make_backend(backend)
        self.engine = MapReduceEngine(self.cluster, params, backend=self.backend)

    # -- lifecycle ------------------------------------------------------------

    def prime(self) -> None:
        """Warm the backend's worker pools against the current store.

        Idempotent per store version: the process backend keys its pool
        on the snapshot token and rebuilds only when the store actually
        changed.
        """
        self.backend.prime(
            TaskContext(
                num_nodes=self.cluster.num_nodes, store=self.store.snapshot()
            )
        )

    def close(self) -> None:
        """Release backend worker pools (no-op for serial)."""
        self.backend.close()

    def __enter__(self) -> "PlanExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- public API -----------------------------------------------------------

    def execute(self, plan: LogicalPlan) -> ExecutionResult:
        """Translate, compile and run *plan*; return answers + report."""
        return self.execute_prepared(self.prepare(plan))

    def prepare(self, plan: LogicalPlan) -> PreparedPlan:
        """Translate and compile *plan* without running it.

        With ``REPRO_CHECK_PLANS=1``, every prepared plan is verified
        against the paper's structural invariants (logical, physical and
        job-DAG level) before it is handed out.
        """
        with span("prepare") as sp:
            physical = translate(plan, replicas=self.store.replicas)
            compiled = compile_plan(physical)
            sp.set(jobs=len(compiled.jobs))
            from repro.analysis.plan_check import maybe_check

            maybe_check(plan, physical=physical, compiled=compiled)
        return PreparedPlan(plan=plan, physical=physical, compiled=compiled)

    def execute_prepared(self, prepared: PreparedPlan) -> ExecutionResult:
        """Run an already-prepared plan; return answers + report."""
        compiled = prepared.compiled
        hdfs = HDFS(num_nodes=self.cluster.num_nodes)
        ctx = TaskContext(
            num_nodes=self.cluster.num_nodes,
            store=self.store.snapshot(),
            hdfs=hdfs,
        )
        graph = JobGraph()
        for spec in compiled.jobs:
            graph.add(self._build_job(spec, hdfs))
        with span("engine", jobs=len(compiled.jobs)):
            report = self.engine.execute(graph, ctx)
        result_rel = hdfs.read("result")
        rows = set(result_rel.all_rows())
        return ExecutionResult(
            attrs=compiled.final_attrs,
            rows=rows,
            report=report,
            plan=prepared.plan,
            physical=prepared.physical,
            compiled=compiled,
        )

    # -- job construction ----------------------------------------------------------

    def _build_job(self, spec: JobSpec, hdfs: HDFS) -> MapReduceJob:
        out_attrs = job_output_attrs(spec)

        def on_complete(outputs: list[list[Row]]) -> None:
            hdfs.write(
                spec.output_name,
                DistributedRelation(attrs=out_attrs, partitions=outputs),
            )

        return job_from_spec(
            spec, self.cluster.num_nodes, on_complete=on_complete
        )
