"""Executes compiled plans on the simulated MapReduce cluster.

Every operator really runs: map chains scan the §5.1 partitioned store
node-locally, map joins star-join co-located tuples, shuffles hash rows
to reducers, reduce joins combine their partition's groups.  Work
counters feed the timing model of the engine, and the returned answers
are exact (tested against the reference evaluator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.logical import LogicalPlan
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.counters import ExecutionReport, TaskMetrics
from repro.mapreduce.engine import ClusterConfig, MapReduceEngine
from repro.mapreduce.hdfs import HDFS, DistributedRelation
from repro.mapreduce.jobs import JobGraph, MapReduceJob, MapTask, Row, stable_hash
from repro.partitioning.triple_partitioner import PartitionedStore
from repro.physical.job_compiler import CompiledPlan, JobSpec, compile_plan
from repro.physical.operators import (
    Filter,
    MapJoin,
    MapScan,
    MapShuffler,
    PhysicalOperator,
    PhysProject,
)
from repro.physical.translate import PhysicalPlan, bind_triple, translate
from repro.relational.joins import star_join
from repro.relational.relation import Relation


@dataclass
class PreparedPlan:
    """A logical plan translated and compiled, ready to execute.

    Preparation is pure (no cluster state is touched), so a prepared
    plan can be executed any number of times — and cached: the query
    service memoizes prepared plans per query shape to skip translation
    and job compilation on repeated queries.
    """

    plan: LogicalPlan
    physical: PhysicalPlan
    compiled: CompiledPlan


@dataclass
class ExecutionResult:
    """Answers plus the execution report of one query run."""

    attrs: tuple[str, ...]
    rows: set[tuple]
    report: ExecutionReport
    plan: LogicalPlan
    physical: PhysicalPlan
    compiled: CompiledPlan

    @property
    def response_time(self) -> float:
        return self.report.response_time

    @property
    def num_jobs(self) -> int:
        return self.report.num_jobs

    def job_signature(self) -> str:
        return self.compiled.job_signature()


class PlanExecutor:
    """Runs logical plans over a partitioned store on a simulated cluster."""

    def __init__(
        self,
        store: PartitionedStore,
        cluster: ClusterConfig | None = None,
        params: CostParams = DEFAULT_PARAMS,
    ) -> None:
        self.store = store
        self.cluster = cluster or ClusterConfig(num_nodes=store.num_nodes)
        self.params = params
        self.engine = MapReduceEngine(self.cluster, params)

    # -- public API -----------------------------------------------------------

    def execute(self, plan: LogicalPlan) -> ExecutionResult:
        """Translate, compile and run *plan*; return answers + report."""
        return self.execute_prepared(self.prepare(plan))

    def prepare(self, plan: LogicalPlan) -> PreparedPlan:
        """Translate and compile *plan* without running it."""
        physical = translate(plan, replicas=self.store.replicas)
        compiled = compile_plan(physical)
        return PreparedPlan(plan=plan, physical=physical, compiled=compiled)

    def execute_prepared(self, prepared: PreparedPlan) -> ExecutionResult:
        """Run an already-prepared plan; return answers + report."""
        compiled = prepared.compiled
        hdfs = HDFS(num_nodes=self.cluster.num_nodes)
        graph = JobGraph()
        for spec in compiled.jobs:
            graph.add(self._build_job(spec, hdfs))
        report = self.engine.execute(graph)
        result_rel = hdfs.read("result")
        rows = set(result_rel.all_rows())
        return ExecutionResult(
            attrs=compiled.final_attrs,
            rows=rows,
            report=report,
            plan=prepared.plan,
            physical=prepared.physical,
            compiled=compiled,
        )

    # -- chain evaluation -------------------------------------------------------

    def _eval_chain(
        self, op: PhysicalOperator, node: int, hdfs: HDFS, metrics: TaskMetrics
    ) -> Relation:
        """Evaluate a map-side chain on one node's local data."""
        if isinstance(op, MapScan):
            triples = self.store.scan(node, op.placement, op.prop, op.type_object)
            metrics.tuples_read += len(triples)
            rows = []
            for triple in triples:
                row = bind_triple(op.pattern, triple)
                if row is not None:
                    rows.append(row)
            return Relation(op.attrs, rows)
        if isinstance(op, Filter):
            # The scan enforces the whole pattern via bind_triple; the
            # filter's accounted work is one check per scanned tuple.
            before = metrics.tuples_read
            child = self._eval_chain(op.child, node, hdfs, metrics)
            metrics.checks += metrics.tuples_read - before
            return child
        if isinstance(op, MapJoin):
            inputs = [self._eval_chain(c, node, hdfs, metrics) for c in op.inputs]
            output = star_join(inputs, on=op.on)
            metrics.join_tuples += sum(len(r) for r in inputs) + len(output)
            metrics.tuples_written += len(output)
            return output
        if isinstance(op, MapShuffler):
            relation = hdfs.read(op.source)
            rows = list(relation.partitions[node])
            metrics.tuples_read += len(rows)
            metrics.tuples_written += len(rows)
            return Relation(relation.attrs, rows)
        if isinstance(op, PhysProject):
            # A pushed-down projection running inside the map task.
            child = self._eval_chain(op.child, node, hdfs, metrics)
            metrics.checks += len(child)
            return child.project(op.on)
        raise TypeError(f"not a map-side operator: {type(op)!r}")

    # -- job construction ----------------------------------------------------------

    def _build_job(self, spec: JobSpec, hdfs: HDFS) -> MapReduceJob:
        num_nodes = self.cluster.num_nodes
        if spec.map_only:
            return self._build_map_only_job(spec, hdfs)

        rj = spec.reduce_join
        assert rj is not None
        num_reducers = num_nodes
        map_tasks: list[MapTask] = []
        for tag, chain in enumerate(spec.map_chains):
            key_attrs = rj.on
            for node in range(num_nodes):
                map_tasks.append(
                    MapTask(
                        node=node,
                        label=f"{spec.name}/m{tag}@{node}",
                        run=self._make_mapper(chain, tag, key_attrs, node, hdfs, num_reducers),
                    )
                )

        child_attrs = tuple(chain.attrs for chain in spec.map_chains)
        project = spec.project

        def reducer(partition: int, grouped: dict[int, list[Row]]) -> tuple[list[Row], TaskMetrics]:
            metrics = TaskMetrics()
            inputs = []
            for tag, attrs in enumerate(child_attrs):
                rows = grouped.get(tag, [])
                metrics.tuples_shuffled += len(rows)
                # Reducers merge-read the transferred runs from disk.
                metrics.tuples_read += len(rows)
                inputs.append(Relation(attrs, rows))
            if any(len(r) == 0 for r in inputs):
                output = Relation(tuple(), [])
                out_rows: list[Row] = []
            else:
                output = star_join(inputs, on=rj.on)
                metrics.join_tuples += sum(len(r) for r in inputs) + len(output)
                if project is not None:
                    metrics.checks += len(output)
                    output = output.project(project)
                out_rows = list(output.rows)
            metrics.tuples_written += len(out_rows)
            return out_rows, metrics

        def on_complete(outputs: list[list[Row]]) -> None:
            attrs = project if project is not None else rj.attrs
            hdfs.write(
                spec.output_name,
                DistributedRelation(attrs=attrs, partitions=outputs),
            )

        return MapReduceJob(
            name=spec.name,
            map_tasks=map_tasks,
            num_reducers=num_reducers,
            reducer=reducer,
            depends_on=spec.depends,
            on_complete=on_complete,
        )

    def _make_mapper(
        self,
        chain: PhysicalOperator,
        tag: int,
        key_attrs: tuple[str, ...],
        node: int,
        hdfs: HDFS,
        num_reducers: int,
    ):
        def run():
            metrics = TaskMetrics()
            relation = self._eval_chain(chain, node, hdfs, metrics)
            # Hadoop spills map output to local disk before the shuffle.
            # Map joins and map shufflers already counted that write
            # (c(MJ)/c(MF) include it, §5.4); bare scan chains have not.
            if not isinstance(chain, (MapJoin, MapShuffler)):
                metrics.tuples_written += len(relation)
            key = relation.key(key_attrs)
            emits = [
                (stable_hash(key(row)) % num_reducers, tag, row)
                for row in relation.rows
            ]
            return emits, [], metrics

        return run

    def _build_map_only_job(self, spec: JobSpec, hdfs: HDFS) -> MapReduceJob:
        chain = spec.map_chains[0]
        project = spec.project
        out_attrs = project if project is not None else chain.attrs

        def make_run(node: int):
            def run():
                metrics = TaskMetrics()
                relation = self._eval_chain(chain, node, hdfs, metrics)
                if project is not None:
                    metrics.checks += len(relation)
                    relation = relation.project(project)
                metrics.tuples_written += len(relation)
                return [], list(relation.rows), metrics

            return run

        map_tasks = [
            MapTask(node=node, label=f"{spec.name}@{node}", run=make_run(node))
            for node in range(self.cluster.num_nodes)
        ]

        def on_complete(outputs: list[list[Row]]) -> None:
            hdfs.write(
                spec.output_name,
                DistributedRelation(attrs=out_attrs, partitions=outputs),
            )

        return MapReduceJob(
            name=spec.name,
            map_tasks=map_tasks,
            depends_on=spec.depends,
            on_complete=on_complete,
        )
