"""Physical MapReduce operators — §5.2.

* Map Scan ``MS[FS]`` — reads one partition file set per node.
* Filter ``F_con`` — constant / repeated-variable checks over a scan.
* Map Join ``MJ_A`` — directed (co-located) join; first-level joins only.
* Map Shuffler ``MF_A`` — repartition phase over a previous job's output.
* Reduce Join ``RJ_A`` — repartition join's join phase.
* Project ``pi_A``.

Operators form a tree mirroring the logical plan; every operator knows
its output attributes so the executor can wire tuples through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rdf.terms import RDF_TYPE, is_variable
from repro.sparql.ast import TriplePattern


class PhysicalOperator:
    """Base class; concrete operators are frozen dataclasses."""

    @property
    def attrs(self) -> tuple[str, ...]:
        raise NotImplementedError

    @property
    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()


@dataclass(frozen=True)
class MapScan(PhysicalOperator):
    """MS[FS]: scan the partition files matching a triple pattern.

    ``placement`` picks the replica (s/p/o) whose co-location the parent
    join relies on.  A bound property narrows the scan to one file; a
    bound rdf:type object narrows it further (§5.1 step 3).
    """

    pattern: TriplePattern
    placement: str

    @property
    def prop(self) -> str | None:
        """The property file selector (None scans the whole replica)."""
        return None if is_variable(self.pattern.p) else self.pattern.p

    @property
    def type_object(self) -> str | None:
        """Object-level file selector, only for bound rdf:type objects."""
        if self.pattern.p == RDF_TYPE and not is_variable(self.pattern.o):
            return self.pattern.o
        return None

    @property
    def attrs(self) -> tuple[str, ...]:
        return self.pattern.variables()

    def file_description(self) -> str:
        """Human-readable file set, like the paper's ``*p7-O`` labels."""
        prop = self.prop or "*"
        suffix = f"-{self.type_object}" if self.type_object else ""
        return f"{prop}{suffix}-{self.placement.upper()}"

    def __str__(self) -> str:
        return f"MS[{self.file_description()}]"


@dataclass(frozen=True)
class Filter(PhysicalOperator):
    """F_con: check the pattern's remaining constants and repeated
    variables on the scanned triples."""

    child: MapScan

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    @property
    def attrs(self) -> tuple[str, ...]:
        return self.child.attrs

    def __str__(self) -> str:
        return f"F({self.child})"


def needs_filter(tp: TriplePattern, scan: MapScan) -> bool:
    """True iff a Filter is required on top of *scan* for *tp*.

    The property (and rdf:type object) constants are enforced by file
    selection; subject/object constants and repeated variables are not.
    """
    if not is_variable(tp.s):
        return True
    if not is_variable(tp.o) and scan.type_object is None:
        return True
    tp_vars = [t for t in (tp.s, tp.p, tp.o) if is_variable(t)]
    return len(tp_vars) != len(set(tp_vars))


@dataclass(frozen=True)
class MapJoin(PhysicalOperator):
    """MJ_A: co-located n-ary join evaluated inside map tasks."""

    on: tuple[str, ...]
    inputs: tuple[PhysicalOperator, ...]

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.inputs

    @property
    def attrs(self) -> tuple[str, ...]:
        return _union_attrs(self.inputs)

    def __str__(self) -> str:
        on = ",".join(a.lstrip("?") for a in self.on)
        return f"MJ_{on}({', '.join(str(c) for c in self.inputs)})"


@dataclass(frozen=True)
class MapShuffler(PhysicalOperator):
    """MF_A: re-partition a previous job's output on new join attributes."""

    on: tuple[str, ...]
    source: str  # HDFS name of the producing reduce join's output
    source_attrs: tuple[str, ...]

    @property
    def attrs(self) -> tuple[str, ...]:
        return self.source_attrs

    def __str__(self) -> str:
        on = ",".join(a.lstrip("?") for a in self.on)
        return f"MF_{on}[{self.source}]"


@dataclass(frozen=True)
class ReduceJoin(PhysicalOperator):
    """RJ_A: the join phase of a repartition join; one MapReduce job."""

    on: tuple[str, ...]
    inputs: tuple[PhysicalOperator, ...]
    output_name: str = field(compare=False, default="")

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.inputs

    @property
    def attrs(self) -> tuple[str, ...]:
        return _union_attrs(self.inputs)

    def __str__(self) -> str:
        on = ",".join(a.lstrip("?") for a in self.on)
        return f"RJ_{on}({', '.join(str(c) for c in self.inputs)})"


@dataclass(frozen=True)
class PhysProject(PhysicalOperator):
    """pi_A: final projection onto the distinguished variables."""

    on: tuple[str, ...]
    child: PhysicalOperator

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    @property
    def attrs(self) -> tuple[str, ...]:
        return self.on

    def __str__(self) -> str:
        on = ",".join(a.lstrip("?") for a in self.on)
        return f"pi[{on}]({self.child})"


def _union_attrs(ops: tuple[PhysicalOperator, ...]) -> tuple[str, ...]:
    out: list[str] = []
    for op in ops:
        for a in op.attrs:
            if a not in out:
                out.append(a)
    return tuple(out)
