"""Physical-plan-to-MapReduce-job mapping — §5.3.

Grouping rules from the paper: projections and filters ride along with
their parent operator's task; map joins and all their ancestors execute
in the same task; every reduce join anchors a task of its own.  Grouping
tasks bottom-up gives one MapReduce job per reduce join (the job's map
tasks are the scan/filter/map-join/map-shuffler chains feeding it); a
plan with no reduce join at all becomes a single map-only job — the
paper's ``M`` annotation in Figs. 20/21.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.physical.operators import (
    MapShuffler,
    PhysicalOperator,
    PhysProject,
    ReduceJoin,
)
from repro.physical.translate import PhysicalPlan


@dataclass
class JobSpec:
    """One MapReduce job: a reduce join plus its map-side input chains,
    or a map-only chain when ``reduce_join`` is None."""

    name: str
    map_chains: list[PhysicalOperator]
    reduce_join: ReduceJoin | None = None
    depends: tuple[str, ...] = ()
    #: final projection, set only on the terminal job
    project: tuple[str, ...] | None = None
    output_name: str = ""

    @property
    def map_only(self) -> bool:
        return self.reduce_join is None


@dataclass
class CompiledPlan:
    """The job DAG for one physical plan."""

    jobs: list[JobSpec] = field(default_factory=list)
    final_attrs: tuple[str, ...] = ()

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    def job_signature(self) -> str:
        """'M' when the plan runs map-only, else the job count (Fig. 20)."""
        if all(job.map_only for job in self.jobs):
            return "M"
        return str(self.num_jobs)


def compile_plan(plan: PhysicalPlan) -> CompiledPlan:
    """Group the physical plan into MapReduce jobs, bottom-up."""
    compiled = CompiledPlan()
    job_of_rj: dict[str, JobSpec] = {}

    def compile_rj(rj: ReduceJoin) -> JobSpec:
        if rj.output_name in job_of_rj:
            return job_of_rj[rj.output_name]
        depends: list[str] = []
        for child in rj.inputs:
            # A shuffler may sit below a pushed-down projection (or any
            # other map-side operator), not only directly under the join;
            # every shuffled source is a scheduling dependency.
            for source in shuffler_sources(child):
                producer = _find_rj(plan, source)
                depends.append(compile_rj(producer).name)
        job = JobSpec(
            name=f"job-{rj.output_name}",
            map_chains=list(rj.inputs),
            reduce_join=rj,
            depends=tuple(dict.fromkeys(depends)),
            output_name=rj.output_name,
        )
        job_of_rj[rj.output_name] = job
        compiled.jobs.append(job)
        return job

    root = plan.root
    project: tuple[str, ...] | None = None
    body = root
    # Unwrap root-level projections; the outermost one (onto the
    # distinguished variables) subsumes any pushed-down inner ones.
    while isinstance(body, PhysProject):
        if project is None:
            project = body.on
        body = body.child
    compiled.final_attrs = project if project is not None else body.attrs

    if isinstance(body, ReduceJoin):
        for rj in plan.reduce_joins:
            compile_rj(rj)
        terminal = job_of_rj[body.output_name]
        terminal.project = project
        terminal.output_name = "result"
    else:
        # Map-only plan: scans / filters / map joins all the way up.
        compiled.jobs.append(
            JobSpec(
                name="job-map-only",
                map_chains=[body],
                project=project,
                output_name="result",
            )
        )
    return compiled


def shuffler_sources(op: PhysicalOperator) -> tuple[str, ...]:
    """The distinct MapShuffler sources inside one map-side chain.

    These are both the chain's scheduling dependencies (the jobs that
    produce those HDFS files) and the HDFS inputs a worker needs shipped
    to evaluate the chain remotely.
    """
    out: list[str] = []
    stack = [op]
    while stack:
        current = stack.pop()
        if isinstance(current, MapShuffler):
            out.append(current.source)
        stack.extend(current.children)
    return tuple(dict.fromkeys(out))


def _find_rj(plan: PhysicalPlan, output_name: str) -> ReduceJoin:
    for rj in plan.reduce_joins:
        if rj.output_name == output_name:
            return rj
    raise KeyError(f"no reduce join produces {output_name!r}")
