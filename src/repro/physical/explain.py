"""Plan explainer: render logical plans, physical plans and MapReduce
job groupings as text — the repo's version of the paper's Fig. 15.

``explain(plan)`` shows all three layers for a logical plan::

    == logical plan (height 2) ==
    pi[p,s](J_p(...))
    == physical plan ==
    pi[p,s]
      RJ_p
        MJ_d
          MS[ub:worksFor-O]
          ...
    == MapReduce jobs (2) ==
    job-rj1 [map+reduce]
      map:  MS[...] ... MJ_d(...)
      reduce: RJ_p -> rj1
"""

from __future__ import annotations

from repro.core.logical import LogicalPlan
from repro.core.properties import height
from repro.physical.job_compiler import CompiledPlan, compile_plan
from repro.physical.operators import PhysicalOperator, ReduceJoin
from repro.physical.translate import PhysicalPlan, translate


def _tree_lines(op: PhysicalOperator, depth: int = 0) -> list[str]:
    label = type(op).__name__
    detail = str(op)
    if op.children:
        # show only the operator head, children rendered below
        head = detail.split("(", 1)[0]
        lines = [f"{'  ' * depth}{head}  [{', '.join(a.lstrip('?') for a in op.attrs)}]"]
        for child in op.children:
            lines.extend(_tree_lines(child, depth + 1))
        return lines
    return [f"{'  ' * depth}{detail}"]


def render_physical(plan: PhysicalPlan) -> str:
    """Indented tree rendering of a physical plan."""
    return "\n".join(_tree_lines(plan.root))


def render_jobs(compiled: CompiledPlan) -> str:
    """One block per MapReduce job, §5.3-style."""
    lines: list[str] = []
    for spec in compiled.jobs:
        kind = "map-only" if spec.map_only else "map+reduce"
        deps = f"  (after {', '.join(spec.depends)})" if spec.depends else ""
        lines.append(f"{spec.name} [{kind}]{deps}")
        for chain in spec.map_chains:
            lines.append(f"  map:    {chain}")
        if spec.reduce_join is not None:
            rj = spec.reduce_join
            on = ",".join(a.lstrip("?") for a in rj.on)
            lines.append(f"  reduce: RJ_{on} -> {spec.output_name}")
        if spec.project is not None:
            on = ",".join(a.lstrip("?") for a in spec.project)
            lines.append(f"  output: pi[{on}]")
    return "\n".join(lines)


def explain(
    plan: LogicalPlan,
    replicas: tuple[str, ...] = ("s", "p", "o"),
    backend: str = "serial",
    template: str | None = None,
) -> str:
    """Full three-layer explanation of a logical plan.

    ``backend`` names the execution backend the jobs would run on
    (serial / thread / process); it changes wall-clock only, never the
    job structure or answers, and is surfaced here so an EXPLAIN of a
    service-configured query shows where its tasks will execute.
    ``template`` is the template-signature digest of a prepared query,
    shown so an EXPLAIN identifies which plan-template cache entry the
    query binds into.
    """
    physical = translate(plan, replicas=replicas)
    compiled = compile_plan(physical)
    header = f"== logical plan (height {height(plan)}"
    if template is not None:
        header += f"; template {template}"
    header += ") =="
    parts = [
        header,
        str(plan),
        "== physical plan ==",
        render_physical(physical),
        f"== MapReduce jobs ({compiled.num_jobs}; signature "
        f"{compiled.job_signature()}; backend {backend}) ==",
        render_jobs(compiled),
    ]
    return "\n".join(parts)


def job_summary(plan: LogicalPlan) -> dict[str, object]:
    """Machine-readable summary used by tools and tests."""
    physical = translate(plan)
    compiled = compile_plan(physical)
    return {
        "height": height(plan),
        "num_jobs": compiled.num_jobs,
        "signature": compiled.job_signature(),
        "reduce_joins": len(physical.reduce_joins),
        "map_only": all(j.map_only for j in compiled.jobs),
    }


__all__ = ["explain", "render_physical", "render_jobs", "job_summary"]
