"""Plan explainer: render logical plans, physical plans and MapReduce
job groupings as text — the repo's version of the paper's Fig. 15.

``explain(plan)`` shows all three layers for a logical plan::

    == logical plan (height 2) ==
    pi[p,s](J_p(...))
    == physical plan ==
    pi[p,s]
      RJ_p
        MJ_d
          MS[ub:worksFor-O]
          ...
    == MapReduce jobs (2) ==
    job-rj1 [map+reduce]
      map:  MS[...] ... MJ_d(...)
      reduce: RJ_p -> rj1
"""

from __future__ import annotations

from typing import Sequence

from repro.core.logical import LogicalPlan
from repro.core.properties import height
from repro.physical.job_compiler import CompiledPlan, compile_plan
from repro.physical.operators import PhysicalOperator, ReduceJoin
from repro.physical.translate import PhysicalPlan, translate


def _tree_lines(op: PhysicalOperator, depth: int = 0) -> list[str]:
    label = type(op).__name__
    detail = str(op)
    if op.children:
        # show only the operator head, children rendered below
        head = detail.split("(", 1)[0]
        lines = [f"{'  ' * depth}{head}  [{', '.join(a.lstrip('?') for a in op.attrs)}]"]
        for child in op.children:
            lines.extend(_tree_lines(child, depth + 1))
        return lines
    return [f"{'  ' * depth}{detail}"]


def render_physical(plan: PhysicalPlan) -> str:
    """Indented tree rendering of a physical plan."""
    return "\n".join(_tree_lines(plan.root))


def render_jobs(compiled: CompiledPlan) -> str:
    """One block per MapReduce job, §5.3-style."""
    lines: list[str] = []
    for spec in compiled.jobs:
        kind = "map-only" if spec.map_only else "map+reduce"
        deps = f"  (after {', '.join(spec.depends)})" if spec.depends else ""
        lines.append(f"{spec.name} [{kind}]{deps}")
        for chain in spec.map_chains:
            lines.append(f"  map:    {chain}")
        if spec.reduce_join is not None:
            rj = spec.reduce_join
            on = ",".join(a.lstrip("?") for a in rj.on)
            lines.append(f"  reduce: RJ_{on} -> {spec.output_name}")
        if spec.project is not None:
            on = ",".join(a.lstrip("?") for a in spec.project)
            lines.append(f"  output: pi[{on}]")
    return "\n".join(lines)


def render_shard_distribution(
    compiled: CompiledPlan,
    shard_map: Sequence[int],
    shard_triples: Sequence[int] | None = None,
) -> str:
    """Per-shard task/data distribution of a compiled plan.

    ``shard_map[n]`` is the shard owning logical node *n* (the sharded
    store's ``node_shards``); ``shard_triples`` the stored-triple count
    per shard.  Shows, per shard, the nodes it owns, how many of the
    plan's map tasks and reduce partitions land on it, and how much of
    the store it holds — the pre-execution view of where a sharded
    query's work will run.
    """
    num_nodes = len(shard_map)
    num_shards = max(shard_map) + 1 if shard_map else 1
    lines = [f"== shard distribution ({num_shards} shards over {num_nodes} nodes) =="]
    for shard in range(num_shards):
        nodes = [n for n in range(num_nodes) if shard_map[n] == shard]
        map_tasks = sum(
            len(spec.map_chains) * len(nodes) for spec in compiled.jobs
        )
        reduce_parts = sum(
            sum(1 for p in range(num_nodes) if shard_map[p % num_nodes] == shard)
            for spec in compiled.jobs
            if not spec.map_only
        )
        line = (
            f"shard {shard}: nodes {','.join(map(str, nodes)) or '-'} | "
            f"{map_tasks} map tasks, {reduce_parts} reduce partitions"
        )
        if shard_triples is not None:
            line += f" | {shard_triples[shard]} stored triples"
        lines.append(line)
    return "\n".join(lines)


def explain(
    plan: LogicalPlan,
    replicas: tuple[str, ...] = ("s", "p", "o"),
    backend: str = "serial",
    template: str | None = None,
    shard_map: Sequence[int] | None = None,
    shard_triples: Sequence[int] | None = None,
    transport: str | None = None,
    rows: str | None = None,
    wire: str | None = None,
    wire_bytes: int | None = None,
) -> str:
    """Full three-layer explanation of a logical plan.

    ``backend`` names the execution backend the jobs would run on
    (serial / thread / process / columnar); it changes wall-clock only,
    never the job structure or answers, and is surfaced here so an
    EXPLAIN of a service-configured query shows where its tasks will
    execute.  ``rows`` names the in-flight row representation the
    backend evaluates ("tuple" term-tuples or "columnar"
    dictionary-encoded id blocks).  ``template`` is the
    template-signature digest of a prepared query, shown so an EXPLAIN
    identifies which plan-template cache entry the query binds into.
    ``shard_map``/``shard_triples`` (set when a sharded store is
    active) append the per-shard row/task distribution; ``transport``
    names the shard boundary ("inproc" backends or "rpc" shard server
    processes) the tasks would cross, ``wire`` the row encoding of the
    rpc frames ("columnar" id buffers + dictionary delta, or "pickle"),
    and ``wire_bytes`` the encoded request bytes the service last
    measured shipping over that wire — so benchmark tables and explains
    agree on what was measured.
    """
    physical = translate(plan, replicas=replicas)
    compiled = compile_plan(physical)
    header = f"== logical plan (height {height(plan)}"
    if template is not None:
        header += f"; template {template}"
    header += ") =="
    jobs_header = (
        f"== MapReduce jobs ({compiled.num_jobs}; signature "
        f"{compiled.job_signature()}; backend {backend}"
    )
    if rows is not None:
        jobs_header += f"; rows {rows}"
    if transport is not None:
        jobs_header += f"; transport {transport}"
    if wire is not None:
        jobs_header += f"; wire {wire}"
        if wire_bytes is not None:
            jobs_header += f" ({wire_bytes} B last shipped)"
    jobs_header += ") =="
    parts = [
        header,
        str(plan),
        "== physical plan ==",
        render_physical(physical),
        jobs_header,
        render_jobs(compiled),
    ]
    if shard_map is not None:
        parts.append(
            render_shard_distribution(compiled, shard_map, shard_triples)
        )
    return "\n".join(parts)


def job_summary(plan: LogicalPlan) -> dict[str, object]:
    """Machine-readable summary used by tools and tests."""
    physical = translate(plan)
    compiled = compile_plan(physical)
    return {
        "height": height(plan),
        "num_jobs": compiled.num_jobs,
        "signature": compiled.job_signature(),
        "reduce_joins": len(physical.reduce_joins),
        "map_only": all(j.map_only for j in compiled.jobs),
    }


__all__ = [
    "explain",
    "render_physical",
    "render_jobs",
    "render_shard_distribution",
    "job_summary",
]
