"""repro.physical subpackage."""
