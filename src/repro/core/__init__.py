"""repro.core subpackage."""
