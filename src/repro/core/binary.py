"""Binary-plan baselines for Fig. 20: bushy and linear (left-deep) plans.

The paper compares the CliqueSquare-MSC plan against "the best binary
bushy plan and the best binary linear plan", found by building all of
them and keeping the cheapest under the §5.4 cost model.  We obtain the
same optimum with dynamic programming over connected pattern subsets
(the cost model is additive over operators and its cardinality estimates
are subset-determined, so optimal substructure holds); an exhaustive
enumerator is provided for small queries and tests the DP against
brute force.

No cartesian products: every subplan covers a connected subquery and
every join has at least one shared variable, as the paper assumes (§2).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.logical import LogicalOperator, LogicalPlan, Match, make_join
from repro.sparql.ast import BGPQuery

#: Costs a complete operator sub-DAG (e.g. ``PlanCoster.cost``).
Coster = Callable[[LogicalOperator], float]


def _adjacency(query: BGPQuery) -> list[int]:
    """adj[i] = bitmask of patterns sharing a variable with pattern i."""
    n = len(query.patterns)
    adj = [0] * n
    for i in range(n):
        vi = set(query.patterns[i].variables())
        for j in range(i + 1, n):
            if vi & set(query.patterns[j].variables()):
                adj[i] |= 1 << j
                adj[j] |= 1 << i
    return adj


def _connected(mask: int, adj: list[int]) -> bool:
    """True iff the pattern subset *mask* induces a connected subgraph."""
    if mask == 0:
        return False
    start = mask & -mask
    seen = start
    frontier = start
    while frontier:
        reach = 0
        m = frontier
        while m:
            low = m & -m
            i = low.bit_length() - 1
            reach |= adj[i] & mask
            m ^= low
        frontier = reach & ~seen
        seen |= frontier
    return seen == mask


def _joinable(mask1: int, mask2: int, adj: list[int]) -> bool:
    """True iff some pattern of mask1 shares a variable with mask2."""
    m = mask1
    while m:
        low = m & -m
        if adj[low.bit_length() - 1] & mask2:
            return True
        m ^= low
    return False


def connected_subsets(query: BGPQuery) -> list[int]:
    """All bitmasks of connected pattern subsets, ordered by size."""
    adj = _adjacency(query)
    n = len(query.patterns)
    out = [mask for mask in range(1, 1 << n) if _connected(mask, adj)]
    out.sort(key=lambda m: m.bit_count())
    return out


# -- exhaustive enumeration (small queries, testing) ------------------------


def iter_bushy_plans(query: BGPQuery, max_plans: int | None = None) -> Iterator[LogicalPlan]:
    """Every binary bushy plan (all binary join trees, linear included),
    without cartesian products.  Exponential; for small queries/tests."""
    adj = _adjacency(query)
    n = len(query.patterns)
    full = (1 << n) - 1
    memo: dict[int, list[LogicalOperator]] = {}

    def plans(mask: int) -> list[LogicalOperator]:
        if mask in memo:
            return memo[mask]
        if mask.bit_count() == 1:
            i = mask.bit_length() - 1
            result: list[LogicalOperator] = [Match(query.patterns[i])]
            memo[mask] = result
            return result
        result = []
        # Enumerate unordered splits: fix the lowest bit on the left side.
        low = mask & -mask
        rest = mask ^ low
        sub = rest
        while True:
            left = low | sub
            right = mask ^ left
            if (
                right
                and _connected(left, adj)
                and _connected(right, adj)
                and _joinable(left, right, adj)
            ):
                for p1 in plans(left):
                    for p2 in plans(right):
                        result.append(make_join([p1, p2]))
            if sub == 0:
                break
            sub = (sub - 1) & rest
        memo[mask] = result
        return result

    produced = 0
    for body in plans(full):
        yield LogicalPlan.wrap(body, query)
        produced += 1
        if max_plans is not None and produced >= max_plans:
            return


def iter_linear_plans(query: BGPQuery, max_plans: int | None = None) -> Iterator[LogicalPlan]:
    """Every left-deep binary plan without cartesian products."""
    adj = _adjacency(query)
    n = len(query.patterns)
    produced = 0

    def extend(op: LogicalOperator, used: int) -> Iterator[LogicalOperator]:
        if used.bit_count() == n:
            yield op
            return
        for i in range(n):
            bit = 1 << i
            if used & bit or not (adj[i] & used):
                continue
            yield from extend(make_join([op, Match(query.patterns[i])]), used | bit)

    if n == 1:
        yield LogicalPlan.wrap(Match(query.patterns[0]), query)
        return
    for i in range(n):
        for body in extend(Match(query.patterns[i]), 1 << i):
            yield LogicalPlan.wrap(body, query)
            produced += 1
            if max_plans is not None and produced >= max_plans:
                return


def count_bushy_plans(query: BGPQuery) -> int:
    """Number of binary bushy plans (product-free join trees)."""
    adj = _adjacency(query)
    n = len(query.patterns)
    memo: dict[int, int] = {}

    def count(mask: int) -> int:
        if mask.bit_count() == 1:
            return 1
        if mask in memo:
            return memo[mask]
        total = 0
        low = mask & -mask
        rest = mask ^ low
        sub = rest
        while True:
            left = low | sub
            right = mask ^ left
            if (
                right
                and _connected(left, adj)
                and _connected(right, adj)
                and _joinable(left, right, adj)
            ):
                total += count(left) * count(right)
            if sub == 0:
                break
            sub = (sub - 1) & rest
        memo[mask] = total
        return total

    return count((1 << n) - 1)


# -- best plans (dynamic programming) ---------------------------------------


def best_bushy_plan(query: BGPQuery, coster: Coster) -> tuple[LogicalPlan, float]:
    """Cheapest binary bushy plan under an additive cost model."""
    adj = _adjacency(query)
    n = len(query.patterns)
    best: dict[int, tuple[float, LogicalOperator]] = {}
    for i in range(n):
        op = Match(query.patterns[i])
        best[1 << i] = (coster(op), op)
    for mask in connected_subsets(query):
        if mask.bit_count() == 1:
            continue
        candidate: tuple[float, LogicalOperator] | None = None
        low = mask & -mask
        rest = mask ^ low
        sub = rest
        while True:
            left = low | sub
            right = mask ^ left
            if right and left in best and right in best and _joinable(left, right, adj):
                op = make_join([best[left][1], best[right][1]])
                cost = coster(op)
                if candidate is None or cost < candidate[0]:
                    candidate = (cost, op)
            if sub == 0:
                break
            sub = (sub - 1) & rest
        if candidate is not None:
            best[mask] = candidate
    full = (1 << n) - 1
    if full not in best:
        raise ValueError("query is not connected: no product-free bushy plan")
    cost, body = best[full]
    plan = LogicalPlan.wrap(body, query)
    return plan, cost


def best_linear_plan(query: BGPQuery, coster: Coster) -> tuple[LogicalPlan, float]:
    """Cheapest left-deep binary plan under an additive cost model."""
    adj = _adjacency(query)
    n = len(query.patterns)
    best: dict[int, tuple[float, LogicalOperator]] = {}
    for i in range(n):
        op = Match(query.patterns[i])
        best[1 << i] = (coster(op), op)
    for mask in connected_subsets(query):
        size = mask.bit_count()
        if size == 1:
            continue
        candidate: tuple[float, LogicalOperator] | None = None
        m = mask
        while m:
            bit = m & -m
            m ^= bit
            left = mask ^ bit
            if left not in best:
                continue
            i = bit.bit_length() - 1
            if not (adj[i] & left):
                continue
            op = make_join([best[left][1], Match(query.patterns[i])])
            cost = coster(op)
            if candidate is None or cost < candidate[0]:
                candidate = (cost, op)
        if candidate is not None:
            best[mask] = candidate
    full = (1 << n) - 1
    if full not in best:
        raise ValueError("query is not connected: no product-free linear plan")
    cost, body = best[full]
    plan = LogicalPlan.wrap(body, query)
    return plan, cost
