"""The eight clique-decomposition options of §4.3.

A decomposition option is determined by three choices:

* clique kind — maximal only (``+`` suffix) or partial;
* cover kind — exact (``XC``) or simple (``SC``);
* retained covers — minimum-size only (``M`` prefix) or all.

This yields MXC+, XC+, MSC+, SC+, MXC, XC, MSC, SC.  Each option turns a
variable graph into a set of decompositions; the CliqueSquare algorithm
recurses over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.cliques import candidate_cliques
from repro.core.covers import (
    EnumerationBudget,
    iter_exact_covers,
    iter_simple_covers,
    masks_of,
    minimum_covers,
)
from repro.core.variable_graph import (
    Clique,
    Decomposition,
    VariableGraph,
    canonical_decomposition,
)


@dataclass(frozen=True)
class DecompositionOption:
    """One point in the option cube of §4.3 (see also Fig. 6)."""

    name: str
    maximal_only: bool  # True -> '+' options
    exact: bool  # True -> XC family, False -> SC family
    minimum: bool  # True -> 'M' prefix

    def __str__(self) -> str:
        return self.name

    def comparison_triple(self, other: "DecompositionOption") -> tuple[str, str, str]:
        """The (o1, o2, o3) comparison triple of Theorem 4.1 / Fig. 6.

        o1: clique kinds (maximal < partial); o2: cover kinds (exact <
        simple); o3: retained covers (minimum < all).
        """

        def cmp(self_restrictive: bool, other_restrictive: bool) -> str:
            if self_restrictive == other_restrictive:
                return "="
            return "<" if self_restrictive else ">"

        return (
            cmp(self.maximal_only, other.maximal_only),
            cmp(self.exact, other.exact),
            cmp(self.minimum, other.minimum),
        )

    def dominated_by(self, other: "DecompositionOption") -> bool:
        """True iff '<' dominates the comparison triple (Prop. 4.1):
        this option's plan space is included in *other*'s."""
        triple = self.comparison_triple(other)
        return "<" in triple and ">" not in triple


MXC_PLUS = DecompositionOption("MXC+", maximal_only=True, exact=True, minimum=True)
XC_PLUS = DecompositionOption("XC+", maximal_only=True, exact=True, minimum=False)
MSC_PLUS = DecompositionOption("MSC+", maximal_only=True, exact=False, minimum=True)
SC_PLUS = DecompositionOption("SC+", maximal_only=True, exact=False, minimum=False)
MXC = DecompositionOption("MXC", maximal_only=False, exact=True, minimum=True)
XC = DecompositionOption("XC", maximal_only=False, exact=True, minimum=False)
MSC = DecompositionOption("MSC", maximal_only=False, exact=False, minimum=True)
SC = DecompositionOption("SC", maximal_only=False, exact=False, minimum=False)

#: All eight options, in the paper's Fig. 16 row order.
ALL_OPTIONS: tuple[DecompositionOption, ...] = (
    MXC_PLUS,
    XC_PLUS,
    MSC_PLUS,
    SC_PLUS,
    MXC,
    XC,
    MSC,
    SC,
)

OPTIONS_BY_NAME: dict[str, DecompositionOption] = {o.name: o for o in ALL_OPTIONS}

#: The options the paper deems viable after §6.2 (Fig. 16 discussion).
VIABLE_OPTIONS: tuple[DecompositionOption, ...] = (MSC_PLUS, SC_PLUS, MXC, MSC)


def decompositions(
    graph: VariableGraph,
    option: DecompositionOption,
    budget: EnumerationBudget | None = None,
) -> Iterator[Decomposition]:
    """Enumerate the clique decompositions of *graph* under *option*.

    Every yielded decomposition satisfies Definition 3.3 (full node
    coverage and |D| < |N|).  May be empty — notably for MXC+/XC+ on
    queries like Fig. 10 ("when MXC+ and XC+ fail").
    """
    n = len(graph)
    if n <= 1:
        return
    cliques = candidate_cliques(graph, option.maximal_only)
    if not cliques:
        return
    masks = masks_of(n, cliques)
    max_size = n - 1  # Def. 3.3: strictly fewer cliques than nodes

    if option.minimum:
        covers = minimum_covers(n, masks, exact=option.exact, budget=budget)
    elif option.exact:
        covers = iter_exact_covers(n, masks, max_size, budget=budget)
    else:
        covers = iter_simple_covers(n, masks, max_size, budget=budget)

    for cover in covers:
        yield canonical_decomposition([cliques[j] for j in cover])


def count_decompositions(
    graph: VariableGraph,
    option: DecompositionOption,
    budget: EnumerationBudget | None = None,
) -> int:
    """Number of decompositions of *graph* under *option* (capped by budget)."""
    return sum(1 for _ in decompositions(graph, option, budget))


def has_decomposition(graph: VariableGraph, option: DecompositionOption) -> bool:
    """True iff at least one decomposition exists under *option*."""
    return next(decompositions(graph, option), None) is not None
