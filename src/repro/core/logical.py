"""Logical CliqueSquare operators and plans — §4.1.

Operators: Match (leaf, one triple pattern), n-ary Join on an attribute
set A, Select, Project.  A logical plan is a rooted DAG of operators;
sub-DAGs can be shared (simple covers yield DAG plans).

All operators are immutable and structurally hashable, so two plans that
are "the same" compare equal — which is how duplicate plans produced by
different decomposition sequences are detected (the uniqueness ratio of
Fig. 19).  Join children are kept in a canonical order so that operator
equality is insensitive to enumeration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cache
from typing import Callable, Iterator

from repro.sparql.ast import BGPQuery, TriplePattern


class LogicalOperator:
    """Base class for logical operators.  Subclasses are frozen dataclasses."""

    @property
    def attrs(self) -> tuple[str, ...]:
        """Output attributes (variable names), in canonical order."""
        raise NotImplementedError

    @property
    def children(self) -> tuple["LogicalOperator", ...]:
        return ()

    def patterns(self) -> frozenset[TriplePattern]:
        """The triple patterns this operator's sub-DAG covers."""
        out: set[TriplePattern] = set()
        for child in self.children:
            out |= child.patterns()
        return frozenset(out)

    def iter_operators(self) -> Iterator["LogicalOperator"]:
        """All distinct operators of the sub-DAG, parents before children."""
        seen: set[int] = set()
        stack: list[LogicalOperator] = [self]
        while stack:
            op = stack.pop()
            if id(op) in seen:
                continue
            seen.add(id(op))
            yield op
            stack.extend(op.children)


@dataclass(frozen=True)
class Match(LogicalOperator):
    """Match M_tp: the relation of triples matching a triple pattern."""

    pattern: TriplePattern

    @property
    def attrs(self) -> tuple[str, ...]:
        return self.pattern.variables()

    def patterns(self) -> frozenset[TriplePattern]:
        return frozenset([self.pattern])

    def __str__(self) -> str:
        return f"M[{self.pattern}]"


@dataclass(frozen=True)
class Join(LogicalOperator):
    """n-ary star equality join J_A(op1..opm).

    ``on`` is the attribute set A — the variables shared by *all* inputs.
    Equalities on attributes shared by only some inputs are enforced too
    (the §4.2 residual selections, folded into natural-join semantics).
    """

    on: tuple[str, ...]
    inputs: tuple[LogicalOperator, ...]

    def __post_init__(self) -> None:
        if len(self.inputs) < 2:
            raise ValueError("a join needs at least two inputs")
        shared = set(self.inputs[0].attrs)
        for child in self.inputs[1:]:
            shared &= set(child.attrs)
        if not set(self.on) <= shared:
            raise ValueError(
                f"join attributes {self.on} not shared by all inputs"
            )
        if not self.on:
            raise ValueError("empty join attribute set (cartesian product)")

    @property
    def children(self) -> tuple[LogicalOperator, ...]:
        return self.inputs

    @property
    def attrs(self) -> tuple[str, ...]:
        out: list[str] = []
        for child in self.inputs:
            for a in child.attrs:
                if a not in out:
                    out.append(a)
        return tuple(out)

    def __str__(self) -> str:
        on = ",".join(a.lstrip("?") for a in self.on)
        return f"J_{on}({', '.join(str(c) for c in self.inputs)})"


@dataclass(frozen=True)
class Select(LogicalOperator):
    """Select sigma_c: keep tuples satisfying a conjunction of equalities.

    Conditions are (attribute, constant) pairs.  With natural-join
    semantics and constant filtering at match level, logical plans rarely
    need explicit selections; the operator exists for completeness and
    for hand-built plans.
    """

    conditions: tuple[tuple[str, str], ...]
    child: LogicalOperator

    @property
    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    @property
    def attrs(self) -> tuple[str, ...]:
        return self.child.attrs

    def __str__(self) -> str:
        conds = ",".join(f"{a}={v}" for a, v in self.conditions)
        return f"S[{conds}]({self.child})"


@dataclass(frozen=True)
class Project(LogicalOperator):
    """Project pi_A onto an attribute list."""

    on: tuple[str, ...]
    child: LogicalOperator

    def __post_init__(self) -> None:
        missing = set(self.on) - set(self.child.attrs)
        if missing:
            raise ValueError(f"projection attrs {missing} missing from child")

    @property
    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    @property
    def attrs(self) -> tuple[str, ...]:
        return self.on

    def __str__(self) -> str:
        on = ",".join(a.lstrip("?") for a in self.on)
        return f"pi[{on}]({self.child})"


def rewrite_patterns(
    op: LogicalOperator,
    pattern_fn: Callable[[TriplePattern], TriplePattern],
    _memo: dict[int, LogicalOperator] | None = None,
) -> LogicalOperator:
    """Rebuild a sub-DAG with every Match pattern passed through
    *pattern_fn*, preserving shared-sub-DAG identity (simple covers).

    Used by the prepared-query machinery to move a plan between its
    template form (parameter placeholders) and a bound form (concrete
    constants); ``pattern_fn`` must not change which variables a pattern
    mentions, so joins and projections revalidate unchanged.
    """
    memo = _memo if _memo is not None else {}
    cached = memo.get(id(op))
    if cached is not None:
        return cached
    if isinstance(op, Match):
        new: LogicalOperator = Match(pattern=pattern_fn(op.pattern))
    elif isinstance(op, Join):
        new = Join(
            on=op.on,
            inputs=tuple(
                rewrite_patterns(c, pattern_fn, memo) for c in op.inputs
            ),
        )
    elif isinstance(op, Select):
        new = Select(
            conditions=op.conditions,
            child=rewrite_patterns(op.child, pattern_fn, memo),
        )
    elif isinstance(op, Project):
        new = Project(
            on=op.on, child=rewrite_patterns(op.child, pattern_fn, memo)
        )
    else:
        raise TypeError(f"unknown operator {type(op)!r}")
    memo[id(op)] = new
    return new


@cache
def signature(op: LogicalOperator) -> tuple:
    """A canonical, hashable, order-insensitive description of a sub-DAG.

    Used to sort join children deterministically and to deduplicate plans.
    """
    if isinstance(op, Match):
        return ("M", str(op.pattern))
    if isinstance(op, Join):
        return ("J", op.on, tuple(sorted(signature(c) for c in op.inputs)))
    if isinstance(op, Select):
        return ("S", op.conditions, signature(op.child))
    if isinstance(op, Project):
        return ("P", op.on, signature(op.child))
    raise TypeError(f"unknown operator {type(op)!r}")


def make_join(inputs: list[LogicalOperator]) -> LogicalOperator:
    """Build a canonical n-ary join: children deduplicated and sorted, A =
    the attributes shared by all inputs.  A single (after dedup) input is
    returned unchanged."""
    unique: list[LogicalOperator] = []
    seen: set[tuple] = set()
    for op in inputs:
        sig = signature(op)
        if sig not in seen:
            seen.add(sig)
            unique.append(op)
    if len(unique) == 1:
        return unique[0]
    unique.sort(key=signature)
    shared = set(unique[0].attrs)
    for op in unique[1:]:
        shared &= set(op.attrs)
    on = tuple(sorted(shared))
    return Join(on=on, inputs=tuple(unique))


@dataclass(frozen=True)
class LogicalPlan:
    """A complete logical plan for a query: an operator DAG whose root
    projects onto the distinguished variables."""

    root: LogicalOperator
    query: BGPQuery

    @classmethod
    def wrap(cls, body: LogicalOperator, query: BGPQuery) -> "LogicalPlan":
        """Add the final projection (§4.2) on top of a plan body."""
        root: LogicalOperator = body
        if tuple(query.distinguished) != body.attrs:
            root = Project(on=tuple(query.distinguished), child=body)
        return cls(root=root, query=query)

    @property
    def body(self) -> LogicalOperator:
        """The plan without its final projection."""
        return self.root.child if isinstance(self.root, Project) else self.root

    def signature(self) -> tuple:
        return signature(self.root)

    def __hash__(self) -> int:
        return hash(self.signature())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogicalPlan):
            return NotImplemented
        return self.signature() == other.signature()

    def __str__(self) -> str:
        return str(self.root)
