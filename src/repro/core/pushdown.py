"""Projection pushdown — the "projections are pushed down etc." of §4.2.

Narrows every operator's output to the attributes actually needed above
it: the distinguished variables, the join keys, and any attribute shared
with a sibling join input (those carry the natural-join equalities, the
folded-in residual selections of §4.2 — pruning them would change the
query).  Projections are inserted exactly where they prune something.

The pass preserves answers exactly (tested against unpushed plans); what
it buys is narrower intermediate tuples — fewer bytes written, shuffled
and stored between jobs.  The §5.4 cost model counts tuples rather than
bytes, so the paper (and this repo) use pushdown as a fixed rewrite, not
a cost-based choice.
"""

from __future__ import annotations

from repro.core.logical import (
    Join,
    LogicalOperator,
    LogicalPlan,
    Match,
    Project,
    Select,
)


def _accumulate_needed(root: LogicalOperator, base: set[str]) -> dict[int, set[str]]:
    """Top-down pass: for every operator, the union of attributes its
    parents require (DAG-aware: shared sub-plans get the union over all
    their consumers)."""
    needed: dict[int, set[str]] = {id(root): set(base)}
    order: list[LogicalOperator] = []
    seen: set[int] = set()
    stack = [root]
    while stack:
        op = stack.pop()
        if id(op) in seen:
            continue
        seen.add(id(op))
        order.append(op)
        stack.extend(op.children)

    # Parents appear before children in a DFS from the root only if we
    # process in topological order; recompute via repeated relaxation
    # (plans are tiny, this converges in one pass over a topo order).
    for op in order:
        mine = needed.setdefault(id(op), set())
        if isinstance(op, Project):
            needed.setdefault(id(op.child), set()).update(op.on)
        elif isinstance(op, Select):
            child_need = set(mine)
            child_need.update(a for a, _ in op.conditions)
            needed.setdefault(id(op.child), set()).update(child_need)
        elif isinstance(op, Join):
            for child in op.inputs:
                keep = set(child.attrs) & mine
                keep.update(op.on)
                # attributes shared with a sibling carry join equalities
                for sibling in op.inputs:
                    if sibling is not child:
                        keep.update(set(child.attrs) & set(sibling.attrs))
                needed.setdefault(id(child), set()).update(keep)
    return needed


def _rebuild(
    op: LogicalOperator,
    needed: dict[int, set[str]],
    memo: dict[int, LogicalOperator],
) -> LogicalOperator:
    if id(op) in memo:
        return memo[id(op)]
    mine = needed[id(op)] & set(op.attrs)
    if isinstance(op, Match):
        result: LogicalOperator = op
    elif isinstance(op, Join):
        children = tuple(
            _rebuild(child, needed, memo) for child in op.inputs
        )
        result = Join(on=op.on, inputs=children)
    elif isinstance(op, Select):
        result = Select(conditions=op.conditions, child=_rebuild(op.child, needed, memo))
    elif isinstance(op, Project):
        result = Project(on=op.on, child=_rebuild(op.child, needed, memo))
        memo[id(op)] = result
        return result
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown operator {type(op)!r}")

    if mine and mine < set(result.attrs):
        ordered = tuple(a for a in result.attrs if a in mine)
        result = Project(on=ordered, child=result)
    memo[id(op)] = result
    return result


def pushdown_projections(plan: LogicalPlan) -> LogicalPlan:
    """Return an equivalent plan with projections pushed down.

    The root projection onto the distinguished variables is preserved;
    below it, every operator is narrowed to its needed attributes.
    """
    base = set(plan.query.distinguished)
    needed = _accumulate_needed(plan.root, base)
    rebuilt = _rebuild(plan.root, needed, {})
    if isinstance(rebuilt, Project) and rebuilt.on == tuple(plan.query.distinguished):
        return LogicalPlan(root=rebuilt, query=plan.query)
    return LogicalPlan.wrap(
        rebuilt.child if isinstance(rebuilt, Project) and set(rebuilt.on) == base
        else rebuilt,
        plan.query,
    )


def max_operator_width(plan: LogicalPlan) -> int:
    """The widest intermediate schema in the plan (pushdown's target)."""
    return max(len(op.attrs) for op in plan.root.iter_operators())
