"""Plan properties and plan-space analysis — §4.4.

Height (flatness), levels, height optimality (HO), and the plan-space
metrics the paper reports: plan counts (Fig. 16), optimality ratio
(Fig. 17), uniqueness ratio (Fig. 19), plus set-level comparisons backing
the inclusion lattice (Fig. 7) and HO classification (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.algorithm import OptimizerResult, cliquesquare
from repro.core.decomposition import MSC, DecompositionOption
from repro.core.logical import Join, LogicalOperator, LogicalPlan
from repro.sparql.ast import BGPQuery


def operator_height(op: LogicalOperator, _memo: dict[int, int] | None = None) -> int:
    """Largest number of join operators on a path from *op* to a leaf."""
    memo = _memo if _memo is not None else {}
    key = id(op)
    if key in memo:
        return memo[key]
    below = max((operator_height(c, memo) for c in op.children), default=0)
    height = below + (1 if isinstance(op, Join) else 0)
    memo[key] = height
    return height


def height(plan: LogicalPlan) -> int:
    """Plan height h(p): successive joins on the longest root-to-leaf path.

    For a CliqueSquare plan this equals the number of clique reductions
    that produced it (§4.4).
    """
    return operator_height(plan.root)


def join_operators(plan: LogicalPlan) -> list[Join]:
    """All distinct join operators of the plan DAG."""
    return [op for op in plan.root.iter_operators() if isinstance(op, Join)]


def max_join_fanin(plan: LogicalPlan) -> int:
    """Largest number of inputs of any join (n-ary-ness of the plan)."""
    return max((len(j.inputs) for j in join_operators(plan)), default=0)


def is_binary(plan: LogicalPlan) -> bool:
    """True iff every join in the plan has exactly two inputs."""
    return all(len(j.inputs) == 2 for j in join_operators(plan))


def optimal_height(query: BGPQuery, timeout_s: float | None = 100.0) -> int:
    """The minimum height over P(q).

    CliqueSquare-MSC is HO-partial (Theorem 4.3): for every query its
    plan space contains at least one height-optimal plan, so the minimum
    over the (small) MSC space is the optimum.  Tests validate this
    against the full SC space on small queries.
    """
    result = cliquesquare(query, MSC, max_plans=None, timeout_s=timeout_s)
    if not result.plans:
        raise ValueError(f"MSC produced no plan for {query}")
    return min(height(p) for p in result.plans)


@dataclass
class PlanSpaceStats:
    """Per-(query, option) statistics matching the §6.2 figures."""

    query: BGPQuery
    option: DecompositionOption
    plan_count: int
    unique_count: int
    ho_count: int
    optimal_height: int
    min_height: int | None
    elapsed_s: float
    truncated: bool

    @property
    def optimality_ratio(self) -> float:
        """#HO plans / #plans; 0 when the option found no plan (Fig. 17)."""
        if self.plan_count == 0:
            return 0.0
        return self.ho_count / self.plan_count

    @property
    def uniqueness_ratio(self) -> float:
        """#unique plans / #plans; 1 when no plan was produced (Fig. 19)."""
        if self.plan_count == 0:
            return 1.0
        return self.unique_count / self.plan_count

    @property
    def found_optimal(self) -> bool:
        """True iff at least one height-optimal plan was produced."""
        return self.min_height is not None and self.min_height == self.optimal_height


def analyze_plan_space(
    query: BGPQuery,
    option: DecompositionOption,
    max_plans: int | None = 200_000,
    timeout_s: float | None = 100.0,
    reference_height: int | None = None,
) -> PlanSpaceStats:
    """Run CliqueSquare-<option> and compute the §6.2 statistics.

    ``reference_height`` lets callers share the HO reference across
    options instead of recomputing it per option.
    """
    result = cliquesquare(query, option, max_plans=max_plans, timeout_s=timeout_s)
    opt_h = (
        reference_height
        if reference_height is not None
        else optimal_height(query, timeout_s=timeout_s)
    )
    heights = [height(p) for p in result.plans]
    return PlanSpaceStats(
        query=query,
        option=option,
        plan_count=len(result.plans),
        unique_count=len(result.unique_plans()),
        ho_count=sum(1 for h in heights if h == opt_h),
        optimal_height=opt_h,
        min_height=min(heights) if heights else None,
        elapsed_s=result.elapsed_s,
        truncated=result.truncated,
    )


def plan_space_signatures(result: OptimizerResult) -> frozenset[tuple]:
    """The plan space as a set of canonical plan signatures (for the
    inclusion checks of Fig. 7)."""
    return frozenset(p.signature() for p in result.plans)


def is_height_optimal(plan: LogicalPlan, query: BGPQuery | None = None) -> bool:
    """True iff the plan is HO for its query (Definition 4.1)."""
    q = query if query is not None else plan.query
    return height(plan) == optimal_height(q)
