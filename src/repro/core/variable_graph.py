"""Variable (multi)graphs — Definitions 3.1, 3.3 and 3.4 of the paper.

A variable graph of a BGP query is a labeled multigraph whose nodes are
*sets of triple patterns* and whose edges connect two distinct nodes with
label ``v`` iff their pattern sets join on variable ``v``.  The initial
graph has one node per triple pattern; clique reductions (Def. 3.4)
produce smaller graphs whose nodes carry unions of patterns, together with
*provenance*: which clique of the previous graph each node came from —
exactly the information CREATEQUERYPLANS (§4.2) needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.sparql.ast import BGPQuery, TriplePattern

#: A clique is a set of node indices of the graph it was found in.
Clique = frozenset[int]

#: A decomposition is a canonically-ordered tuple of cliques (Def. 3.3).
Decomposition = tuple[Clique, ...]


def canonical_decomposition(cliques: Sequence[Clique]) -> Decomposition:
    """Order cliques deterministically (by sorted node indices)."""
    return tuple(sorted(set(cliques), key=lambda c: sorted(c)))


@dataclass(frozen=True)
class VariableGraph:
    """A variable multigraph plus provenance from its parent graph.

    ``nodes[i]`` is the set of triple patterns of node *i*.  For reduced
    graphs, ``provenance[i]`` is the clique (over the *parent* graph's
    node indices) that produced node *i*; it is ``None`` for the initial
    query graph.
    """

    nodes: tuple[frozenset[TriplePattern], ...]
    provenance: tuple[Clique, ...] | None = field(default=None, compare=False)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_query(cls, query: BGPQuery) -> "VariableGraph":
        """Initial variable graph: one node per triple pattern (§3.1)."""
        return cls(nodes=tuple(frozenset([tp]) for tp in query.patterns))

    @classmethod
    def from_patterns(cls, patterns: Sequence[TriplePattern]) -> "VariableGraph":
        """Initial variable graph straight from a pattern list."""
        return cls(nodes=tuple(frozenset([tp]) for tp in patterns))

    # -- basic inspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node_variables(self, i: int) -> frozenset[str]:
        """All variables occurring in node *i*'s triple patterns."""
        out: set[str] = set()
        for tp in self.nodes[i]:
            out.update(tp.variables())
        return frozenset(out)

    def variables(self) -> frozenset[str]:
        """All variables of the graph."""
        out: set[str] = set()
        for i in range(len(self.nodes)):
            out |= self.node_variables(i)
        return frozenset(out)

    def edge_map(self) -> dict[str, tuple[int, ...]]:
        """Map each edge label (variable) to the nodes it touches.

        A variable labels edges iff it occurs in at least two distinct
        nodes; the returned node tuple is exactly the *maximal clique*
        of that variable (Def. 3.2): all nodes incident to a v-edge.
        """
        occurrences: dict[str, list[int]] = {}
        for i in range(len(self.nodes)):
            for v in self.node_variables(i):
                occurrences.setdefault(v, []).append(i)
        return {
            v: tuple(nodes) for v, nodes in occurrences.items() if len(nodes) >= 2
        }

    def edges(self) -> Iterator[tuple[int, str, int]]:
        """Iterate the labeled edges (i, v, j) with i < j of the multigraph."""
        for v, nodes in self.edge_map().items():
            for a in range(len(nodes)):
                for b in range(a + 1, len(nodes)):
                    yield (nodes[a], v, nodes[b])

    def is_connected(self) -> bool:
        """True iff the graph is one connected component (no products)."""
        if len(self.nodes) <= 1:
            return True
        parent = list(range(len(self.nodes)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i, _, j in self.edges():
            parent[find(i)] = find(j)
        return len({find(i) for i in range(len(self.nodes))}) == 1

    # -- reduction (Definition 3.4) ---------------------------------------

    def reduce(self, decomposition: Sequence[Clique]) -> "VariableGraph":
        """Apply the joins of a clique decomposition (Def. 3.4).

        Every clique becomes a node whose pattern set is the union of the
        member nodes' patterns; edges are recomputed from shared
        variables.  Provenance records the clique per new node.
        """
        decomposition = canonical_decomposition(decomposition)
        self.validate_decomposition(decomposition)
        new_nodes: list[frozenset[TriplePattern]] = []
        for clique in decomposition:
            merged: set[TriplePattern] = set()
            for i in clique:
                merged |= self.nodes[i]
            new_nodes.append(frozenset(merged))
        return VariableGraph(nodes=tuple(new_nodes), provenance=decomposition)

    def validate_decomposition(self, decomposition: Sequence[Clique]) -> None:
        """Check Def. 3.3: node coverage, clique-ness, |D| < |N|."""
        if not decomposition:
            raise ValueError("empty decomposition")
        if len(decomposition) >= len(self.nodes):
            raise ValueError(
                f"decomposition size {len(decomposition)} must be < |N| = {len(self.nodes)}"
            )
        covered: set[int] = set()
        for clique in decomposition:
            if not clique:
                raise ValueError("empty clique in decomposition")
            if not clique <= set(range(len(self.nodes))):
                raise ValueError(f"clique {set(clique)} references unknown nodes")
            if len(clique) >= 2:
                shared = frozenset.intersection(
                    *(self.node_variables(i) for i in clique)
                )
                if not shared:
                    raise ValueError(
                        f"nodes {sorted(clique)} share no variable: not a clique"
                    )
            covered |= clique
        if covered != set(range(len(self.nodes))):
            missing = set(range(len(self.nodes))) - covered
            raise ValueError(f"decomposition does not cover nodes {sorted(missing)}")

    def clique_join_variables(self, clique: Clique) -> frozenset[str]:
        """Variables shared by *all* members of the clique.

        For a clique of variable v this always contains v; it may contain
        more (the J_{f,g} case of Fig. 3), and it is the attribute set A
        of the induced n-ary join.
        """
        return frozenset.intersection(*(self.node_variables(i) for i in clique))

    # -- canonical form -----------------------------------------------------

    def canonical_key(self) -> tuple:
        """A hashable canonical form (node multiset), for memoization."""
        return tuple(sorted(tuple(sorted(ns)) for ns in self.nodes))
