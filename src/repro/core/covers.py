"""Cover enumeration over clique candidates — Definition 3.3.

A clique decomposition is a set of cliques covering all graph nodes with
strictly fewer cliques than nodes.  Three enumeration regimes back the
eight CliqueSquare options (§4.3):

* :func:`iter_simple_covers` — *all* simple covers (a node may belong to
  several cliques), complete include/exclude subset search with coverage
  pruning.  This space explodes (Fig. 16); callers cap it.
* :func:`iter_exact_covers` — all exact covers (partitions), Algorithm-X
  style recursion, each cover produced exactly once.
* :func:`minimum_covers` — all covers of minimum size, found by iterative
  deepening over an irredundant-cover branching (minimum covers are
  irredundant, and the branching enumerates every irredundant cover
  exactly once).

Universe elements are node indices ``0..n-1``; candidate sets are bitmasks.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Sequence


class EnumerationBudget:
    """A cap on enumeration effort: count limit and wall-clock deadline.

    Mirrors the paper's experimental protocol (§6.2), where every
    optimizer run was stopped after a 100 s timeout.
    """

    def __init__(
        self, max_items: int | None = None, timeout_s: float | None = None
    ) -> None:
        self.max_items = max_items
        self.deadline = (time.monotonic() + timeout_s) if timeout_s else None
        self.produced = 0
        self.truncated = False

    def admit(self) -> bool:
        """Record one produced item; False once the budget is exhausted."""
        if self.exhausted():
            return False
        self.produced += 1
        return True

    def exhausted(self) -> bool:
        """True iff either cap has been hit (sets ``truncated``)."""
        if self.max_items is not None and self.produced >= self.max_items:
            self.truncated = True
            return True
        if self.deadline is not None and time.monotonic() > self.deadline:
            self.truncated = True
            return True
        return False


def masks_of(universe_size: int, sets: Sequence[Iterable[int]]) -> list[int]:
    """Convert element-sets to bitmasks over ``0..universe_size-1``."""
    masks = []
    for s in sets:
        mask = 0
        for e in s:
            if not 0 <= e < universe_size:
                raise ValueError(f"element {e} outside universe 0..{universe_size - 1}")
            mask |= 1 << e
        masks.append(mask)
    return masks


def _full(universe_size: int) -> int:
    return (1 << universe_size) - 1


def iter_simple_covers(
    universe_size: int,
    masks: Sequence[int],
    max_size: int,
    budget: EnumerationBudget | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield every subset of *masks* (as index tuples) that covers the
    universe with at most *max_size* sets.

    Complete: covers containing redundant sets are produced too (they give
    the DAG plans of §4.3).  Each cover is produced exactly once (indices
    strictly increase along the search path).
    """
    full = _full(universe_size)
    m = len(masks)
    if full == 0 or m == 0:
        return
    suffix = [0] * (m + 1)
    for i in range(m - 1, -1, -1):
        suffix[i] = suffix[i + 1] | masks[i]
    chosen: list[int] = []

    def rec(start: int, covered: int) -> Iterator[tuple[int, ...]]:
        if budget is not None and budget.exhausted():
            return
        if covered == full:
            yield tuple(chosen)
        if len(chosen) >= max_size:
            return
        for j in range(start, m):
            if covered | suffix[j] != full:
                break  # no later set can restore coverage
            chosen.append(j)
            yield from rec(j + 1, covered | masks[j])
            chosen.pop()

    for cover in rec(0, 0):
        if budget is not None and not budget.admit():
            return
        yield cover


def iter_exact_covers(
    universe_size: int,
    masks: Sequence[int],
    max_size: int,
    budget: EnumerationBudget | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield every exact cover (partition of the universe into candidate
    sets) of size at most *max_size*, each exactly once."""
    full = _full(universe_size)
    if full == 0 or not masks:
        return
    by_element: list[list[int]] = [[] for _ in range(universe_size)]
    for j, mask in enumerate(masks):
        for e in range(universe_size):
            if mask >> e & 1:
                by_element[e].append(j)
    chosen: list[int] = []

    def rec(covered: int) -> Iterator[tuple[int, ...]]:
        if budget is not None and budget.exhausted():
            return
        if covered == full:
            yield tuple(chosen)
            return
        if len(chosen) >= max_size:
            return
        # Branch on the smallest uncovered element.
        e = _lowest_unset(covered, universe_size)
        for j in by_element[e]:
            if masks[j] & covered:
                continue
            chosen.append(j)
            yield from rec(covered | masks[j])
            chosen.pop()

    for cover in rec(0):
        if budget is not None and not budget.admit():
            return
        yield cover


def _lowest_unset(covered: int, universe_size: int) -> int:
    """Index of the lowest zero bit of *covered* below *universe_size*."""
    inv = ~covered & _full(universe_size)
    return (inv & -inv).bit_length() - 1


def iter_irredundant_covers(
    universe_size: int,
    masks: Sequence[int],
    max_size: int,
    budget: EnumerationBudget | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield covers via smallest-uncovered-element branching.

    Every *irredundant* cover (no set removable) of size <= max_size is
    produced exactly once; some redundant-but-productive covers appear as
    well.  Used as the engine behind :func:`minimum_covers`: minimum
    covers are always irredundant.
    """
    full = _full(universe_size)
    m = len(masks)
    if full == 0 or m == 0:
        return
    by_element: list[list[int]] = [[] for _ in range(universe_size)]
    for j, mask in enumerate(masks):
        for e in range(universe_size):
            if mask >> e & 1:
                by_element[e].append(j)
    chosen: list[int] = []

    def rec(covered: int, banned: frozenset[int]) -> Iterator[tuple[int, ...]]:
        if budget is not None and budget.exhausted():
            return
        if covered == full:
            yield tuple(sorted(chosen))
            return
        if len(chosen) >= max_size:
            return
        e = _lowest_unset(covered, universe_size)
        newly_banned: set[int] = set()
        for j in by_element[e]:
            if j in banned:
                newly_banned.add(j)
                continue
            chosen.append(j)
            yield from rec(covered | masks[j], banned | frozenset(newly_banned))
            chosen.pop()
            newly_banned.add(j)

    yield from rec(0, frozenset())


def minimum_covers(
    universe_size: int,
    masks: Sequence[int],
    exact: bool,
    budget: EnumerationBudget | None = None,
) -> list[tuple[int, ...]]:
    """All covers of minimum size (simple or exact), deduplicated.

    Iterative deepening: the first depth k at which any cover exists is
    the minimum cover size; all covers found at that depth are returned.
    Returns [] when no cover exists at all (the MXC+/XC+ failure mode of
    Fig. 10).
    """
    full = _full(universe_size)
    union = 0
    for mask in masks:
        union |= mask
    if union != full:
        return []
    iterator = iter_exact_covers if exact else iter_irredundant_covers
    max_k = max(universe_size - 1, 1)
    for k in range(1, max_k + 1):
        found = {
            tuple(sorted(cover))
            for cover in iterator(universe_size, masks, k, budget)
            if len(cover) == k
        }
        if found:
            return sorted(found)
        if budget is not None and budget.exhausted():
            return []
    return []
