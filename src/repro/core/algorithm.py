"""Algorithm 1 — the generic CliqueSquare optimization algorithm.

Starting from the query's variable graph, repeatedly apply clique
decompositions (per the chosen option) and reductions until the graph has
one node; each completed reduction sequence yields one logical plan via
CREATEQUERYPLANS.  The raw plan list may contain duplicates — different
sequences can converge to the same plan (Fig. 19 measures this).

The search is bounded by an optional plan cap and wall-clock timeout,
mirroring the paper's 100 s experimental timeout for the explosive SC/XC
variants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.covers import EnumerationBudget
from repro.core.decomposition import MSC, DecompositionOption, decompositions
from repro.core.logical import LogicalPlan
from repro.core.plan_builder import create_query_plan
from repro.core.variable_graph import VariableGraph
from repro.sparql.ast import BGPQuery


@dataclass
class OptimizerResult:
    """Output of one CliqueSquare run."""

    query: BGPQuery
    option: DecompositionOption
    plans: list[LogicalPlan] = field(default_factory=list)
    truncated: bool = False
    elapsed_s: float = 0.0

    @property
    def plan_count(self) -> int:
        """Raw plan count, duplicates included (Fig. 16 counts these)."""
        return len(self.plans)

    def unique_plans(self) -> list[LogicalPlan]:
        """Distinct plans (used for the uniqueness ratio of Fig. 19)."""
        seen: set[tuple] = set()
        out: list[LogicalPlan] = []
        for plan in self.plans:
            sig = plan.signature()
            if sig not in seen:
                seen.add(sig)
                out.append(plan)
        return out

    @property
    def uniqueness_ratio(self) -> float:
        """|unique plans| / |plans|; 1.0 when no plan was produced."""
        if not self.plans:
            return 1.0
        return len(self.unique_plans()) / len(self.plans)


def cliquesquare(
    query: BGPQuery,
    option: DecompositionOption = MSC,
    max_plans: int | None = 200_000,
    timeout_s: float | None = 100.0,
) -> OptimizerResult:
    """Run CliqueSquare-<option> on *query* and return all produced plans.

    ``max_plans``/``timeout_s`` bound the search; when either trips, the
    result is flagged ``truncated`` (the paper's SC/XC runs hit the same
    wall).  Defaults mirror the paper's 100 s timeout.
    """
    if not query.is_connected():
        raise ValueError(
            "CliqueSquare requires x-free (connected) queries; decompose "
            "cartesian products first (§2)"
        )
    start = time.monotonic()
    deadline = start + timeout_s if timeout_s else None
    result = OptimizerResult(query=query, option=option)
    initial = VariableGraph.from_query(query)

    def out_of_budget() -> bool:
        if max_plans is not None and len(result.plans) >= max_plans:
            result.truncated = True
            return True
        if deadline is not None and time.monotonic() > deadline:
            result.truncated = True
            return True
        return False

    def recurse(graph: VariableGraph, states: tuple[VariableGraph, ...]) -> None:
        states = states + (graph,)
        if len(graph) == 1:
            result.plans.append(create_query_plan(query, states))
            return
        # Budget for decomposition enumeration at this level: share the
        # global deadline so deep SC recursions cannot stall forever.
        remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
        budget = EnumerationBudget(timeout_s=remaining) if remaining is not None else None
        for decomposition in decompositions(graph, option, budget):
            if out_of_budget():
                return
            recurse(graph.reduce(decomposition), states)
        if budget is not None and budget.truncated:
            result.truncated = True

    recurse(initial, ())
    out_of_budget()  # final truncation check
    result.elapsed_s = time.monotonic() - start
    return result


def best_effort_plan(
    query: BGPQuery,
    option: DecompositionOption = MSC,
    timeout_s: float | None = 100.0,
) -> LogicalPlan | None:
    """Convenience: the first plan found, or None when the option fails
    (MXC+/XC+ can genuinely fail — Fig. 10)."""
    result = cliquesquare(query, option, max_plans=1, timeout_s=timeout_s)
    return result.plans[0] if result.plans else None
