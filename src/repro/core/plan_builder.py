"""CREATEQUERYPLANS — §4.2: from a sequence of variable graphs to a plan.

The *states* queue contains the initial query variable graph followed by
the successive clique reductions, ending in a one-node graph.  Plan
construction walks the queue oldest-to-newest:

* graph 0: one Match operator per node (triple pattern);
* each later graph: a node whose clique is a single previous node reuses
  that node's operator; a node whose clique has several members gets a
  Join over the members' operators.

The final projection onto the distinguished variables is added on top.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.logical import LogicalOperator, LogicalPlan, Match, make_join
from repro.core.variable_graph import VariableGraph
from repro.sparql.ast import BGPQuery


def create_query_plan(query: BGPQuery, states: Sequence[VariableGraph]) -> LogicalPlan:
    """Build the logical plan encoded by a reduction sequence.

    *states* must start at the initial variable graph of *query* (one
    pattern per node) and end at a one-node graph; every graph after the
    first must carry provenance (be the output of ``reduce``).
    """
    if not states:
        raise ValueError("states must contain at least the initial graph")
    first, last = states[0], states[-1]
    if any(len(ns) != 1 for ns in first.nodes):
        raise ValueError("first state must have one triple pattern per node")
    if len(last) != 1:
        raise ValueError("last state must be a one-node graph")

    ops: list[LogicalOperator] = [Match(next(iter(ns))) for ns in first.nodes]
    for graph in states[1:]:
        if graph.provenance is None:
            raise ValueError("reduced graph lacks provenance")
        if len(graph.provenance) != len(graph.nodes):
            raise ValueError("provenance misaligned with graph nodes")
        new_ops: list[LogicalOperator] = []
        for clique in graph.provenance:
            members = sorted(clique)
            if len(members) == 1:
                new_ops.append(ops[members[0]])
            else:
                new_ops.append(make_join([ops[i] for i in members]))
        ops = new_ops

    return LogicalPlan.wrap(ops[0], query)
