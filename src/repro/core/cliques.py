"""Variable cliques — Definition 3.2.

Given a variable graph, the *maximal clique* of a variable v is the set of
all nodes incident to a v-labeled edge (equivalently, all nodes containing
v, provided at least two do).  A *partial clique* is any non-empty subset
of a maximal clique.

Cliques are handled as node-index sets.  Two cliques of different
variables may coincide as node sets (e.g. the maximal cliques of f and g
in Fig. 3 collapse into the single join J_{f,g}); such duplicates are
merged, since the induced join — on the intersection of the members'
attribute sets — is identical.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.variable_graph import Clique, VariableGraph


def maximal_cliques_by_variable(graph: VariableGraph) -> dict[str, Clique]:
    """Map each join variable of *graph* to its maximal clique."""
    return {v: frozenset(nodes) for v, nodes in graph.edge_map().items()}


def maximal_cliques(graph: VariableGraph) -> list[Clique]:
    """Distinct maximal cliques (node-set deduplicated), canonical order."""
    distinct = set(maximal_cliques_by_variable(graph).values())
    return sorted(distinct, key=lambda c: (len(c), sorted(c)))


def partial_cliques(graph: VariableGraph) -> list[Clique]:
    """All distinct partial cliques: non-empty subsets of maximal cliques.

    Singleton subsets are valid partial cliques (a node carried unchanged
    through a decomposition step, i.e. no join for that node).
    """
    out: set[Clique] = set()
    for clique in maximal_cliques_by_variable(graph).values():
        members = sorted(clique)
        for size in range(1, len(members) + 1):
            for subset in combinations(members, size):
                out.add(frozenset(subset))
    # Every node is always available as a singleton "carry" clique, even a
    # node with no join variable left (cannot happen in connected graphs,
    # but keeps degenerate cases safe).
    for i in range(len(graph)):
        out.add(frozenset([i]))
    return sorted(out, key=lambda c: (len(c), sorted(c)))


def candidate_cliques(graph: VariableGraph, maximal_only: bool) -> list[Clique]:
    """The clique pool a decomposition option draws from.

    ``maximal_only=True`` corresponds to the ``+`` options of §4.3; note
    that even then singletons are *not* added: maximal-clique options must
    cover every node using maximal cliques only, which is exactly why
    MXC+/XC+ can fail on queries like Fig. 10.
    """
    return maximal_cliques(graph) if maximal_only else partial_cliques(graph)


def count_partial_cliques(graph: VariableGraph) -> int:
    """Number of distinct partial cliques (cf. Eq. 3 and Lemma 4.2)."""
    return len(partial_cliques(graph))
