"""Worst-case complexity bounds of §4.5 (Fig. 8).

Closed forms for the maximum number of decompositions D(n) of each
CliqueSquare variant on an n-node variable graph, the clique-count lemmas
(4.1, 4.2), and the T(n) recurrences (Eqs. 1–2) bounding total clique
reductions.
"""

from __future__ import annotations

from functools import cache
from math import ceil, comb


@cache
def stirling2(n: int, k: int) -> int:
    """Stirling partition number of the second kind {n k}: ways to
    partition an n-set into k non-empty blocks."""
    if n < 0 or k < 0:
        raise ValueError("stirling2 arguments must be non-negative")
    if n == k:
        return 1
    if n == 0 or k == 0:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


def max_maximal_cliques(n: int) -> int:
    """Lemma 4.1: a variable graph has at most 2n+1 maximal cliques
    (a query of n patterns has at most 2n+1 distinct variables)."""
    return 2 * n + 1


def max_partial_cliques(n: int) -> int:
    """Lemma 4.2: at most 2^n - 1 partial cliques (the power set bound)."""
    return 2**n - 1


def d_mxc_plus(n: int) -> int:
    """Eq. 11: D(n) <= C(n+1, ceil(n/2)) for MXC+."""
    return comb(n + 1, ceil(n / 2))


def d_xc_plus(n: int) -> int:
    """Eq. 10: D(n) <= sum_{k=1}^{n-1} C(n+1, k) for XC+."""
    return sum(comb(n + 1, k) for k in range(1, n))


def d_msc_plus(n: int) -> int:
    """Eq. 9: D(n) <= C(2n+1, ceil(n/2)) for MSC+."""
    return comb(2 * n + 1, ceil(n / 2))


def d_sc_plus(n: int) -> int:
    """Eq. 8: D(n) <= sum_{k=1}^{n-1} C(2n+1, k) for SC+."""
    return sum(comb(2 * n + 1, k) for k in range(1, n))


def d_mxc(n: int) -> int:
    """Eq. 7: D(n) = {n, ceil(n/2)} (Stirling) for MXC."""
    return stirling2(n, ceil(n / 2))


def d_xc(n: int) -> int:
    """Eq. 6: D(n) <= sum_{k=0}^{n-1} {n k} for XC."""
    return sum(stirling2(n, k) for k in range(0, n))


def d_msc(n: int) -> int:
    """Eq. 5: D(n) <= C(2^n - 1, ceil(n/2)) for MSC."""
    return comb(2**n - 1, ceil(n / 2))


def d_sc(n: int) -> int:
    """Eq. 4: D(n) <= sum_{k=1}^{n-1} C(2^n - 1, k) for SC."""
    return sum(comb(2**n - 1, k) for k in range(1, n))


#: Fig. 8 column order: decomposition-count bound per option name.
DECOMPOSITION_BOUNDS = {
    "MXC+": d_mxc_plus,
    "MSC+": d_msc_plus,
    "MXC": d_mxc,
    "MSC": d_msc,
    "XC+": d_xc_plus,
    "SC+": d_sc_plus,
    "XC": d_xc,
    "SC": d_sc,
}

#: Options whose decompositions are minimum covers: the graph shrinks by
#: at least a factor 2 per stage (Eq. 1); the rest shrink by >= 1 (Eq. 2).
MINIMUM_COVER_OPTIONS = frozenset({"MXC+", "MSC+", "MXC", "MSC"})


def decomposition_bound(option_name: str, n: int) -> int:
    """Fig. 8 worst-case D(n) for the named option."""
    try:
        fn = DECOMPOSITION_BOUNDS[option_name]
    except KeyError:
        raise ValueError(f"unknown option {option_name!r}") from None
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return 0
    return fn(n)


def reduction_bound(option_name: str, n: int) -> int:
    """T(n) bound on the total number of clique reductions.

    Minimum-cover options follow Eq. 1, T(n) <= D(n) * T(ceil((n-1)/2));
    the others follow Eq. 2, T(n) <= D(n) * T(n-1); T(1) = 1.
    """
    if n < 1:
        raise ValueError("n must be >= 1")

    @cache
    def t(m: int) -> int:
        if m <= 1:
            return 1
        d = decomposition_bound(option_name, m)
        if option_name in MINIMUM_COVER_OPTIONS:
            return d * t(ceil((m - 1) / 2))
        return d * t(m - 1)

    return t(n)


def fig8_table(n: int) -> dict[str, int]:
    """The Fig. 8 row for a query of *n* nodes: bound per option."""
    return {name: decomposition_bound(name, n) for name in DECOMPOSITION_BOUNDS}
