"""repro.partitioning subpackage."""
