"""Partition file naming — the §5.1 per-node storage layout.

Within each compute node, triples are stored in three partitions (one per
placement attribute: subject, property, object), each split by property
value into one HDFS file per property; the property partition of
``rdf:type`` is further split by object value.  File names encode all of
this so that a Map Scan can address exactly the data it needs:

    <placement>|<property>            e.g.  s|ub:worksFor
    <placement>|rdf:type|<object>     e.g.  p|rdf:type|ub:FullProfessor
"""

from __future__ import annotations

from repro.rdf.terms import RDF_TYPE

#: The three placement attributes: one per dataset replica (§5.1 step 1).
PLACEMENTS = ("s", "p", "o")


def file_name(placement: str, prop: str, type_object: str | None = None) -> str:
    """The partition file holding triples of *prop* in *placement*,
    optionally narrowed to one rdf:type object value."""
    if placement not in PLACEMENTS:
        raise ValueError(f"placement must be one of {PLACEMENTS}: {placement!r}")
    if type_object is not None:
        if prop != RDF_TYPE:
            raise ValueError("object-level splitting applies to rdf:type only")
        return f"{placement}|{prop}|{type_object}"
    return f"{placement}|{prop}"


def triple_file(placement: str, prop: str, obj: str) -> str:
    """The file a (s, prop, obj) triple is stored in under *placement*."""
    if prop == RDF_TYPE:
        return file_name(placement, prop, obj)
    return file_name(placement, prop)


def parse_file_name(name: str) -> tuple[str, str, str | None]:
    """Inverse of :func:`file_name`: (placement, property, type_object)."""
    parts = name.split("|")
    if len(parts) == 2:
        return parts[0], parts[1], None
    if len(parts) == 3:
        return parts[0], parts[1], parts[2]
    raise ValueError(f"not a partition file name: {name!r}")
