"""The CliqueSquare RDF partitioner — §5.1.

The partitioner exploits 3x replication: each triple is stored three
times, placed by the hash of its subject, property and object value
respectively.  Triples sharing a value in any position are therefore
co-located in the replica hashed on that position, which makes *all*
first-level joins (s-s, s-o, p-o, ...) parallelizable without
communication (PWOC / co-located joins).

Within each node, each replica's triples form a partition split by
property value into files (and the rdf:type property partition further
split by object value) — see ``layout.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.partitioning.layout import PLACEMENTS, triple_file
from repro.rdf.graph import RDFGraph, Triple


#: Memo table for the polynomial term hash.  Loading computes the hash
#: of every triple's subject, property and object once per replica; RDF
#: terms repeat heavily (every property value recurs ~|G|/|P| times), so
#: memoizing the O(len) hash is a measurable loading win.  The table is
#: per-process, grows only with the number of *distinct* terms, and is
#: capped so a long-lived process with churning term sets cannot leak.
_HASH_CACHE: dict[str, int] = {}
_HASH_CACHE_MAX = 1 << 18


def _term_hash(value: str) -> int:
    h = _HASH_CACHE.get(value)
    if h is None:
        h = 0
        for ch in value:
            h = (h * 131 + ord(ch)) & 0x7FFFFFFF
        if len(_HASH_CACHE) < _HASH_CACHE_MAX:
            _HASH_CACHE[value] = h
    return h


def place(value: str, num_nodes: int) -> int:
    """Deterministic node assignment for a term value.

    Python's builtin ``hash`` is randomized across processes; a stable
    polynomial hash keeps layouts reproducible run to run.
    """
    return _term_hash(value) % num_nodes


def _scan_files(
    store: dict[str, Sequence[Triple]],
    placement: str,
    prop: str | None,
    type_object: str | None,
) -> list[Triple]:
    """Shared scan logic over one node's file map (store and snapshot)."""
    if prop is None:
        prefix = placement + "|"
        out: list[Triple] = []
        for name, triples in store.items():
            if name.startswith(prefix):
                out.extend(triples)
        return out
    if type_object is not None:
        return list(store.get(triple_file(placement, prop, type_object), ()))
    # rdf:type without a bound object: gather its object-split files.
    exact = store.get(f"{placement}|{prop}")
    if exact is not None:
        return list(exact)
    prefix = f"{placement}|{prop}|"
    out = []
    for name, triples in store.items():
        if name.startswith(prefix):
            out.extend(triples)
    return out


#: Process-wide store identities, so snapshots of different stores (or
#: different versions of one store) never alias in worker-pool caches.
_STORE_IDS = itertools.count()


@dataclass(frozen=True)
class StoreSnapshot:
    """A read-only view of a :class:`PartitionedStore` at one version.

    Building one copies every file's triple list into a fresh tuple —
    the triples themselves are shared, but the containers are not, so
    later ``add`` calls on the store can never mutate a snapshot.  That
    copy is O(stored triples) in pointer copies; :meth:`PartitionedStore
    .snapshot` memoizes it per version, so a mutation batch pays it once
    on the next query however many queries follow.  ``token`` identifies
    (store, version): execution backends key their worker pools on it,
    shipping the snapshot to workers once and rebuilding only when the
    underlying store actually changed.
    """

    num_nodes: int
    replicas: tuple[str, ...]
    files: tuple[dict[str, tuple[Triple, ...]], ...]
    token: tuple[int, int]

    def scan(
        self,
        node: int,
        placement: str,
        prop: str | None = None,
        type_object: str | None = None,
    ) -> list[Triple]:
        """Triples of one node's partition (see :meth:`PartitionedStore.scan`)."""
        return _scan_files(self.files[node], placement, prop, type_object)

    def file_names(self, node: int) -> list[str]:
        return sorted(self.files[node].keys())

    def total_stored(self) -> int:
        return sum(len(ts) for node in self.files for ts in node.values())


@dataclass
class PartitionedStore:
    """The §5.1 storage layout: per node, per file, a list of triples.

    ``replicas`` selects which placements are materialized; the default
    is the full 3-way scheme.  Restricting it (e.g. to subject-only)
    ablates the §5.1 design: joins on non-replicated positions lose
    their co-location and must run as reduce joins.
    """

    num_nodes: int
    replicas: tuple[str, ...] = PLACEMENTS
    #: files[node][file_name] -> triples
    files: list[dict[str, list[Triple]]] = field(default_factory=list)
    #: bumped on every mutation; versions key snapshot/worker-pool caches
    version: int = field(default=0, init=False, compare=False)
    uid: int = field(
        default_factory=lambda: next(_STORE_IDS), init=False, compare=False
    )
    _snapshot: "StoreSnapshot | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.files:
            self.files = [dict() for _ in range(self.num_nodes)]
        unknown = set(self.replicas) - set(PLACEMENTS)
        if unknown:
            raise ValueError(f"unknown replicas {unknown}")
        if "s" not in self.replicas:
            raise ValueError("the subject replica is mandatory (base copy)")

    # -- loading ------------------------------------------------------------

    def add(self, triple: Triple) -> None:
        """Store the configured §5.1 replicas of a triple."""
        for placement in self.replicas:
            self.add_placement(placement, triple)

    def add_placement(self, placement: str, triple: Triple) -> int:
        """Store only the *placement* replica of a triple; return its node.

        The sharded store (``repro.cluster``) splits the three replicas
        of one triple across shard-local stores: each shard receives
        exactly the replicas whose placement value hashes to a node it
        owns, so a plain :meth:`add` (which stores all configured
        replicas) would duplicate data across shards.
        """
        if placement not in self.replicas:
            raise ValueError(
                f"placement {placement!r} is not materialized "
                f"(replicas={self.replicas})"
            )
        s, p, o = triple
        value = {"s": s, "p": p, "o": o}[placement]
        node = place(value, self.num_nodes)
        name = triple_file(placement, p, o)
        self.files[node].setdefault(name, []).append(triple)
        self.version += 1
        self._snapshot = None
        return node

    # -- migration (slot rebalancing, repro.cluster.slots) -------------------

    def install_node(self, node: int, files: dict[str, Sequence[Triple]]) -> None:
        """Replace one node's file map wholesale (slot moved in)."""
        self.files[node] = {name: list(ts) for name, ts in files.items()}
        self.version += 1
        self._snapshot = None

    def evict_node(self, node: int) -> dict[str, list[Triple]]:
        """Drop and return one node's file map (slot moved out)."""
        evicted = self.files[node]
        self.files[node] = {}
        self.version += 1
        self._snapshot = None
        return evicted

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> StoreSnapshot:
        """A read-only view of the store at its current version.

        Snapshots are memoized per version, so the copy cost (pointer
        copies of the file maps) is paid once per mutation batch however
        many queries execute in between; workers receiving the snapshot
        can scan it without ever touching the live, mutable store.
        """
        cached = self._snapshot
        token = (self.uid, self.version)
        if cached is not None and cached.token == token:
            return cached
        snapshot = StoreSnapshot(
            num_nodes=self.num_nodes,
            replicas=self.replicas,
            files=tuple(
                {name: tuple(triples) for name, triples in node.items()}
                for node in self.files
            ),
            token=token,
        )
        self._snapshot = snapshot
        return snapshot

    def add_all(self, triples: Iterable[Triple]) -> int:
        count = 0
        for triple in triples:
            self.add(triple)
            count += 1
        return count

    # -- scanning ------------------------------------------------------------

    def scan(
        self,
        node: int,
        placement: str,
        prop: str | None = None,
        type_object: str | None = None,
    ) -> list[Triple]:
        """Triples of one node's partition.

        ``prop=None`` scans the whole placement partition (the unbound-
        property case, which forces reading every file of the replica).
        """
        return _scan_files(self.files[node], placement, prop, type_object)

    def file_names(self, node: int) -> list[str]:
        """All partition files on a node."""
        return sorted(self.files[node].keys())

    def node_of(self, value: str) -> int:
        """The node holding *value*'s co-location group (any placement)."""
        return place(value, self.num_nodes)

    # -- invariants (used by tests) ------------------------------------------

    def total_stored(self) -> int:
        """Total stored triples across nodes and files (3x the dataset)."""
        return sum(len(ts) for node in self.files for ts in node.values())

    def replica_triples(self, placement: str) -> set[Triple]:
        """The dataset as reconstructed from one replica."""
        out: set[Triple] = set()
        prefix = placement + "|"
        for node in self.files:
            for name, triples in node.items():
                if name.startswith(prefix):
                    out.update(triples)
        return out


def partition_graph(
    graph: RDFGraph, num_nodes: int, replicas: tuple[str, ...] = PLACEMENTS
) -> PartitionedStore:
    """Partition an RDF graph onto *num_nodes* compute nodes per §5.1."""
    store = PartitionedStore(num_nodes=num_nodes, replicas=replicas)
    store.add_all(graph)
    return store
