"""Parser for the SPARQL BGP dialect used throughout the paper.

Supported grammar (whitespace-insensitive, case-insensitive keywords)::

    query  := SELECT vars WHERE '{' triples '}'
    vars   := '*' | var+
    triples:= pattern ('.' pattern)* '.'?
    pattern:= term term term

Terms are IRIs (``<...>`` or prefixed names), literals (``"..."``),
variables (``?name``), parameter placeholders (``$name``, subject/object
positions only — prepared-query templates), or the ``a`` shorthand for
``rdf:type``.  PREFIX declarations are accepted and ignored (prefixed
names stay opaque).

Syntax errors raise :class:`SparqlSyntaxError`, which carries the
offending token, its (line, column) position in the query text, and the
``name`` the caller gave the query, so that service clients get
actionable diagnostics instead of a bare ``ValueError``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.sparql.ast import BGPQuery, TriplePattern


class SparqlSyntaxError(ValueError):
    """Raised when a query string cannot be parsed.

    ``token`` is the offending token text (``None`` when the input ended
    prematurely), ``position`` its 1-based ``(line, column)`` in the
    query string, and ``name`` the caller-supplied query name (empty for
    anonymous queries) — so a failing member of a named workload can be
    identified from the exception alone.
    """

    def __init__(
        self,
        message: str,
        *,
        token: str | None = None,
        position: tuple[int, int] | None = None,
        name: str = "",
    ) -> None:
        self.token = token
        self.position = position
        self.name = name
        #: the undecorated message, kept so callers can re-raise with a name
        self.core_message = message
        if name:
            message = f"{name}: {message}"
        if position is not None:
            where = f" at line {position[0]}, column {position[1]}"
            shown = f": {token!r}" if token is not None else ""
            message = f"{message}{where}{shown}"
        super().__init__(message)


#: Historical spelling, kept as an alias for existing callers.
SPARQLSyntaxError = SparqlSyntaxError


_TOKEN = re.compile(
    r"""
    (?P<iri>\<[^>]*\>)
  | (?P<literal>"(?:[^"\\]|\\.)*")
  | (?P<punct>[{}.])
  | (?P<word>[^\s{}]+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A lexed token with its position in the source text."""

    text: str
    line: int
    column: int

    @property
    def position(self) -> tuple[int, int]:
        return (self.line, self.column)


def lex(text: str) -> list[Token]:
    """Split a query string into position-annotated tokens."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    pos = 0
    for match in _TOKEN.finditer(text):
        for nl in re.finditer(r"\n", text[pos : match.start()]):
            line += 1
            line_start = pos + nl.end()
        pos = match.start()
        tokens.append(
            Token(text=match.group(0), line=line, column=match.start() - line_start + 1)
        )
    return tokens


def tokenize(text: str) -> list[str]:
    """Split a query string into tokens (IRIs, literals, punctuation, words)."""
    return [token.text for token in lex(text)]


def _end_position(text: str) -> tuple[int, int]:
    lines = text.split("\n")
    return (len(lines), len(lines[-1]) + 1)


def _strip_prefix_decls(tokens: list[Token]) -> list[Token]:
    """Drop ``PREFIX name: <iri>`` declarations from the token stream."""
    out: list[Token] = []
    i = 0
    while i < len(tokens):
        if tokens[i].text.upper() == "PREFIX" and i + 2 < len(tokens):
            i += 3
        else:
            out.append(tokens[i])
            i += 1
    return out


#: Legal parameter placeholder spelling: ``$`` + identifier.
_PLACEHOLDER = re.compile(r"^\$[A-Za-z_][A-Za-z0-9_]*$")


def parse_query(text: str, name: str = "") -> BGPQuery:
    """Parse a SELECT BGP query into a :class:`BGPQuery`.

    ``name`` labels the query; it is attached to the returned query and
    to any :class:`SparqlSyntaxError` the parse raises.
    """
    try:
        return _parse_query(text, name)
    except SparqlSyntaxError as exc:
        if name and not exc.name:
            raise SparqlSyntaxError(
                exc.core_message,
                token=exc.token,
                position=exc.position,
                name=name,
            ) from None
        raise


def _parse_query(text: str, name: str) -> BGPQuery:
    tokens = _strip_prefix_decls(lex(text))
    end = _end_position(text)
    if not tokens:
        raise SparqlSyntaxError("empty query", position=end)
    if tokens[0].text.upper() != "SELECT":
        raise SparqlSyntaxError(
            "query must start with SELECT",
            token=tokens[0].text,
            position=tokens[0].position,
        )
    i = 1
    head: list[Token] = []
    star = False
    while i < len(tokens) and tokens[i].text.upper() != "WHERE":
        tok = tokens[i]
        if tok.text == "*":
            star = True
        elif tok.text.startswith("?"):
            if tok.text not in [t.text for t in head]:
                head.append(tok)
        else:
            raise SparqlSyntaxError(
                "unexpected token in SELECT clause",
                token=tok.text,
                position=tok.position,
            )
        i += 1
    if i >= len(tokens):
        raise SparqlSyntaxError("missing WHERE clause", position=end)
    i += 1  # skip WHERE
    if i >= len(tokens) or tokens[i].text != "{":
        bad = tokens[i] if i < len(tokens) else None
        raise SparqlSyntaxError(
            "expected '{' after WHERE",
            token=bad.text if bad else None,
            position=bad.position if bad else end,
        )
    i += 1
    body: list[Token] = []
    depth = 1
    while i < len(tokens):
        if tokens[i].text == "{":
            raise SparqlSyntaxError(
                "nested groups are not part of the BGP dialect",
                token=tokens[i].text,
                position=tokens[i].position,
            )
        if tokens[i].text == "}":
            depth -= 1
            i += 1
            break
        body.append(tokens[i])
        i += 1
    if depth != 0:
        raise SparqlSyntaxError("unbalanced braces in WHERE clause", position=end)
    if i < len(tokens):
        raise SparqlSyntaxError(
            f"trailing tokens after '}}': {[t.text for t in tokens[i:]]}",
            token=tokens[i].text,
            position=tokens[i].position,
        )

    patterns: list[TriplePattern] = []
    group: list[Token] = []
    for tok in body:
        if tok.text == ".":
            if group:
                patterns.append(_make_pattern(group))
                group = []
        else:
            group.append(tok)
            if len(group) == 3:
                # Allow '.'-less separation only at clause end; SPARQL
                # requires '.' between patterns, but we are permissive and
                # close a pattern as soon as it has three terms.
                patterns.append(_make_pattern(group))
                group = []
    if group:
        raise SparqlSyntaxError(
            f"dangling terms in WHERE clause: {[t.text for t in group]}",
            token=group[0].text,
            position=group[0].position,
        )
    if not patterns:
        raise SparqlSyntaxError("empty WHERE clause", position=end)

    query_vars: list[str] = []
    for tp in patterns:
        for v in tp.variables():
            if v not in query_vars:
                query_vars.append(v)
    if not star:
        for tok in head:
            if tok.text not in query_vars:
                raise SparqlSyntaxError(
                    "distinguished variable not in query body",
                    token=tok.text,
                    position=tok.position,
                )
    distinguished = (
        tuple(query_vars) if star else tuple(t.text for t in head)
    )
    if not distinguished:
        distinguished = tuple(query_vars)
    try:
        return BGPQuery(
            distinguished=distinguished, patterns=tuple(patterns), name=name
        )
    except ValueError as exc:
        # Any remaining AST-level validation failure still surfaces as a
        # syntax error, so clients can rely on one exception type.
        raise SparqlSyntaxError(str(exc), position=end) from exc


def _make_pattern(tokens: list[Token]) -> TriplePattern:
    if len(tokens) != 3:
        raise SparqlSyntaxError(
            f"triple pattern needs exactly 3 terms: {[t.text for t in tokens]}",
            token=tokens[0].text if tokens else None,
            position=tokens[0].position if tokens else None,
        )
    for tok in tokens:
        if tok.text.startswith("$") and not _PLACEHOLDER.match(tok.text):
            raise SparqlSyntaxError(
                "malformed parameter placeholder (expected $identifier)",
                token=tok.text,
                position=tok.position,
            )
    if tokens[1].text.startswith("$"):
        raise SparqlSyntaxError(
            "parameter placeholder cannot appear in property position "
            "(properties are structural)",
            token=tokens[1].text,
            position=tokens[1].position,
        )
    try:
        return TriplePattern(tokens[0].text, tokens[1].text, tokens[2].text)
    except ValueError as exc:
        # TriplePattern rejects e.g. literals in subject/property position;
        # surface those as syntax errors with the pattern's location.
        raise SparqlSyntaxError(
            str(exc), token=tokens[0].text, position=tokens[0].position
        ) from exc
