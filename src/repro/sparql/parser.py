"""Parser for the SPARQL BGP dialect used throughout the paper.

Supported grammar (whitespace-insensitive, case-insensitive keywords)::

    query  := SELECT vars WHERE '{' triples '}'
    vars   := '*' | var+
    triples:= pattern ('.' pattern)* '.'?
    pattern:= term term term

Terms are IRIs (``<...>`` or prefixed names), literals (``"..."``),
variables (``?name``), or the ``a`` shorthand for ``rdf:type``.  PREFIX
declarations are accepted and ignored (prefixed names stay opaque).
"""

from __future__ import annotations

import re

from repro.sparql.ast import BGPQuery, TriplePattern


class SPARQLSyntaxError(ValueError):
    """Raised when a query string cannot be parsed."""


_TOKEN = re.compile(
    r"""
    (?P<iri>\<[^>]*\>)
  | (?P<literal>"(?:[^"\\]|\\.)*")
  | (?P<punct>[{}.])
  | (?P<word>[^\s{}]+)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[str]:
    """Split a query string into tokens (IRIs, literals, punctuation, words)."""
    tokens: list[str] = []
    for match in _TOKEN.finditer(text):
        tokens.append(match.group(0))
    return tokens


def _strip_prefix_decls(tokens: list[str]) -> list[str]:
    """Drop ``PREFIX name: <iri>`` declarations from the token stream."""
    out: list[str] = []
    i = 0
    while i < len(tokens):
        if tokens[i].upper() == "PREFIX" and i + 2 < len(tokens):
            i += 3
        else:
            out.append(tokens[i])
            i += 1
    return out


def parse_query(text: str, name: str = "") -> BGPQuery:
    """Parse a SELECT BGP query into a :class:`BGPQuery`."""
    tokens = _strip_prefix_decls(tokenize(text))
    if not tokens or tokens[0].upper() != "SELECT":
        raise SPARQLSyntaxError("query must start with SELECT")
    i = 1
    head: list[str] = []
    star = False
    while i < len(tokens) and tokens[i].upper() != "WHERE":
        tok = tokens[i]
        if tok == "*":
            star = True
        elif tok.startswith("?"):
            if tok not in head:
                head.append(tok)
        else:
            raise SPARQLSyntaxError(f"unexpected token in SELECT clause: {tok!r}")
        i += 1
    if i >= len(tokens):
        raise SPARQLSyntaxError("missing WHERE clause")
    i += 1  # skip WHERE
    if i >= len(tokens) or tokens[i] != "{":
        raise SPARQLSyntaxError("expected '{' after WHERE")
    i += 1
    body: list[str] = []
    depth = 1
    while i < len(tokens):
        if tokens[i] == "{":
            raise SPARQLSyntaxError("nested groups are not part of the BGP dialect")
        if tokens[i] == "}":
            depth -= 1
            i += 1
            break
        body.append(tokens[i])
        i += 1
    if depth != 0:
        raise SPARQLSyntaxError("unbalanced braces in WHERE clause")
    if i < len(tokens):
        raise SPARQLSyntaxError(f"trailing tokens after '}}': {tokens[i:]}")

    patterns: list[TriplePattern] = []
    group: list[str] = []
    for tok in body:
        if tok == ".":
            if group:
                patterns.append(_make_pattern(group))
                group = []
        else:
            group.append(tok)
            if len(group) == 3:
                # Allow '.'-less separation only at clause end; SPARQL
                # requires '.' between patterns, but we are permissive and
                # close a pattern as soon as it has three terms.
                patterns.append(_make_pattern(group))
                group = []
    if group:
        raise SPARQLSyntaxError(f"dangling terms in WHERE clause: {group}")
    if not patterns:
        raise SPARQLSyntaxError("empty WHERE clause")

    query_vars: list[str] = []
    for tp in patterns:
        for v in tp.variables():
            if v not in query_vars:
                query_vars.append(v)
    distinguished = tuple(query_vars) if star else tuple(head)
    if not distinguished:
        distinguished = tuple(query_vars)
    return BGPQuery(distinguished=distinguished, patterns=tuple(patterns), name=name)


def _make_pattern(terms: list[str]) -> TriplePattern:
    if len(terms) != 3:
        raise SPARQLSyntaxError(f"triple pattern needs exactly 3 terms: {terms}")
    return TriplePattern(terms[0], terms[1], terms[2])
