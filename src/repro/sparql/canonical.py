"""Canonical forms for BGP queries (structure signatures).

The query service (``repro.service``) memoizes optimizer output per
*query shape*: two queries that differ only by variable renaming and/or
triple-pattern reordering share one cached plan.  This module computes a
canonical form — an exact invariant, not a lossy hash — so that

    signature(q1) == signature(q2)   iff   q1 ≅ q2

where ≅ is isomorphism of basic graph patterns: a bijection of variables
that maps the pattern multiset of one query onto the other's and the
distinguished-variable set onto the other's.  Constants are part of the
shape (two queries probing different IRIs cost differently and compile
to different scans, so they must not share a plan-cache entry).

The algorithm is the classical individualization–refinement scheme used
for graph canonization, specialized to the small hypergraphs that BGP
queries are (a variable is a vertex; each triple pattern connects the
variables it mentions):

1. colour every variable by local invariants (distinguished?, the
   multiset of (pattern skeleton, positions) it occurs in);
2. refine colours with neighbouring colours until the partition is
   stable (1-WL / colour refinement);
3. if some colour class still holds several variables, individualize
   each candidate in turn, re-refine, and keep the lexicographically
   least canonical form among the branches.

BGP queries have at most a few dozen variables and almost always enough
constants to make refinement discrete, so the search is tiny; a budget
caps pathological symmetric inputs, and callers fall back to treating
such a query as uncacheable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdf.terms import is_variable
from repro.sparql.ast import BGPQuery, TriplePattern


class CanonicalizationBudgetExceeded(RuntimeError):
    """The individualization search exceeded its node budget.

    Raised only for highly symmetric queries (large constant-free
    cliques/cycles); the service treats those as uncacheable rather
    than spending unbounded time canonizing them.
    """


@dataclass
class CanonicalQuery:
    """A query together with its canonical form.

    ``query`` is the renamed, pattern-sorted canonical variant (safe to
    optimize in place of the original — its answers are the original's
    modulo the variable ``mapping``), ``signature`` is a hashable value
    equal across isomorphic queries, and ``mapping`` sends each original
    variable to its canonical name.
    """

    query: BGPQuery
    signature: tuple
    mapping: dict[str, str]


def _skeleton(tp: TriplePattern) -> tuple:
    """The pattern with variables replaced by local occurrence indexes.

    Captures constants and intra-pattern variable equalities (``?x p ?x``
    vs ``?x p ?y``) while forgetting variable names.
    """
    local: dict[str, int] = {}
    out = []
    for term in (tp.s, tp.p, tp.o):
        if is_variable(term):
            out.append(("v", str(local.setdefault(term, len(local)))))
        else:
            out.append(("c", term))
    return tuple(out)


def _rank(keys: dict[str, tuple]) -> dict[str, int]:
    """Convert comparable colour keys into dense integer ranks."""
    order = {key: i for i, key in enumerate(sorted(set(keys.values())))}
    return {v: order[key] for v, key in keys.items()}


class _Canonizer:
    def __init__(self, query: BGPQuery, budget: int) -> None:
        self.query = query
        self.budget = budget
        self.distinguished = frozenset(query.distinguished)
        self.variables = query.variables()
        #: per pattern: (skeleton, {var: positions})
        self.pattern_info = [
            (_skeleton(tp), {v: tp.positions_of(v) for v in tp.variables()})
            for tp in query.patterns
        ]
        #: patterns (indexes) touching each variable
        self.touching: dict[str, list[int]] = {v: [] for v in self.variables}
        for i, (_, occ) in enumerate(self.pattern_info):
            for v in occ:
                self.touching[v].append(i)
        self.best: tuple | None = None
        self.best_order: tuple[str, ...] | None = None

    # -- colour refinement -------------------------------------------------

    def initial_ranks(self) -> dict[str, int]:
        keys = {
            v: (
                v in self.distinguished,
                tuple(
                    sorted(
                        (self.pattern_info[i][0], self.pattern_info[i][1][v])
                        for i in self.touching[v]
                    )
                ),
            )
            for v in self.variables
        }
        return _rank(keys)

    def refine(self, ranks: dict[str, int]) -> dict[str, int]:
        while True:
            keys = {}
            for v in self.variables:
                signature = []
                for i in self.touching[v]:
                    skel, occ = self.pattern_info[i]
                    others = tuple(
                        sorted((ranks[u], occ[u]) for u in occ if u != v)
                    )
                    signature.append((skel, occ[v], others))
                keys[v] = (ranks[v], tuple(sorted(signature)))
            new_ranks = _rank(keys)
            if new_ranks == ranks:
                return ranks
            ranks = new_ranks

    # -- individualization search -----------------------------------------

    def search(self, ranks: dict[str, int]) -> None:
        self.budget -= 1
        if self.budget < 0:
            raise CanonicalizationBudgetExceeded(
                f"canonicalization budget exhausted for {self.query}"
            )
        tied: list[str] | None = None
        by_rank: dict[int, list[str]] = {}
        for v, r in ranks.items():
            by_rank.setdefault(r, []).append(v)
        for r in sorted(by_rank):
            if len(by_rank[r]) > 1:
                tied = sorted(by_rank[r])
                break
        if tied is None:
            self._consider(ranks)
            return
        for v in tied:
            keys = {
                u: (ranks[u], 0 if u == v else 1) for u in self.variables
            }
            self.search(self.refine(_rank(keys)))

    def _consider(self, ranks: dict[str, int]) -> None:
        order = tuple(sorted(self.variables, key=lambda v: ranks[v]))
        form = self._form(order)
        if self.best is None or form < self.best:
            self.best = form
            self.best_order = order

    def _form(self, order: tuple[str, ...]) -> tuple:
        rename = {v: f"?c{i:03d}" for i, v in enumerate(order)}

        def term(t: str) -> str:
            return rename.get(t, t)

        patterns = tuple(
            sorted((term(tp.s), term(tp.p), term(tp.o)) for tp in self.query.patterns)
        )
        head = tuple(sorted(rename[v] for v in self.distinguished))
        return (patterns, head)


def canonicalize(query: BGPQuery, budget: int = 4096) -> CanonicalQuery:
    """Compute the canonical form of *query*.

    Raises :class:`CanonicalizationBudgetExceeded` when the symmetry
    search would exceed *budget* refinement nodes.
    """
    canon = _Canonizer(query, budget)
    if canon.variables:
        canon.search(canon.refine(canon.initial_ranks()))
    else:
        canon._consider({})
    assert canon.best is not None and canon.best_order is not None
    patterns, head = canon.best
    rename = {v: f"?c{i:03d}" for i, v in enumerate(canon.best_order)}
    canonical = BGPQuery(
        distinguished=head,
        patterns=tuple(TriplePattern(*t) for t in patterns),
        name=query.name,
    )
    return CanonicalQuery(query=canonical, signature=canon.best, mapping=rename)


def structure_signature(query: BGPQuery, budget: int = 4096) -> tuple:
    """The renaming/reordering-invariant signature of *query*."""
    return canonicalize(query, budget).signature
