"""Canonical forms for BGP queries (structure signatures).

The query service (``repro.service``) memoizes optimizer output per
*query shape*: two queries that differ only by variable renaming and/or
triple-pattern reordering share one cached plan.  This module computes a
canonical form — an exact invariant, not a lossy hash — so that

    signature(q1) == signature(q2)   iff   q1 ≅ q2

where ≅ is isomorphism of basic graph patterns: a bijection of variables
that maps the pattern multiset of one query onto the other's and the
distinguished-variable set onto the other's.  Constants are part of the
shape (two queries probing different IRIs cost differently and compile
to different scans, so they must not share a plan-cache entry).

The algorithm is the classical individualization–refinement scheme used
for graph canonization, specialized to the small hypergraphs that BGP
queries are (a variable is a vertex; each triple pattern connects the
variables it mentions):

1. colour every variable by local invariants (distinguished?, the
   multiset of (pattern skeleton, positions) it occurs in);
2. refine colours with neighbouring colours until the partition is
   stable (1-WL / colour refinement);
3. if some colour class still holds several variables, individualize
   each candidate in turn, re-refine, and keep the lexicographically
   least canonical form among the branches.

BGP queries have at most a few dozen variables and almost always enough
constants to make refinement discrete, so the search is tiny; a budget
caps pathological symmetric inputs, and callers fall back to treating
such a query as uncacheable.

On top of the exact canonical form, this module implements *template
extraction* (:func:`extract_template`): the liftable RDF constants of a
query (subject and object positions; properties are structural) are
replaced by typed parameter placeholders, and the placeholder-bearing
query is canonicalized.  The resulting :class:`QueryTemplate` has a
*constant-independent* structure signature — two queries that differ
only in liftable constants share one template — plus an ordered binding
vector mapping each parameter slot back to the constant (or explicit
``$name`` placeholder) it was lifted from.  The optimizer then runs once
per template, and each concrete query is served by late-binding its
constants into the template's compiled plan.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.rdf.terms import (
    is_blank,
    is_iri,
    is_literal,
    is_placeholder,
    is_variable,
    kind_of,
)
from repro.sparql.ast import BGPQuery, TriplePattern


class CanonicalizationBudgetExceeded(RuntimeError):
    """The individualization search exceeded its node budget.

    Raised only for highly symmetric queries (large constant-free
    cliques/cycles); the service treats those as uncacheable rather
    than spending unbounded time canonizing them.
    """


@dataclass
class CanonicalQuery:
    """A query together with its canonical form.

    ``query`` is the renamed, pattern-sorted canonical variant (safe to
    optimize in place of the original — its answers are the original's
    modulo the variable ``mapping``), ``signature`` is a hashable value
    equal across isomorphic queries, and ``mapping`` sends each original
    variable to its canonical name.
    """

    query: BGPQuery
    signature: tuple
    mapping: dict[str, str]


def _skeleton(tp: TriplePattern) -> tuple:
    """The pattern with variables replaced by local occurrence indexes.

    Captures constants and intra-pattern variable equalities (``?x p ?x``
    vs ``?x p ?y``) while forgetting variable names.
    """
    local: dict[str, int] = {}
    out = []
    for term in (tp.s, tp.p, tp.o):
        if is_variable(term):
            out.append(("v", str(local.setdefault(term, len(local)))))
        else:
            out.append(("c", term))
    return tuple(out)


def _rank(keys: dict[str, tuple]) -> dict[str, int]:
    """Convert comparable colour keys into dense integer ranks."""
    order = {key: i for i, key in enumerate(sorted(set(keys.values())))}
    return {v: order[key] for v, key in keys.items()}


class _Canonizer:
    def __init__(self, query: BGPQuery, budget: int) -> None:
        self.query = query
        self.budget = budget
        self.distinguished = frozenset(query.distinguished)
        self.variables = query.variables()
        #: per pattern: (skeleton, {var: positions})
        self.pattern_info = [
            (_skeleton(tp), {v: tp.positions_of(v) for v in tp.variables()})
            for tp in query.patterns
        ]
        #: patterns (indexes) touching each variable
        self.touching: dict[str, list[int]] = {v: [] for v in self.variables}
        for i, (_, occ) in enumerate(self.pattern_info):
            for v in occ:
                self.touching[v].append(i)
        self.best: tuple | None = None
        self.best_order: tuple[str, ...] | None = None

    # -- colour refinement -------------------------------------------------

    def initial_ranks(self) -> dict[str, int]:
        keys = {
            v: (
                v in self.distinguished,
                tuple(
                    sorted(
                        (self.pattern_info[i][0], self.pattern_info[i][1][v])
                        for i in self.touching[v]
                    )
                ),
            )
            for v in self.variables
        }
        return _rank(keys)

    def refine(self, ranks: dict[str, int]) -> dict[str, int]:
        while True:
            keys = {}
            for v in self.variables:
                signature = []
                for i in self.touching[v]:
                    skel, occ = self.pattern_info[i]
                    others = tuple(
                        sorted((ranks[u], occ[u]) for u in occ if u != v)
                    )
                    signature.append((skel, occ[v], others))
                keys[v] = (ranks[v], tuple(sorted(signature)))
            new_ranks = _rank(keys)
            if new_ranks == ranks:
                return ranks
            ranks = new_ranks

    # -- individualization search -----------------------------------------

    def search(self, ranks: dict[str, int]) -> None:
        self.budget -= 1
        if self.budget < 0:
            raise CanonicalizationBudgetExceeded(
                f"canonicalization budget exhausted for {self.query}"
            )
        tied: list[str] | None = None
        by_rank: dict[int, list[str]] = {}
        for v, r in ranks.items():
            by_rank.setdefault(r, []).append(v)
        for r in sorted(by_rank):
            if len(by_rank[r]) > 1:
                tied = sorted(by_rank[r])
                break
        if tied is None:
            self._consider(ranks)
            return
        for v in tied:
            keys = {
                u: (ranks[u], 0 if u == v else 1) for u in self.variables
            }
            self.search(self.refine(_rank(keys)))

    def _consider(self, ranks: dict[str, int]) -> None:
        order = tuple(sorted(self.variables, key=lambda v: ranks[v]))
        form = self._form(order)
        if self.best is None or form < self.best:
            self.best = form
            self.best_order = order

    def _form(self, order: tuple[str, ...]) -> tuple:
        rename = {v: f"?c{i:03d}" for i, v in enumerate(order)}

        def term(t: str) -> str:
            return rename.get(t, t)

        patterns = tuple(
            sorted((term(tp.s), term(tp.p), term(tp.o)) for tp in self.query.patterns)
        )
        head = tuple(sorted(rename[v] for v in self.distinguished))
        return (patterns, head)


def canonicalize(query: BGPQuery, budget: int = 4096) -> CanonicalQuery:
    """Compute the canonical form of *query*.

    Raises :class:`CanonicalizationBudgetExceeded` when the symmetry
    search would exceed *budget* refinement nodes.
    """
    canon = _Canonizer(query, budget)
    if canon.variables:
        canon.search(canon.refine(canon.initial_ranks()))
    else:
        canon._consider({})
    assert canon.best is not None and canon.best_order is not None
    patterns, head = canon.best
    rename = {v: f"?c{i:03d}" for i, v in enumerate(canon.best_order)}
    canonical = BGPQuery(
        distinguished=head,
        patterns=tuple(TriplePattern(*t) for t in patterns),
        name=query.name,
    )
    return CanonicalQuery(query=canonical, signature=canon.best, mapping=rename)


def structure_signature(query: BGPQuery, budget: int = 4096) -> tuple:
    """The renaming/reordering-invariant signature of *query*."""
    return canonicalize(query, budget).signature


# -- parameterized plan templates ---------------------------------------------

#: Kind markers substituted for lifted terms before canonicalization.
#: They start with ``$?`` — a spelling the parser rejects for user
#: placeholders — so they can never collide with a real query term.
_MARKER = {
    "iri": "$?iri",
    "literal": "$?lit",
    "blank": "$?blank",
    "term": "$?any",
}
_MARKER_TERMS = frozenset(_MARKER.values())


@dataclass(frozen=True)
class TemplateParam:
    """One parameter slot of a :class:`QueryTemplate`.

    ``slot`` is the position in the binding vector (canonical order),
    ``placeholder`` the ``$s<slot>`` term standing for it in the
    template's canonical query, ``name`` the user-facing name (the
    ``$name`` from the query text, or an auto-generated ``p<i>`` in
    query-text occurrence order for lifted constants), ``default`` the
    original constant (``None`` for explicit placeholders), and
    ``source`` the (pattern index, position) of the original query the
    parameter was lifted from.
    """

    slot: int
    name: str
    placeholder: str
    kind: str
    default: str | None
    source: tuple[int, str]
    explicit: bool = False


@dataclass
class QueryTemplate:
    """A query with its constants lifted into an ordered parameter vector.

    ``query`` is the canonical templated query (variables renamed
    ``?c...``, parameters renamed ``$s<slot>``), ``signature`` the
    constant-independent structure signature — equal across queries that
    differ only in liftable constants (and across variable renaming /
    pattern reordering), ``params`` the binding vector in slot order,
    ``mapping`` the original-variable-to-canonical-variable renaming,
    and ``source`` the query the template was extracted from.
    """

    query: BGPQuery
    signature: tuple
    params: tuple[TemplateParam, ...]
    mapping: dict[str, str]
    source: BGPQuery

    @property
    def arity(self) -> int:
        return len(self.params)

    @property
    def param_names(self) -> tuple[str, ...]:
        """User-facing parameter names, in query-text occurrence order."""
        # Occurrence order is (pattern index, subject before object) —
        # sorting the raw position letters would put 'o' before 's'.
        ordered = sorted(
            self.params,
            key=lambda p: (p.source[0], 0 if p.source[1] == "s" else 1),
        )
        out: list[str] = []
        for p in ordered:
            if p.name not in out:
                out.append(p.name)
        return tuple(out)

    def digest(self) -> str:
        """A short stable hex digest of the structure signature."""
        return hashlib.sha1(repr(self.signature).encode()).hexdigest()[:12]

    def default_values(self) -> tuple[str | None, ...]:
        """The original constants, in slot order (None for explicit params)."""
        return tuple(p.default for p in self.params)

    def check_values(self, values: tuple[str | None, ...]) -> tuple[str, ...]:
        """Validate a binding vector; returns it fully typed, or raises."""
        if len(values) != len(self.params):
            raise ValueError(
                f"template takes {len(self.params)} parameters, "
                f"got {len(values)}"
            )
        for param, value in zip(self.params, values):
            label = f"parameter ${param.name}"
            if value is None:
                raise ValueError(f"{label} is unbound")
            if not isinstance(value, str) or not value:
                raise ValueError(f"{label}: not an RDF term: {value!r}")
            if is_variable(value) or is_placeholder(value):
                raise ValueError(f"{label}: must bind a constant, got {value!r}")
            if param.source[1] == "s" and is_literal(value):
                raise ValueError(
                    f"{label}: literal {value} cannot bind a subject position"
                )
            if param.kind in ("iri", "blank") and not (
                is_iri(value) or is_blank(value)
            ):
                raise ValueError(
                    f"{label}: expected a resource (IRI/blank node), "
                    f"got {value!r}"
                )
            if param.kind == "literal" and not is_literal(value):
                raise ValueError(
                    f"{label}: expected a literal, got {value!r}"
                )
        return tuple(values)  # type: ignore[return-value]

    def substitution(self, values: tuple[str, ...]) -> dict[str, str]:
        """The placeholder -> constant mapping for a binding vector."""
        return {p.placeholder: v for p, v in zip(self.params, values)}

    def bind_canonical(self, values: tuple[str, ...]) -> BGPQuery:
        """The canonical query with *values* substituted for the slots."""
        subst = self.substitution(values)
        patterns = tuple(
            TriplePattern(
                subst.get(tp.s, tp.s), tp.p, subst.get(tp.o, tp.o)
            )
            for tp in self.query.patterns
        )
        return BGPQuery(self.query.distinguished, patterns, name=self.query.name)

    def bind_source(self, values: tuple[str, ...]) -> BGPQuery:
        """The original-variable-space query with *values* bound.

        Binding the default values reproduces ``source`` exactly.
        """
        terms = [
            {"s": tp.s, "p": tp.p, "o": tp.o} for tp in self.source.patterns
        ]
        for param, value in zip(self.params, values):
            i, pos = param.source
            terms[i][pos] = value
        patterns = tuple(
            TriplePattern(t["s"], t["p"], t["o"]) for t in terms
        )
        return BGPQuery(
            self.source.distinguished, patterns, name=self.source.name
        )

    def instance_key(self, values: tuple[str, ...]) -> tuple:
        """The cache key of one fully-bound instance of this template.

        Template signature plus the binding vector: equal keys identify
        literally identical canonical bound queries, so plan- and
        result-cache entries stored under an instance key are safe to
        serve to any query producing the same key.

        The key is *sound but not complete* for isomorphism: when the
        masked query is symmetric and only the constants distinguish
        the variables (e.g. ``?x p <A> . ?y p <B>`` vs its ?x/?y swap),
        two isomorphic queries can canonicalize with swapped slots and
        produce different keys.  Such pairs miss each other's cache
        entries (they still share the template, so neither re-optimizes)
        but can never be served each other's rows — the safe direction.
        The pre-template constant-inclusive signature unified these;
        the template signature trades that rare sharing for
        constant-independence.
        """
        return (self.signature, tuple(values))


def extract_template(
    query: BGPQuery, budget: int = 4096, lift_constants: bool = True
) -> QueryTemplate:
    """Lift the liftable constants of *query* into a parameter vector.

    Liftable positions are subject and object constants, plus explicit
    ``$name`` placeholders already present in the query.  Properties are
    never lifted: the property selects the §5.1 partition files and
    drives the cost model, so it is part of query structure.  (An
    ``rdf:type`` object *is* liftable — the physical scan re-derives its
    file selection from the bound pattern at execution time.)

    With ``lift_constants=False`` only explicit placeholders become
    parameters and the signature degenerates to the classical
    constant-inclusive canonical signature — one code path serves both
    the template-sharing and the ablation/legacy behaviour.

    Raises :class:`CanonicalizationBudgetExceeded` like
    :func:`canonicalize` (masking constants can only add symmetry).
    """
    occurrences: list[tuple[int, str, str, str | None, str | None]] = []
    masked: list[TriplePattern] = []
    for i, tp in enumerate(query.patterns):
        terms = {"s": tp.s, "p": tp.p, "o": tp.o}
        for pos in ("s", "o"):
            term = terms[pos]
            if is_variable(term):
                continue
            if is_placeholder(term):
                kind = "term"
                occurrences.append((i, pos, kind, None, term[1:]))
                terms[pos] = _MARKER[kind]
            elif lift_constants:
                kind = kind_of(term).value
                occurrences.append((i, pos, kind, term, None))
                terms[pos] = _MARKER[kind]
        masked.append(TriplePattern(terms["s"], terms["p"], terms["o"]))
    masked_query = BGPQuery(query.distinguished, tuple(masked), name=query.name)
    canon = canonicalize(masked_query, budget)

    # Canonical slots: enumerate marker occurrences over the canonical
    # pattern order (s before o within a pattern) and substitute the
    # canonical placeholder names.
    slots_at: dict[tuple[int, str], int] = {}
    templated: list[TriplePattern] = []
    slot = 0
    for j, ctp in enumerate(canon.query.patterns):
        terms = {"s": ctp.s, "p": ctp.p, "o": ctp.o}
        for pos in ("s", "o"):
            if terms[pos] in _MARKER_TERMS:
                slots_at[(j, pos)] = slot
                terms[pos] = f"$s{slot}"
                slot += 1
        templated.append(TriplePattern(terms["s"], terms["p"], terms["o"]))

    # Correspondence original pattern -> canonical pattern.  Canonical
    # patterns are exactly the renamed masked patterns, sorted; identical
    # masked patterns are interchangeable, so a greedy first-fit
    # assignment is sound.
    remaining: dict[tuple[str, str, str], list[int]] = {}
    for j, ctp in enumerate(canon.query.patterns):
        remaining.setdefault((ctp.s, ctp.p, ctp.o), []).append(j)
    pattern_at: list[int] = []
    for tp in masked:
        renamed = tuple(canon.mapping.get(t, t) for t in (tp.s, tp.p, tp.o))
        pattern_at.append(remaining[renamed].pop(0))

    explicit_names = {name for (_, _, _, _, name) in occurrences if name}
    by_slot: dict[int, TemplateParam] = {}
    auto = 0
    for i, pos, kind, default, explicit_name in occurrences:
        k = slots_at[(pattern_at[i], pos)]
        if explicit_name is None:
            while f"p{auto}" in explicit_names:
                auto += 1
            name, auto = f"p{auto}", auto + 1
        else:
            name = explicit_name
        by_slot[k] = TemplateParam(
            slot=k,
            name=name,
            placeholder=f"$s{k}",
            kind=kind,
            default=default,
            source=(i, pos),
            explicit=explicit_name is not None,
        )
    params = tuple(by_slot[k] for k in range(len(by_slot)))

    return QueryTemplate(
        query=BGPQuery(
            distinguished=canon.query.distinguished,
            patterns=tuple(templated),
            name=query.name,
        ),
        signature=canon.signature,
        params=params,
        mapping=canon.mapping,
        source=query,
    )
