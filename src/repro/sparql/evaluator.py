"""Reference BGP evaluator (ground truth for every execution engine).

Implements the evaluation semantics of §2 directly:

    eval(q) = { mu(?v1..?vm) | mu: var(q) -> val(G), {mu(t1)..mu(tn)} ⊆ G }

using index nested loops with a greedy most-bound-first pattern order.
Every distributed engine in this repo is tested against this evaluator.
"""

from __future__ import annotations

from typing import Iterable

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import is_variable
from repro.sparql.ast import BGPQuery, TriplePattern

Binding = dict[str, str]


def _substitute(tp: TriplePattern, binding: Binding) -> tuple[str, str, str]:
    """Apply a partial binding to a pattern, leaving free variables in place."""
    return (
        binding.get(tp.s, tp.s),
        binding.get(tp.p, tp.p),
        binding.get(tp.o, tp.o),
    )


def _bound_count(tp: TriplePattern, binding: Binding) -> int:
    """Number of bound positions of *tp* under *binding* (selectivity proxy)."""
    return sum(
        1
        for term in (tp.s, tp.p, tp.o)
        if not is_variable(term) or term in binding
    )


def _bound_variables(tp: TriplePattern, binding: Binding) -> int:
    """Number of *variables* of *tp* already bound.

    The primary ordering criterion: patterns connected to the current
    partial binding must come before unconnected ones, otherwise the
    evaluation wanders into cartesian-product branches (e.g. LUBM Q5,
    where every pattern ties on bound-position count).
    """
    return sum(1 for v in tp.variables() if v in binding)


def evaluate(query: BGPQuery, graph: RDFGraph) -> set[tuple[str, ...]]:
    """Evaluate *query* over *graph*; return the set of distinguished-variable
    tuples (SPARQL set semantics on SELECT DISTINCT, which is what the
    paper's result cardinalities |Q| count)."""
    results: set[tuple[str, ...]] = set()
    for binding in bindings(query.patterns, graph):
        results.add(tuple(binding[v] for v in query.distinguished))
    return results


def count(query: BGPQuery, graph: RDFGraph) -> int:
    """Cardinality of the distinct query answer."""
    return len(evaluate(query, graph))


def bindings(
    patterns: Iterable[TriplePattern], graph: RDFGraph
) -> Iterable[Binding]:
    """Yield all total bindings satisfying all *patterns* over *graph*."""
    remaining = list(patterns)

    def extend(binding: Binding, todo: list[TriplePattern]) -> Iterable[Binding]:
        if not todo:
            yield dict(binding)
            return
        # Greedy: stay connected to the current binding, then most-bound.
        todo = sorted(
            todo,
            key=lambda tp: (-_bound_variables(tp, binding), -_bound_count(tp, binding)),
        )
        tp, rest = todo[0], todo[1:]
        s, p, o = _substitute(tp, binding)
        for ms, mp, mo in graph.match(s, p, o):
            new = dict(binding)
            ok = True
            for term, value in ((tp.s, ms), (tp.p, mp), (tp.o, mo)):
                if is_variable(term):
                    if term in new and new[term] != value:
                        ok = False
                        break
                    new[term] = value
            if ok:
                yield from extend(new, rest)

    yield from extend({}, remaining)
