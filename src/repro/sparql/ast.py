"""SPARQL BGP abstract syntax: triple patterns and conjunctive queries.

The paper works with the BGP (Basic Graph Pattern) dialect of SPARQL,
i.e. Select-Project-Join conjunctive queries (§2):

    SELECT ?v1 ... ?vm WHERE { t1 . t2 . ... tn }

Triple patterns generalize triples by allowing variables in any position
(objects may also be literals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.rdf.terms import (
    RDF_TYPE,
    RDF_TYPE_SHORTHAND,
    is_constant,
    is_literal,
    is_placeholder,
    is_variable,
)


@dataclass(frozen=True, order=True)
class TriplePattern:
    """A triple pattern (s p o) over (U ∪ V) x (U ∪ V) x (U ∪ L ∪ V).

    Subject and object positions additionally admit ``$name`` parameter
    placeholders (prepared-query templates); the property position does
    not — the property drives the §5.1 file layout and the cost model,
    so it is part of a query's *structure*, never of its parameters.
    """

    s: str
    p: str
    o: str

    def __post_init__(self) -> None:
        if self.p == RDF_TYPE_SHORTHAND:
            object.__setattr__(self, "p", RDF_TYPE)
        if is_literal(self.s):
            raise ValueError(f"literal in subject position: {self.s!r}")
        if is_literal(self.p):
            raise ValueError(f"literal in property position: {self.p!r}")
        if is_placeholder(self.p):
            raise ValueError(
                f"parameter placeholder in property position: {self.p!r} "
                "(properties are structural and cannot be parameterized)"
            )

    def variables(self) -> tuple[str, ...]:
        """Variables of this pattern, in s,p,o order, deduplicated."""
        seen: list[str] = []
        for term in (self.s, self.p, self.o):
            if is_variable(term) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def constants(self) -> tuple[str, ...]:
        """Constant terms of this pattern, in s,p,o order."""
        return tuple(t for t in (self.s, self.p, self.o) if is_constant(t))

    def placeholders(self) -> tuple[str, ...]:
        """Parameter placeholders of this pattern, in s,o order, deduplicated."""
        seen: list[str] = []
        for term in (self.s, self.o):
            if is_placeholder(term) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def positions_of(self, var: str) -> tuple[str, ...]:
        """Which of 's','p','o' hold *var*."""
        return tuple(
            pos for pos, term in zip("spo", (self.s, self.p, self.o)) if term == var
        )

    def __str__(self) -> str:
        return f"{self.s} {self.p} {self.o}"


@dataclass(frozen=True)
class BGPQuery:
    """A conjunctive (BGP) query: distinguished variables + triple patterns.

    The paper restricts attention to queries without cartesian products;
    :meth:`is_connected` checks that restriction (see §2: a query with a
    product is decomposed into x-free subqueries).
    """

    distinguished: tuple[str, ...]
    patterns: tuple[TriplePattern, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.patterns:
            raise ValueError("a BGP query needs at least one triple pattern")
        allvars = self.variables()
        for v in self.distinguished:
            if not is_variable(v):
                raise ValueError(f"distinguished term is not a variable: {v!r}")
            if v not in allvars:
                raise ValueError(f"distinguished variable {v!r} not in query body")

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self.patterns)

    def variables(self) -> tuple[str, ...]:
        """All variables of the query, in first-occurrence order."""
        seen: list[str] = []
        for tp in self.patterns:
            for v in tp.variables():
                if v not in seen:
                    seen.append(v)
        return tuple(seen)

    def placeholders(self) -> tuple[str, ...]:
        """All parameter placeholders of the query, in first-occurrence order."""
        seen: list[str] = []
        for tp in self.patterns:
            for p in tp.placeholders():
                if p not in seen:
                    seen.append(p)
        return tuple(seen)

    def join_variables(self) -> tuple[str, ...]:
        """Variables occurring in at least two triple patterns.

        These drive the variable graph (Definition 3.1): an edge exists
        between two patterns iff they share a variable, and the join
        variables are exactly the edge labels.
        """
        counts: dict[str, int] = {}
        for tp in self.patterns:
            for v in tp.variables():
                counts[v] = counts.get(v, 0) + 1
        return tuple(v for v in self.variables() if counts[v] >= 2)

    def is_connected(self) -> bool:
        """True iff the query has no cartesian product (one join component)."""
        if len(self.patterns) == 1:
            return True
        # Union-find over patterns linked by shared variables.
        parent = list(range(len(self.patterns)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        by_var: dict[str, int] = {}
        for i, tp in enumerate(self.patterns):
            for v in tp.variables():
                if v in by_var:
                    parent[find(i)] = find(by_var[v])
                else:
                    by_var[v] = i
        return len({find(i) for i in range(len(self.patterns))}) == 1

    def __str__(self) -> str:
        head = " ".join(self.distinguished)
        body = " . ".join(str(tp) for tp in self.patterns)
        return f"SELECT {head} WHERE {{ {body} }}"
