"""repro.sparql subpackage: BGP AST, parser, canonical forms, evaluator."""

from repro.sparql.ast import BGPQuery, TriplePattern
from repro.sparql.canonical import (
    CanonicalizationBudgetExceeded,
    CanonicalQuery,
    canonicalize,
    structure_signature,
)
from repro.sparql.parser import (
    SPARQLSyntaxError,
    SparqlSyntaxError,
    parse_query,
    tokenize,
)

__all__ = [
    "BGPQuery",
    "CanonicalQuery",
    "CanonicalizationBudgetExceeded",
    "SPARQLSyntaxError",
    "SparqlSyntaxError",
    "TriplePattern",
    "canonicalize",
    "parse_query",
    "structure_signature",
    "tokenize",
]
