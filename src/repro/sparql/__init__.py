"""repro.sparql subpackage."""
