"""The §5.4 cost model: total work of a MapReduce plan.

    c(p) = tw(p) = sum over operators of (c_io + c_cpu + c_net)

with the per-operator formulas of §5.4:

* Map Scan          c(MS)  = |file| * c_read
* Filter            c(F)   = |input| * c_check
* Project           c(pi)  = |input| * c_check
* Map Shuffler      c(MF)  = |input| * (c_read + c_write)
* Map Join          c(MJ)  = c_join(...) + |output| * c_write
* Reduce Join       c(RJ)  = sum|input| * c_shuffle + c_join(...) + |output| * c_write

The model is evaluated directly on *logical* plans: the logical->physical
translation rules of §5.2 are deterministic (a join whose inputs are all
matches becomes a map join; any other join becomes a reduce join fed by
map shufflers where needed), so the physical cost is computable from the
logical DAG plus cardinality estimates.  This is what both the
CliqueSquare plan selector and the binary-plan baselines use; the
execution *simulator* (``repro.mapreduce``) independently measures
response time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.logical import Join, LogicalOperator, LogicalPlan, Match, Project, Select
from repro.cost.cardinality import CardinalityEstimator
from repro.cost.params import DEFAULT_PARAMS, CostParams


def is_first_level_join(op: Join) -> bool:
    """§5.2 translation rule: a join all of whose inputs are match
    operators becomes a Map Join (co-located by the §5.1 partitioner)."""
    return all(isinstance(child, Match) for child in op.inputs)


@dataclass
class CostBreakdown:
    """Total work plus its components, for reporting and ablations."""

    io: float = 0.0
    cpu: float = 0.0
    net: float = 0.0
    details: list[tuple[str, float]] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.io + self.cpu + self.net


class PlanCoster:
    """Costs logical operators/plans under §5.4 with a given estimator."""

    def __init__(
        self,
        estimator: CardinalityEstimator,
        params: CostParams = DEFAULT_PARAMS,
    ) -> None:
        self.estimator = estimator
        self.params = params

    # -- cardinalities -----------------------------------------------------

    def output_cardinality(self, op: LogicalOperator) -> float:
        """Estimated output size of *op* (subset-determined for joins)."""
        if isinstance(op, Match):
            return self.estimator.pattern_cardinality(op.pattern)
        if isinstance(op, (Join, Select)):
            return self.estimator.subset_cardinality(op.patterns())
        if isinstance(op, Project):
            return self.output_cardinality(op.child)
        raise TypeError(f"unknown operator {type(op)!r}")

    def _join_cpu(self, op: Join) -> float:
        """c_join(op1 .. opn): per-tuple work over inputs and output."""
        inputs = sum(self.output_cardinality(c) for c in op.inputs)
        output = self.output_cardinality(op)
        return self.params.c_join * (inputs + output)

    # -- operator costs ----------------------------------------------------

    def operator_cost(self, op: LogicalOperator) -> CostBreakdown:
        """The §5.4 cost of one operator (not including its children)."""
        p = self.params
        bd = CostBreakdown()
        if isinstance(op, Match):
            scanned = self.estimator.scan_cardinality(op.pattern)
            bd.io += scanned * p.c_read  # c(MS)
            bd.details.append(("MS", scanned * p.c_read))
            if _needs_filter(op.pattern):
                checks = scanned * p.c_check  # c(F)
                bd.cpu += checks
                bd.details.append(("F", checks))
            return bd
        if isinstance(op, Join):
            output = self.output_cardinality(op)
            if is_first_level_join(op):
                cpu = self._join_cpu(op)  # c(MJ)
                io = output * p.c_write
                bd.cpu += cpu
                bd.io += io
                bd.details.append(("MJ", cpu + io))
                return bd
            # Reduce join: shufflers for non-match inputs that are
            # themselves reduce-side results (their output sits in HDFS),
            # then the repartition join.
            for child in op.inputs:
                card = self.output_cardinality(child)
                if isinstance(child, Join) and not is_first_level_join(child):
                    mf = card * (p.c_read + p.c_write)  # c(MF)
                    bd.io += mf
                    bd.details.append(("MF", mf))
                bd.net += card * p.c_shuffle
            cpu = self._join_cpu(op)
            io = output * p.c_write
            bd.cpu += cpu
            bd.io += io
            bd.details.append(("RJ", cpu + io))
            return bd
        if isinstance(op, Select):
            checks = self.output_cardinality(op.child) * p.c_check
            bd.cpu += checks
            bd.details.append(("F", checks))
            return bd
        if isinstance(op, Project):
            checks = self.output_cardinality(op.child) * p.c_check
            bd.cpu += checks
            bd.details.append(("pi", checks))
            return bd
        raise TypeError(f"unknown operator {type(op)!r}")

    # -- plan costs ---------------------------------------------------------

    def cost_breakdown(self, plan: LogicalPlan | LogicalOperator) -> CostBreakdown:
        """Total work tw(p): sum over the distinct operators of the DAG."""
        root = plan.root if isinstance(plan, LogicalPlan) else plan
        total = CostBreakdown()
        for op in root.iter_operators():
            bd = self.operator_cost(op)
            total.io += bd.io
            total.cpu += bd.cpu
            total.net += bd.net
            total.details.extend(bd.details)
        return total

    def cost(self, plan: LogicalPlan | LogicalOperator) -> float:
        """c(p) = tw(p)."""
        return self.cost_breakdown(plan).total


def _needs_filter(tp) -> bool:
    """Mirror of the §5.2 translation rule: the property constant (and a
    bound rdf:type object) select the scan *file*; only subject/object
    constants beyond that — or repeated variables — need a Filter."""
    if not tp.s.startswith("?"):
        return True
    if not tp.o.startswith("?") and tp.p != "rdf:type":
        return True
    tp_vars = [t for t in (tp.s, tp.p, tp.o) if t.startswith("?")]
    return len(tp_vars) != len(set(tp_vars))


def select_best_plan(
    plans: list[LogicalPlan], coster: PlanCoster
) -> tuple[LogicalPlan, float]:
    """Pick the cheapest plan under the cost model (§6: 'the selected
    plans (based on this general cost model)')."""
    if not plans:
        raise ValueError("no plans to select from")
    best = min(plans, key=coster.cost)
    return best, coster.cost(best)
