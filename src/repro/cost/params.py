"""Cost-model constants — the c_* unit costs of §5.4.

The paper's model charges per-tuple unit costs for disk reads/writes,
network shuffles, predicate checks and join work.  Absolute values are
testbed-specific; the defaults below follow the usual disk < network
ordering of a commodity Hadoop cluster and can be swept for ablations
(see ``benchmarks/test_ablation_cost_params.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostParams:
    """Per-tuple unit costs plus MapReduce framework overheads."""

    #: time to read one tuple from (simulated) HDFS — c_read
    c_read: float = 1.0
    #: time to write one tuple to disk — c_write
    c_write: float = 1.5
    #: time to transfer one tuple between nodes — c_shuffle
    c_shuffle: float = 2.5
    #: time for one comparison on part of a tuple — c_check
    c_check: float = 0.1
    #: per-tuple join work factor — used by c_join(op1 .. opn)
    c_join: float = 0.4
    #: fixed initialization overhead of one MapReduce job (the paper's
    #: §6.4 discussion: "pay the initialization overhead of these
    #: MapReduce jobs"); used by the execution simulator, not by the
    #: §5.4 total-work formula.
    job_overhead: float = 0.0

    def scaled(self, **kwargs: float) -> "CostParams":
        """A copy with some constants replaced (ablation helper)."""
        return replace(self, **kwargs)


#: Defaults used by the optimizer's plan selection.
DEFAULT_PARAMS = CostParams()
