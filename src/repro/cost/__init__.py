"""repro.cost subpackage."""
