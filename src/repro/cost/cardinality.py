"""Catalog statistics and cardinality estimation.

The §5.4 cost formulas need cardinalities |op| for every operator.  The
estimator keeps classical per-property statistics (triple counts and
per-position distinct counts, the same statistics RDF-3X-style engines
keep) and combines them with the textbook independence assumptions:

* a scan of property p reads count(p) tuples;
* constants reduce cardinality by the distinct count of their position;
* an n-way join on shared variables divides the product of the input
  cardinalities by (max distinct)^{occurrences-1} per join variable.

Estimates are *subset-determined*: the estimated cardinality of a join
result depends only on the set of triple patterns it covers, which makes
the binary-plan dynamic programming of ``core.binary`` exact for the
model (optimal substructure holds).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import is_variable
from repro.sparql.ast import TriplePattern


@dataclass
class PropertyStats:
    """Statistics for one property value."""

    count: int = 0
    distinct_subjects: int = 0
    distinct_objects: int = 0


@dataclass(frozen=True)
class TripleDelta:
    """The catalog-visible novelty of one incoming triple.

    Each flag records whether the triple introduces a value the graph
    has not seen in that role yet; the flags must be computed *before*
    the triple is inserted (see :func:`triple_delta`).  Applying the
    delta to a :class:`CatalogStatistics` (:meth:`CatalogStatistics
    .apply_delta`) reproduces exactly what a full
    :meth:`CatalogStatistics.from_graph` recompute would produce, at
    O(1) per triple instead of O(|G|) per mutation batch.
    """

    property: str
    new_subject: bool
    new_property: bool
    new_object: bool
    new_property_subject: bool
    new_property_object: bool


def triple_delta(graph: RDFGraph, s: str, p: str, o: str) -> TripleDelta | None:
    """The :class:`TripleDelta` of adding (s, p, o) to *graph*.

    Must be called **before** ``graph.add(s, p, o)``.  Returns ``None``
    when the triple is already present (its insertion changes nothing).
    """
    if (s, p, o) in graph:
        return None
    return TripleDelta(
        property=p,
        new_subject=not graph.has_subject(s),
        new_property=not graph.has_property(p),
        new_object=not graph.has_object(o),
        new_property_subject=not graph.has_subject_property(s, p),
        new_property_object=not graph.has_property_object(p, o),
    )


@dataclass
class CatalogStatistics:
    """Dataset-level statistics backing the estimator."""

    triple_count: int = 0
    distinct_subjects: int = 0
    distinct_properties: int = 0
    distinct_objects: int = 0
    per_property: dict[str, PropertyStats] = field(default_factory=dict)

    @classmethod
    def from_graph(cls, graph: RDFGraph) -> "CatalogStatistics":
        """Collect statistics in one pass over an RDF graph."""
        stats = cls(
            triple_count=len(graph),
            distinct_subjects=len(graph.subjects),
            distinct_properties=len(graph.properties),
            distinct_objects=len(graph.objects),
        )
        for p in graph.properties:
            subjects: set[str] = set()
            objects: set[str] = set()
            count = 0
            for s, _, o in graph.match("?s", p, "?o"):
                subjects.add(s)
                objects.add(o)
                count += 1
            stats.per_property[p] = PropertyStats(
                count=count,
                distinct_subjects=len(subjects),
                distinct_objects=len(objects),
            )
        return stats

    def copy(self) -> "CatalogStatistics":
        """An independent copy (per-property entries are not aliased)."""
        return CatalogStatistics(
            triple_count=self.triple_count,
            distinct_subjects=self.distinct_subjects,
            distinct_properties=self.distinct_properties,
            distinct_objects=self.distinct_objects,
            per_property={p: replace(ps) for p, ps in self.per_property.items()},
        )

    def apply_delta(self, delta: TripleDelta) -> None:
        """Fold one new triple's :class:`TripleDelta` into the catalog.

        The incremental path of the statistics: a mutation batch copies
        the catalog once and applies one delta per genuinely new triple,
        instead of recomputing every count from the graph.  Equivalent
        to :meth:`from_graph` on the post-mutation graph (asserted in
        tests/test_cluster.py).
        """
        self.triple_count += 1
        self.distinct_subjects += delta.new_subject
        self.distinct_properties += delta.new_property
        self.distinct_objects += delta.new_object
        prop = self.per_property.get(delta.property)
        if prop is None:
            prop = self.per_property[delta.property] = PropertyStats()
        prop.count += 1
        prop.distinct_subjects += delta.new_property_subject
        prop.distinct_objects += delta.new_property_object

    @classmethod
    def merge_disjoint(
        cls, parts: Iterable["CatalogStatistics"]
    ) -> "CatalogStatistics":
        """Aggregate per-shard catalogs into the global catalog.

        Exact when the parts are *placement-disjoint*, which the §5.1
        layout guarantees for shard-local statistics: every distinct
        subject lives on exactly one node of the subject replica (hence
        one shard), every property on one node of the property replica,
        every object on one node of the object replica — so distinct
        counts sum and the per-property maps union without overlap.
        """
        total = cls()
        for part in parts:
            total.triple_count += part.triple_count
            total.distinct_subjects += part.distinct_subjects
            total.distinct_properties += part.distinct_properties
            total.distinct_objects += part.distinct_objects
            for p, ps in part.per_property.items():
                mine = total.per_property.get(p)
                if mine is None:
                    total.per_property[p] = replace(ps)
                else:
                    # Overlap only happens for non-disjoint inputs; sum
                    # the counts (exact) and the distincts (upper bound).
                    mine.count += ps.count
                    mine.distinct_subjects += ps.distinct_subjects
                    mine.distinct_objects += ps.distinct_objects
        return total


class CardinalityEstimator:
    """Estimates scan/output cardinalities and per-variable distinct counts."""

    def __init__(self, stats: CatalogStatistics) -> None:
        self.stats = stats
        self._subset_cache: dict[frozenset[TriplePattern], float] = {}

    # -- per-pattern ------------------------------------------------------

    def scan_cardinality(self, tp: TriplePattern) -> float:
        """Tuples the Map Scan for *tp* reads.

        With the §5.1 layout, a bound property selects a single property
        file; an unbound property forces reading every file.
        """
        if is_variable(tp.p):
            return float(self.stats.triple_count)
        prop = self.stats.per_property.get(tp.p)
        return float(prop.count) if prop else 0.0

    def pattern_cardinality(self, tp: TriplePattern) -> float:
        """Estimated matches of *tp* after all constant filters."""
        card = self.scan_cardinality(tp)
        if card == 0:
            return 0.0
        if not is_variable(tp.p):
            prop = self.stats.per_property[tp.p]
            if not is_variable(tp.s):
                card /= max(prop.distinct_subjects, 1)
            if not is_variable(tp.o):
                card /= max(prop.distinct_objects, 1)
        else:
            if not is_variable(tp.s):
                card /= max(self.stats.distinct_subjects, 1)
            if not is_variable(tp.o):
                card /= max(self.stats.distinct_objects, 1)
        # Repeated variable inside one pattern (?x p ?x): one more filter.
        tp_vars = [t for t in (tp.s, tp.p, tp.o) if is_variable(t)]
        if len(tp_vars) != len(set(tp_vars)):
            card /= max(self.stats.distinct_subjects, 1)
        return max(card, 1e-9)

    def pattern_distinct(self, tp: TriplePattern, var: str) -> float:
        """Estimated distinct values *var* takes among matches of *tp*."""
        card = self.pattern_cardinality(tp)
        positions = tp.positions_of(var)
        if not positions:
            raise ValueError(f"{var} does not occur in {tp}")
        pos = positions[0]
        if not is_variable(tp.p):
            prop = self.stats.per_property.get(tp.p)
            if prop is None:
                return 0.0
            if pos == "s":
                return float(min(prop.distinct_subjects, card) or 1)
            if pos == "o":
                return float(min(prop.distinct_objects, card) or 1)
            return 1.0  # var is the (bound) property: impossible, defensive
        if pos == "p":
            return float(min(self.stats.distinct_properties, card) or 1)
        if pos == "s":
            return float(min(self.stats.distinct_subjects, card) or 1)
        return float(min(self.stats.distinct_objects, card) or 1)

    # -- per pattern-set ---------------------------------------------------

    def subset_cardinality(self, patterns: frozenset[TriplePattern]) -> float:
        """Estimated result size of the natural join of *patterns*.

        |join(S)| = prod |tp| / prod_v (max_tp V(tp, v))^{occ(v)-1}
        with occ(v) = number of patterns of S containing v.
        """
        patterns = frozenset(patterns)
        cached = self._subset_cache.get(patterns)
        if cached is not None:
            return cached
        card = 1.0
        occurrences: dict[str, list[float]] = {}
        for tp in patterns:
            card *= self.pattern_cardinality(tp)
            for v in tp.variables():
                occurrences.setdefault(v, []).append(self.pattern_distinct(tp, v))
        for distincts in occurrences.values():
            if len(distincts) > 1:
                denominator = max(max(distincts), 1.0)
                card /= denominator ** (len(distincts) - 1)
        card = max(card, 0.0)
        self._subset_cache[patterns] = card
        return card

    def variable_distinct(
        self, patterns: frozenset[TriplePattern], var: str
    ) -> float:
        """Estimated distinct values of *var* in the join of *patterns*."""
        values = [
            self.pattern_distinct(tp, var)
            for tp in patterns
            if var in tp.variables()
        ]
        if not values:
            raise ValueError(f"{var} does not occur in the pattern set")
        return max(min(min(values), self.subset_cardinality(patterns)), 1.0)
