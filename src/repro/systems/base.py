"""Common system interface for the Fig. 21 comparison."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.sparql.ast import BGPQuery


@dataclass
class SystemReport:
    """One system's run of one query."""

    system: str
    query_name: str
    answers: set[tuple]
    response_time: float
    num_jobs: int
    job_signature: str
    pwoc: bool = False
    details: dict[str, object] = field(default_factory=dict)

    @property
    def cardinality(self) -> int:
        return len(self.answers)


class QuerySystem(Protocol):
    """A distributed RDF query engine under comparison."""

    name: str

    def run(self, query: BGPQuery) -> SystemReport:  # pragma: no cover
        ...
