"""repro.systems subpackage."""
