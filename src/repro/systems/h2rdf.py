"""H2RDF+ comparator — simulated (see DESIGN.md substitutions).

H2RDF+ [27] stores aggressively-indexed, compressed triples in HBase and
evaluates queries with n-ary *merge* joins organized in **left-deep
plans**: one join at a time, each join its own MapReduce job (small
joins adaptively run centralized, without MapReduce).  That gives it
excellent selective-query performance (index scans retrieve only
matching tuples) but long chains of sequential jobs — each reading and
writing intermediate results and paying job initialization — on
non-selective queries, which is exactly the behaviour Fig. 21 shows.

Behaviour reproduced:

* index-based access: a pattern's input cost is proportional to its
  *matching* tuples (HBase range scan), not to a full partition scan;
* greedy left-deep planning: start from the most selective pattern; at
  each level join, on one variable, all remaining patterns containing
  it (an n-ary merge join);
* adaptive execution: a join whose inputs are below
  ``centralized_threshold`` tuples runs centralized (no job); otherwise
  it is one MapReduce job (overhead + read + shuffle + join + write).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.params import CostParams
from repro.rdf.graph import RDFGraph
from repro.relational.joins import star_join
from repro.relational.relation import Relation
from repro.sparql.ast import BGPQuery, TriplePattern
from repro.systems.base import SystemReport

#: Default unit costs; H2RDF+ pays the same MapReduce freight as everyone.
H2RDF_PARAMS = CostParams(job_overhead=400.0)

#: HBase indexed access cost per retrieved tuple, relative to c_read.
INDEX_COST_FACTOR = 0.5

#: Joins with all inputs below this size run centralized (no MR job).
CENTRALIZED_THRESHOLD = 2_000

#: Effective parallelism of one H2RDF+ sort-merge join job.  The paper's
#: §6.4 finding — "H2RDF+ builds left-deep query plans and does not fully
#: exploit parallelism" — stems from each join running alone, over few
#: key-range partitions, rather than as a flat bushy plan saturating the
#: cluster; we model it as a small constant instead of the cluster size.
MR_PARALLELISM = 2


@dataclass
class _Step:
    """One left-deep join level."""

    variable: str
    patterns: tuple[TriplePattern, ...]
    centralized: bool
    input_tuples: int
    output_tuples: int


class H2RDFPlus:
    """The H2RDF+ comparator."""

    name = "H2RDF+"

    def __init__(
        self,
        graph: RDFGraph,
        num_nodes: int = 7,
        params: CostParams = H2RDF_PARAMS,
        index_cost_factor: float = INDEX_COST_FACTOR,
        centralized_threshold: int = CENTRALIZED_THRESHOLD,
        mr_parallelism: int = MR_PARALLELISM,
    ) -> None:
        self.graph = graph
        self.num_nodes = max(num_nodes, 1)
        self.params = params
        self.index_cost_factor = index_cost_factor
        self.centralized_threshold = centralized_threshold
        self.mr_parallelism = max(1, min(mr_parallelism, self.num_nodes))

    # -- index access ------------------------------------------------------

    def pattern_relation(self, tp: TriplePattern) -> Relation:
        """Matches of one pattern, via the (simulated) HBase indexes."""
        attrs = tp.variables()
        rows: list[tuple] = []
        for s, p, o in self.graph.match(tp.s, tp.p, tp.o):
            binding: dict[str, str] = {}
            ok = True
            for term, value in ((tp.s, s), (tp.p, p), (tp.o, o)):
                if term.startswith("?"):
                    if binding.setdefault(term, value) != value:
                        ok = False
                        break
            if ok:
                rows.append(tuple(binding[a] for a in attrs))
        return Relation(attrs, rows)

    # -- planning & execution ------------------------------------------------

    def run(self, query: BGPQuery) -> SystemReport:
        p = self.params
        read_unit = p.c_read * self.index_cost_factor
        remaining = list(query.patterns)
        # Greedy: most selective pattern first.
        remaining.sort(key=self._match_count)
        current = self.pattern_relation(remaining.pop(0))
        response = len(current) * read_unit
        steps: list[_Step] = []

        while remaining:
            # Pick the join variable minimizing the joined patterns' input.
            shared_vars = [
                v
                for v in dict.fromkeys(
                    v for tp in remaining for v in tp.variables()
                )
                if v in current.attrs
            ]
            if not shared_vars:
                # Disconnected remainder (products are outside the paper's
                # scope, but stay safe): take the next pattern as-is.
                batch = (remaining.pop(0),)
                variable = ""
            else:
                variable = min(
                    shared_vars,
                    key=lambda v: sum(
                        self._match_count(tp)
                        for tp in remaining
                        if v in tp.variables()
                    ),
                )
                batch = tuple(
                    tp for tp in remaining if variable in tp.variables()
                )
                remaining = [tp for tp in remaining if tp not in batch]
            inputs = [current] + [self.pattern_relation(tp) for tp in batch]
            input_tuples = sum(len(r) for r in inputs)
            if variable:
                output = star_join(inputs, on=(variable,))
            else:
                output = star_join(inputs) if len(inputs) > 1 else inputs[0]
            centralized = input_tuples <= self.centralized_threshold
            if centralized:
                # Local merge join on one node: sequential index reads + join.
                response += input_tuples * read_unit + (
                    input_tuples + len(output)
                ) * p.c_join
            else:
                # One MapReduce job: init + read + shuffle + join + write,
                # at the limited per-join parallelism of a left-deep plan.
                parallel = self.mr_parallelism
                response += p.job_overhead
                response += input_tuples * read_unit / parallel
                response += input_tuples * p.c_shuffle / parallel
                response += (input_tuples + len(output)) * p.c_join / parallel
                response += len(output) * p.c_write / parallel
            steps.append(
                _Step(
                    variable=variable,
                    patterns=batch,
                    centralized=centralized,
                    input_tuples=input_tuples,
                    output_tuples=len(output),
                )
            )
            current = output

        result = current.project(tuple(query.distinguished))
        num_jobs = sum(1 for s in steps if not s.centralized)
        return SystemReport(
            system=self.name,
            query_name=query.name or str(query),
            answers=result.to_set(),
            response_time=response,
            num_jobs=num_jobs,
            job_signature=str(num_jobs) if num_jobs else "0",
            pwoc=False,
            details={"steps": steps},
        )

    def _match_count(self, tp: TriplePattern) -> int:
        return self.graph.count_match(tp.s, tp.p, tp.o)
