"""CSQ — the complete CliqueSquare system (§6's prototype).

Wires together the §5.1 partitioner, the CliqueSquare-MSC optimizer with
the §5.4 cost model for plan selection, the §5.2/§5.3 physical
translation and the simulated MapReduce executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.algorithm import OptimizerResult, cliquesquare
from repro.core.decomposition import MSC, DecompositionOption
from repro.core.logical import LogicalPlan
from repro.cost.cardinality import CardinalityEstimator, CatalogStatistics
from repro.cost.model import PlanCoster, select_best_plan
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.engine import ClusterConfig
from repro.partitioning.triple_partitioner import partition_graph
from repro.physical.executor import ExecutionResult, PlanExecutor
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import BGPQuery
from repro.systems.base import SystemReport


@dataclass
class CSQConfig:
    """Deployment knobs for the CSQ system."""

    num_nodes: int = 7
    option: DecompositionOption = MSC
    max_plans: int | None = 20_000
    timeout_s: float | None = 100.0
    params: CostParams = DEFAULT_PARAMS


class CSQ:
    """End-to-end CliqueSquare system over a simulated cluster."""

    name = "CSQ"

    def __init__(self, graph: RDFGraph, config: CSQConfig | None = None) -> None:
        self.config = config or CSQConfig()
        self.graph = graph
        self.store = partition_graph(graph, self.config.num_nodes)
        self.stats = CatalogStatistics.from_graph(graph)
        self.estimator = CardinalityEstimator(self.stats)
        self.coster = PlanCoster(self.estimator, self.config.params)
        self.executor = PlanExecutor(
            self.store,
            ClusterConfig(num_nodes=self.config.num_nodes),
            self.config.params,
        )

    # -- planning ---------------------------------------------------------

    def optimize(self, query: BGPQuery) -> tuple[LogicalPlan, OptimizerResult]:
        """CliqueSquare plans + cost-based selection of the best one."""
        result = cliquesquare(
            query,
            self.config.option,
            max_plans=self.config.max_plans,
            timeout_s=self.config.timeout_s,
        )
        if not result.plans:
            raise ValueError(
                f"{self.config.option} produced no plan for {query.name or query}"
            )
        best, _ = select_best_plan(result.unique_plans(), self.coster)
        return best, result

    # -- execution ---------------------------------------------------------

    def execute_plan(self, plan: LogicalPlan) -> ExecutionResult:
        """Run an arbitrary logical plan (used by the Fig. 20 baselines)."""
        return self.executor.execute(plan)

    def run(self, query: BGPQuery) -> SystemReport:
        plan, _ = self.optimize(query)
        result = self.executor.execute(plan)
        return SystemReport(
            system=self.name,
            query_name=query.name or str(query),
            answers=result.rows,
            response_time=result.response_time,
            num_jobs=result.num_jobs,
            job_signature=result.job_signature(),
            pwoc=result.job_signature() == "M",
            details={"plan": plan, "report": result.report},
        )
