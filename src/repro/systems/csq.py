"""CSQ — the complete CliqueSquare system (§6's prototype).

Since the serving layer landed, ``CSQ`` is a thin *session* over a
:class:`repro.service.QueryService`: the service owns the §5.1
partitioner, the CliqueSquare-MSC optimizer with the §5.4 cost model,
the §5.2/§5.3 physical translation, the simulated MapReduce executor,
and the template/plan/result caches.  The session keeps the historical
one-shot API (``optimize`` / ``execute_plan`` / ``run``) used by the
paper's figure benchmarks, while ``run`` routes through the service's
unified prepare → bind → execute pipeline — repeated, isomorphic, or
constant-varying queries skip the optimizer.  ``prepare`` exposes the
prepared-query surface directly on the session.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.algorithm import OptimizerResult
from repro.core.decomposition import MSC, DecompositionOption
from repro.core.logical import LogicalPlan
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.physical.executor import ExecutionResult
from repro.rdf.graph import RDFGraph
from repro.service.service import PreparedQuery, QueryService, ServiceConfig
from repro.sparql.ast import BGPQuery
from repro.systems.base import SystemReport


@dataclass
class CSQConfig:
    """Deployment knobs for the CSQ system."""

    num_nodes: int = 7
    option: DecompositionOption = MSC
    max_plans: int | None = 20_000
    timeout_s: float | None = 100.0
    params: CostParams = DEFAULT_PARAMS
    #: task execution backend ("serial" | "thread" | "process")
    backend: str = "serial"
    backend_workers: int | None = None
    #: store shards (0 = single store; N >= 1 runs behind repro.cluster)
    shards: int = 0
    #: shard boundary: "inproc" backends or "rpc" shard server processes
    shard_transport: str = "inproc"

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(
            num_nodes=self.num_nodes,
            option=self.option,
            max_plans=self.max_plans,
            timeout_s=self.timeout_s,
            params=self.params,
            backend=self.backend,
            backend_workers=self.backend_workers,
            shards=self.shards,
            shard_transport=self.shard_transport,
        )


class CSQ:
    """End-to-end CliqueSquare system over a simulated cluster."""

    name = "CSQ"

    def __init__(
        self,
        graph: RDFGraph,
        config: CSQConfig | None = None,
        service: QueryService | None = None,
    ) -> None:
        self.config = config or CSQConfig()
        self._owns_service = service is None
        if service is None:
            service = QueryService(graph, self.config.service_config())
        self.service = service

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the owned service's pools (no-op on a shared service)."""
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "CSQ":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # Historical attribute surface, now owned by the service.  These are
    # properties (not bindings taken at construction) because mutation
    # via ``service.add_triples`` swaps the catalog/estimator/coster.

    @property
    def graph(self) -> RDFGraph:
        return self.service.graph

    @property
    def store(self):
        return self.service.store

    @property
    def stats(self):
        return self.service.catalog

    @property
    def estimator(self):
        return self.service.estimator

    @property
    def coster(self):
        return self.service.coster

    @property
    def executor(self):
        return self.service.executor

    # -- planning ---------------------------------------------------------

    def optimize(self, query: BGPQuery) -> tuple[LogicalPlan, OptimizerResult]:
        """CliqueSquare plans + cost-based selection of the best one."""
        return self.service.optimize(query)

    def prepare(self, query: BGPQuery | str, name: str = "") -> PreparedQuery:
        """Prepare a parameterized query once; bind/execute many times."""
        prepared = self.service.prepare(query, name)
        assert isinstance(prepared, PreparedQuery)
        return prepared

    # -- execution ---------------------------------------------------------

    def execute_plan(self, plan: LogicalPlan) -> ExecutionResult:
        """Run an arbitrary logical plan (used by the Fig. 20 baselines)."""
        return self.service.execute_plan(plan)

    def run(self, query: BGPQuery) -> SystemReport:
        """One-shot query — served through prepare → bind → execute."""
        return self.service.submit(query).to_report(self.name)
