"""SHAPE comparator — simulated (see DESIGN.md substitutions).

SHAPE [23] hash-partitions RDF by subject with *semantic hash
partitioning*: each partition is expanded along forward (subject ->
object) edges so that queries whose pattern graph fits within the
expansion radius are parallelizable without communication (PWOC) and run
entirely inside the per-node local stores (RDF-3X in the original).  We
model the 2-hop *forward* scheme (2f), which the paper found best for
LUBM.

Behaviour reproduced:

* **PWOC detection**: a query is PWOC under 2f iff some anchor variable
  reaches every triple pattern's subject within one forward hop (the
  pattern's triples then lie within two hops of the anchor).
* **PWOC execution**: zero MapReduce jobs; every node evaluates the full
  query on its expanded local store; answers are unioned.  Local
  evaluation is indexed (RDF-3X), charged at ``local_cost_factor`` per
  accessed tuple — cheaper per tuple than CSQ's HDFS scans.
* **non-PWOC execution**: the query is greedily decomposed into maximal
  PWOC fragments; fragments are evaluated locally, then joined by a
  chain of binary MapReduce jobs (one job per join), reproducing
  SHAPE's single heuristic plan (no cost model, binary joins).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.cost.params import CostParams
from repro.partitioning.triple_partitioner import place
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import is_variable
from repro.relational.joins import hash_join
from repro.relational.relation import Relation
from repro.sparql.ast import BGPQuery, TriplePattern
from repro.sparql.evaluator import bindings
from repro.systems.base import SystemReport

#: Default unit costs: indexed local stores are cheap per tuple; MapReduce
#: joins pay the usual §5.4-style freight plus job initialization.
SHAPE_PARAMS = CostParams(job_overhead=400.0)

#: RDF-3X-style indexed access cost per retrieved tuple, relative to c_read.
LOCAL_COST_FACTOR = 0.35


def forward_closure_subjects(anchor: str, query: BGPQuery) -> set[str]:
    """Subjects reachable from *anchor* within one forward hop: the
    anchor itself plus objects of patterns whose subject is the anchor."""
    reachable = {anchor}
    for tp in query.patterns:
        if tp.s == anchor:
            reachable.add(tp.o)
    return reachable


def pwoc_anchor_2f(patterns: tuple[TriplePattern, ...]) -> str | None:
    """An anchor term making the pattern set PWOC under 2f, or None."""
    candidates = {tp.s for tp in patterns}
    for anchor in sorted(candidates):
        reachable = {anchor}
        for tp in patterns:
            if tp.s == anchor:
                reachable.add(tp.o)
        if all(tp.s in reachable for tp in patterns):
            return anchor
    return None


def is_pwoc_2f(query: BGPQuery) -> bool:
    """True iff the whole query is PWOC under 2-hop forward partitioning."""
    return pwoc_anchor_2f(query.patterns) is not None


def decompose_2f(query: BGPQuery) -> list[tuple[TriplePattern, ...]]:
    """Greedy decomposition into maximal PWOC fragments.

    Repeatedly picks the anchor covering the most remaining patterns
    (subject within one forward hop), which is SHAPE's partition-aware
    query decomposition in spirit.
    """
    remaining = list(query.patterns)
    fragments: list[tuple[TriplePattern, ...]] = []
    while remaining:
        best: list[TriplePattern] = []
        for anchor in sorted({tp.s for tp in remaining}):
            reachable = {anchor}
            for tp in remaining:
                if tp.s == anchor:
                    reachable.add(tp.o)
            fragment = [tp for tp in remaining if tp.s in reachable]
            if len(fragment) > len(best):
                best = fragment
        fragments.append(tuple(best))
        chosen = set(best)
        remaining = [tp for tp in remaining if tp not in chosen]
    return fragments


class ShapeSystem:
    """The SHAPE-2f comparator."""

    name = "SHAPE-2f"

    def __init__(
        self,
        graph: RDFGraph,
        num_nodes: int = 7,
        params: CostParams = SHAPE_PARAMS,
        local_cost_factor: float = LOCAL_COST_FACTOR,
    ) -> None:
        self.graph = graph
        self.num_nodes = num_nodes
        self.params = params
        self.local_cost_factor = local_cost_factor
        self.local_stores = self._partition_2f()

    # -- partitioning -----------------------------------------------------------

    def _partition_2f(self) -> list[RDFGraph]:
        """Subject-hash partitioning with 2-hop forward expansion."""
        by_subject: dict[str, list[tuple[str, str, str]]] = defaultdict(list)
        for triple in self.graph:
            by_subject[triple[0]].append(triple)
        stores = [RDFGraph(validate=False) for _ in range(self.num_nodes)]
        for subject, triples in by_subject.items():
            node = place(subject, self.num_nodes)
            frontier: set[str] = set()
            for s, p, o in triples:
                stores[node].add(s, p, o)
                frontier.add(o)
            # Second forward hop: replicate the triples of objects.
            for obj in frontier:
                for s, p, o in by_subject.get(obj, ()):
                    stores[node].add(s, p, o)
        return stores

    # -- fragment evaluation ------------------------------------------------------

    def _fragment_relation(
        self, fragment: tuple[TriplePattern, ...]
    ) -> tuple[Relation, float]:
        """Evaluate a PWOC fragment on every local store; union results.

        Returns the fragment relation and the (parallel) evaluation time:
        the max over nodes of indexed access work.
        """
        attrs: list[str] = []
        for tp in fragment:
            for v in tp.variables():
                if v not in attrs:
                    attrs.append(v)
        rows: set[tuple] = set()
        slowest = 0.0
        unit = self.params.c_read * self.local_cost_factor
        for store in self.local_stores:
            accessed = sum(store.count_match(tp.s, tp.p, tp.o) for tp in fragment)
            produced = 0
            for binding in bindings(fragment, store):
                rows.add(tuple(binding[a] for a in attrs))
                produced += 1
            slowest = max(slowest, (accessed + produced) * unit)
        return Relation(tuple(attrs), list(rows)), slowest

    # -- query execution ------------------------------------------------------------

    def run(self, query: BGPQuery) -> SystemReport:
        fragments = decompose_2f(query)
        pwoc = len(fragments) == 1
        relations: list[Relation] = []
        response = 0.0
        for fragment in fragments:
            relation, elapsed = self._fragment_relation(fragment)
            # Fragments evaluate in one map-only pass together.
            response = max(response, elapsed)
            relations.append(relation)

        current = relations[0]
        num_jobs = 0
        p = self.params
        for relation in relations[1:]:
            # One binary repartition-join MapReduce job per fragment join.
            shuffled = len(current) + len(relation)
            joined = hash_join(current, relation)
            response += (
                p.job_overhead
                + shuffled * (p.c_read + p.c_shuffle)
                + (len(current) + len(relation) + len(joined)) * p.c_join
                + len(joined) * p.c_write
            )
            num_jobs += 1
            current = joined

        result = current.project(tuple(query.distinguished))
        return SystemReport(
            system=self.name,
            query_name=query.name or str(query),
            answers=result.to_set(),
            response_time=response,
            num_jobs=num_jobs,
            job_signature="M" if pwoc else str(num_jobs),
            pwoc=pwoc,
            details={"fragments": fragments},
        )
