"""Produce sample observability artifacts from a traced LUBM workload.

``python -m repro.obs.demo --out DIR`` spins up a sharded service with
tracing on, serves a few LUBM queries, and writes:

* ``trace.json`` — Chrome trace-event export of every recorded trace
  (load via chrome://tracing or https://ui.perfetto.dev);
* ``metrics.prom`` — the Prometheus text exposition of the service
  registry, transport gauges included;
* ``explain_analyze.txt`` — the rendered plan + span tree of one
  sharded query.

The workload includes a live rebalance (grow to 3 shards, shrink back
to 2) between query batches, so ``trace.json`` carries the migration
timeline — ``rebalance:drain`` / ``rebalance:migrate`` with the
per-shard ``rebalance:prime`` / ``rebalance:delta`` / ``rebalance:flip``
phases nested under it — next to the queries running before and after
the topology moved.

CI's obs-smoke job uploads the directory as a build artifact; the
module doubles as a quick local look at what the tracing layer emits.
The rpc transport is used when the environment can spawn shard worker
processes, falling back to in-process shards otherwise (sandboxes).
"""

from __future__ import annotations

import argparse
from pathlib import Path


def _rpc_available() -> bool:
    try:
        from repro.cluster.rpc import ShardWorkerClient, Stats, StatsReply

        client = ShardWorkerClient(
            shard=0, num_nodes=2, num_shards=1, spawn_timeout=30
        )
        try:
            client.start()
            return isinstance(client.request(Stats()), StatsReply)
        finally:
            client.close()
    except Exception:
        return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="obs-artifacts", help="output directory"
    )
    parser.add_argument(
        "--queries",
        default="Q1,Q2,Q4,Q8",
        help="comma-separated LUBM query names to serve",
    )
    args = parser.parse_args(argv)

    from repro.service.service import QueryService, ServiceConfig
    from repro.workloads import lubm, lubm_queries

    transport = "rpc" if _rpc_available() else "inproc"
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    graph = lubm.generate(lubm.LUBMConfig(universities=4))
    names = [n for n in args.queries.split(",") if n]
    # num_nodes == slots: every slot on the ring holds a real node, so
    # the demo rebalance genuinely ships data (survivor deltas included)
    # instead of reassigning empty high slots of the default 64-ring.
    config = ServiceConfig(
        shards=2,
        num_nodes=8,
        slots=8,
        shard_transport=transport,
        tracing=True,
        slow_query_s=0.0,
        result_cache_size=0,
    )
    with QueryService(graph, config) as service:
        for name in names:
            outcome = service.submit(lubm_queries.query(name))
            print(
                f"{name}: {outcome.cardinality} rows, "
                f"{1e3 * outcome.timings.total_s:.2f} ms, "
                f"trace {outcome.trace_id}"
            )
        # A live migration between batches: the traced grow/shrink puts
        # the rebalance timeline (drain, prime, delta, flip spans) into
        # trace.json, and re-serving the workload afterwards shows
        # queries running against the flipped table.
        for target in (3, 2):
            report = service.rebalance(target_shards=target)
            print(
                f"rebalance -> {report.new_shards} shards: "
                f"epoch {report.old_epoch}->{report.new_epoch}, "
                f"{report.slots_moved} slots, "
                f"{1e3 * report.duration_s:.2f} ms"
            )
        for name in names:
            service.submit(lubm_queries.query(name))
        analyzed = service.explain_analyze(
            lubm_queries.query(names[-1]), name=names[-1]
        )
        events = service.export_chrome_trace(str(out / "trace.json"))
        (out / "metrics.prom").write_text(service.render_prometheus())
        (out / "explain_analyze.txt").write_text(analyzed + "\n")
    print(
        f"wrote {out}/trace.json ({events} events), metrics.prom, "
        f"explain_analyze.txt [transport={transport}]"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
