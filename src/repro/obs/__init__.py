"""repro.obs — observability: tracing, metrics, and EXPLAIN ANALYZE.

Two independent cores:

* :mod:`repro.obs.trace` — per-query span trees with contextvar
  propagation on the driver, picklable ``(trace_id, span_id)`` contexts
  across the RPC shard boundary, a bounded :class:`TraceSink`, and
  Chrome trace-event export.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters /
  gauges / fixed-bucket histograms with Prometheus text exposition.

The service wires both up (``ServiceConfig.tracing``,
``QueryService.explain_analyze`` / ``trace`` / ``render_prometheus``);
everything here is importable and usable standalone.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    SpanAccumulator,
    SpanRef,
    Trace,
    TraceSink,
    activate,
    attach_worker_spans,
    current_ref,
    record_remote,
    resolve,
    span,
    trace_ctx,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanAccumulator",
    "SpanRef",
    "Trace",
    "TraceSink",
    "activate",
    "attach_worker_spans",
    "current_ref",
    "record_remote",
    "resolve",
    "span",
    "trace_ctx",
]
