"""Metrics registry: named counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per service owns every metric family; a
family fans out into children keyed by a label tuple (``family.labels
(shard="0")``).  Histograms use fixed upper-bound buckets — observing is
O(len(buckets)) with no per-sample storage, so the running ``count`` and
``sum`` are *exact* over the whole series (this is what fixes the
``ServiceStats`` windowed-reservoir bias: the old latency deques kept
only the last ``window`` samples, so ``total``/``mean`` silently
under-reported long runs).

Exposition: :meth:`MetricsRegistry.render_prometheus` emits the
Prometheus text format (``# HELP``/``# TYPE`` + one line per child and
bucket); :meth:`MetricsRegistry.snapshot` returns the same data as a
JSON-able dict.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Any, Iterable

from repro.analysis.locks import checked

#: Latency buckets (seconds): 50 µs .. 10 s, roughly log-spaced.  The
#: terminal +Inf bucket is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelValues = tuple[str, ...]


def _format_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    as_int = int(v)
    return str(as_int) if v == as_int else repr(v)


def _label_str(names: tuple[str, ...], values: LabelValues) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{v}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


class _Child:
    """Shared base for one labeled child of a metric family."""

    __slots__ = ("_metric_lock",)

    def __init__(self) -> None:
        self._metric_lock = checked(threading.Lock(), "_metric_lock")


class Counter(_Child):
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0  # guarded-by: _metric_lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._metric_lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._metric_lock:
            return self._value


class Gauge(_Child):
    """A value that goes up and down (set/add)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0  # guarded-by: _metric_lock

    def set(self, value: float) -> None:
        with self._metric_lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._metric_lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._metric_lock:
            return self._value


class Histogram(_Child):
    """Fixed-bucket histogram with exact running count/sum.

    ``quantile(q)`` returns the upper bound of the bucket holding the
    q-th sample (nearest-rank over buckets) — a deterministic,
    full-series estimate whose error is bounded by bucket width.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        super().__init__()
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # guarded-by: _metric_lock
        self._sum = 0.0  # guarded-by: _metric_lock
        self._count = 0  # guarded-by: _metric_lock
        self._min = math.inf  # guarded-by: _metric_lock
        self._max = 0.0  # guarded-by: _metric_lock

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._metric_lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def state(self) -> tuple[list[int], float, int, float, float]:
        """(bucket counts, sum, count, min, max) under one lock hold."""
        with self._metric_lock:
            return (
                list(self._counts),
                self._sum,
                self._count,
                self._min,
                self._max,
            )

    @property
    def count(self) -> int:
        with self._metric_lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._metric_lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._metric_lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over buckets; 0.0 on an empty series."""
        if not 0 <= q <= 100:
            raise ValueError("q in [0, 100]")
        counts, _, count, lo, hi = self.state()
        if count == 0:
            return 0.0
        rank = max(1, math.ceil(count * q / 100.0))
        seen = 0
        for index, n in enumerate(counts):
            seen += n
            if seen >= rank:
                if index >= len(self.buckets):
                    return hi
                # clamp to the observed range: the first/last occupied
                # bucket's bound may far exceed the actual extrema.
                return min(max(self.buckets[index], lo), hi)
        return hi  # pragma: no cover - unreachable, counts sum to count


class _Family:
    """One named metric family: kind + labels -> children."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = (),
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._children: dict[LabelValues, _Child] = {}

    def _make(self) -> _Child:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)


class MetricsRegistry:
    """Thread-safe directory of metric families."""

    def __init__(self) -> None:
        self._lock = checked(threading.Lock(), "MetricsRegistry._lock")
        self._families: dict[str, _Family] = {}  # guarded-by: _lock

    # -- family constructors ----------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Iterable[str],
        buckets: tuple[float, ...] = (),
    ) -> _Family:
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, label_names, buckets)
                self._families[name] = family
            elif family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} re-registered as {kind}{label_names} "
                    f"(was {family.kind}{family.label_names})"
                )
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> "_Handle":
        return _Handle(self, self._family(name, "counter", help_text, labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> "_Handle":
        return _Handle(self, self._family(name, "gauge", help_text, labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> "_Handle":
        return _Handle(
            self, self._family(name, "histogram", help_text, labels, buckets)
        )

    def child(self, family: _Family, values: LabelValues) -> _Child:
        if len(values) != len(family.label_names):
            raise ValueError(
                f"metric {family.name!r} wants labels "
                f"{family.label_names}, got {values}"
            )
        with self._lock:
            c = family._children.get(values)
            if c is None:
                c = family._make()
                family._children[values] = c
        return c

    # -- exposition --------------------------------------------------------

    def _families_view(self) -> list[tuple[_Family, list[tuple[LabelValues, _Child]]]]:
        with self._lock:
            return [
                (family, sorted(family._children.items()))
                for _, family in sorted(self._families.items())
            ]

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, families sorted by name."""
        lines: list[str] = []
        for family, children in self._families_view():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in children:
                label = _label_str(family.label_names, values)
                if isinstance(child, Histogram):
                    counts, total, count, _, _ = child.state()
                    cumulative = 0
                    for bound, n in zip(
                        (*family.buckets, math.inf), counts
                    ):
                        cumulative += n
                        le = _label_str(
                            (*family.label_names, "le"),
                            (*values, _format_value(bound)),
                        )
                        lines.append(
                            f"{family.name}_bucket{le} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{label} {_format_value(total)}"
                    )
                    lines.append(f"{family.name}_count{label} {count}")
                else:
                    value = child.value  # type: ignore[union-attr]
                    lines.append(
                        f"{family.name}{label} {_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """JSON-able snapshot of every family and child."""
        out: dict[str, Any] = {}
        for family, children in self._families_view():
            entries = []
            for values, child in children:
                labels = dict(zip(family.label_names, values))
                if isinstance(child, Histogram):
                    counts, total, count, lo, hi = child.state()
                    entries.append(
                        {
                            "labels": labels,
                            "count": count,
                            "sum": total,
                            "min": 0.0 if count == 0 else lo,
                            "max": hi,
                            "buckets": {
                                _format_value(b): n
                                for b, n in zip(
                                    (*family.buckets, math.inf), counts
                                )
                            },
                        }
                    )
                else:
                    entries.append(
                        {"labels": labels, "value": child.value}  # type: ignore[union-attr]
                    )
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": entries,
            }
        return out

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)


class _Handle:
    """A family handle: ``.labels(...)`` resolves one child; label-less
    families proxy the single child's methods directly."""

    __slots__ = ("_registry", "_family", "_default")

    def __init__(self, registry: MetricsRegistry, family: _Family) -> None:
        self._registry = registry
        self._family = family
        self._default: _Child | None = None

    def labels(self, **labels: str) -> Any:
        values = tuple(
            str(labels[n]) for n in self._family.label_names
        )
        return self._registry.child(self._family, values)

    def _child(self) -> _Child:
        if self._default is None:
            self._default = self._registry.child(self._family, ())
        return self._default

    # label-less conveniences ------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._child().inc(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        self._child().set(value)  # type: ignore[attr-defined]

    def add(self, amount: float) -> None:
        self._child().add(amount)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        self._child().observe(value)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        return self._child().value  # type: ignore[attr-defined,no-any-return]

    @property
    def count(self) -> int:
        return self._child().count  # type: ignore[attr-defined,no-any-return]

    @property
    def sum(self) -> float:
        return self._child().sum  # type: ignore[attr-defined,no-any-return]

    @property
    def mean(self) -> float:
        return self._child().mean  # type: ignore[attr-defined,no-any-return]

    def quantile(self, q: float) -> float:
        return self._child().quantile(q)  # type: ignore[attr-defined,no-any-return]


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
