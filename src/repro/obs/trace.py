"""Tracing core: lightweight spans, a bounded in-memory sink, and
contextvar propagation.

A *trace* is one query's tree of timed spans.  The service starts a
trace per submission (when ``ServiceConfig.tracing`` is on, or always
for ``explain_analyze``); instrumentation sites open child spans with
:func:`span`, which reads the active :class:`SpanRef` from a contextvar
so nesting follows the call stack with no plumbing.  Cross-thread and
cross-process sites (router dispatch pools, RPC shard workers) instead
carry a picklable ``(trace_id, span_id)`` pair — see :func:`trace_ctx`
— and attach spans explicitly via :func:`record_remote`, which resolves
the owning sink through a process-local directory of live traces.

Zero-cost-when-off: with no active trace, :func:`span` returns a
preallocated no-op context manager and :func:`trace_ctx` returns None
after a single contextvar read — no allocation, no locking, no clock
reads (gated by ``benchmarks/test_obs_overhead.py``).

Timebase: span starts are stored as offsets (seconds) from the trace's
``time.perf_counter()`` epoch, so spans from different driver threads
share one clock.  Worker processes have an unrelated clock; their spans
ship as offsets relative to the worker's *frame receipt* and the driver
anchors them at the start of its own RPC span (clock-skew handling —
worker wall time is trusted, worker absolute time is not).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import AbstractContextManager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.analysis.locks import checked

#: Retained traces per sink (oldest evicted first).
DEFAULT_MAX_TRACES = 256
#: Spans kept per trace; further spans increment ``Trace.truncated``.
DEFAULT_SPAN_CAP = 512

_IDS = itertools.count(1)  # span ids; next() is atomic under the GIL


@dataclass
class Span:
    """One timed operation inside a trace.

    ``start_s`` is the offset from the trace epoch; ``attrs`` carries
    small identifying values (shard, level, worker pid, bytes).
    """

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    duration_s: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class Trace:
    """A bounded tree of spans rooted at one query submission."""

    trace_id: str
    name: str
    epoch: float
    root_id: int
    spans: list[Span]
    truncated: int = 0

    def root(self) -> Span:
        return self.spans[0]

    def children(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def find(self, name: str) -> list[Span]:
        """Every span named *name* (exact match)."""
        return [s for s in self.spans if s.name == name]

    def render(self) -> str:
        """Indented text rendering of the span tree."""
        by_parent: dict[int | None, list[Span]] = {}
        for s in self.spans:
            by_parent.setdefault(s.parent_id, []).append(s)
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())
            )
            pad = "  " * depth
            lines.append(
                f"{pad}{span.name}  {span.duration_s * 1e3:.3f} ms"
                + (f"  [{attrs}]" if attrs else "")
            )
            for child in sorted(
                by_parent.get(span.span_id, ()), key=lambda s: s.start_s
            ):
                walk(child, depth + 1)

        walk(self.root(), 0)
        if self.truncated:
            lines.append(f"... {self.truncated} spans over cap dropped")
        return "\n".join(lines)


# -- the process-local directory of live traces ----------------------------
#
# record_remote() runs on router dispatch-pool threads and coalescer
# leader threads that never saw the query's contextvar; the picklable
# (trace_id, span_id) pair they do have resolves back to the owning sink
# here.  Mutations happen under the lock; the hot-path lookup is a bare
# dict.get (atomic in CPython), so a disabled deployment never touches
# the lock.

_dir_lock = checked(threading.Lock(), "_trace_dir_lock")
_directory: dict[str, "TraceSink"] = {}


def _directory_add(trace_id: str, sink: "TraceSink") -> None:
    with _dir_lock:
        _directory[trace_id] = sink


def _directory_drop(trace_ids: Iterable[str]) -> None:
    with _dir_lock:
        for tid in trace_ids:
            _directory.pop(tid, None)


class TraceSink:
    """Bounded in-memory store of finished and in-flight traces."""

    def __init__(
        self,
        max_traces: int = DEFAULT_MAX_TRACES,
        span_cap: int = DEFAULT_SPAN_CAP,
    ) -> None:
        if max_traces < 1 or span_cap < 2:
            raise ValueError("max_traces >= 1 and span_cap >= 2 required")
        self.max_traces = max_traces
        self.span_cap = span_cap
        self._lock = checked(threading.Lock(), "TraceSink._lock")
        self._traces: OrderedDict[str, Trace] = OrderedDict()  # guarded-by: _lock

    # -- trace lifecycle ---------------------------------------------------

    def start_trace(
        self,
        name: str,
        epoch: float | None = None,
        **attrs: Any,
    ) -> "SpanRef":
        """Open a trace; the returned ref points at its root span.

        ``epoch`` is the ``perf_counter`` instant of the root start
        (default: now); the caller closes the root with
        :meth:`finish_trace` so the root duration can be made exactly
        equal to an externally measured total.
        """
        trace_id = uuid.uuid4().hex[:16]
        root_id = next(_IDS)
        root = Span(root_id, None, name, 0.0, 0.0, dict(attrs))
        trace = Trace(
            trace_id=trace_id,
            name=name,
            epoch=time.perf_counter() if epoch is None else epoch,
            root_id=root_id,
            spans=[root],
        )
        evicted: list[str] = []
        with self._lock:
            self._traces[trace_id] = trace
            while len(self._traces) > self.max_traces:
                evicted.append(self._traces.popitem(last=False)[0])
        if evicted:
            _directory_drop(evicted)
        _directory_add(trace_id, self)
        return SpanRef(self, trace_id, root_id)

    def finish_trace(self, trace_id: str, duration_s: float) -> None:
        """Close the root span with an authoritative total duration."""
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is not None:
                trace.spans[0].duration_s = duration_s

    def get(self, trace_id: str) -> Trace | None:
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is None:
                return None
            return Trace(
                trace_id=trace.trace_id,
                name=trace.name,
                epoch=trace.epoch,
                root_id=trace.root_id,
                spans=[
                    Span(
                        s.span_id,
                        s.parent_id,
                        s.name,
                        s.start_s,
                        s.duration_s,
                        dict(s.attrs),
                    )
                    for s in trace.spans
                ],
                truncated=trace.truncated,
            )

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            dropped = list(self._traces)
            self._traces.clear()
        _directory_drop(dropped)

    # -- span recording ----------------------------------------------------

    def add_span(
        self,
        trace_id: str,
        parent_id: int | None,
        name: str,
        start_s: float,
        duration_s: float,
        attrs: dict[str, Any] | None = None,
    ) -> int:
        """Append one finished span; returns its id (0 if dropped)."""
        span = Span(
            next(_IDS), parent_id, name, start_s, max(0.0, duration_s), attrs or {}
        )
        return self.append_span(trace_id, span)

    def append_span(self, trace_id: str, span: Span) -> int:
        """Append a pre-built span (caller-assigned id); 0 if dropped."""
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is None:
                return 0
            if len(trace.spans) >= self.span_cap:
                trace.truncated += 1
                return 0
            trace.spans.append(span)
        return span.span_id

    def offset(self, trace_id: str, instant: float) -> float:
        """perf_counter instant -> offset from the trace's epoch."""
        with self._lock:
            trace = self._traces.get(trace_id)
            epoch = trace.epoch if trace is not None else instant
        return instant - epoch

    # -- chrome://tracing export -------------------------------------------

    def export_chrome_trace(
        self, path: str, trace_ids: Iterable[str] | None = None
    ) -> int:
        """Write traces as Chrome trace-event JSON; returns event count.

        Load the file via ``chrome://tracing`` or https://ui.perfetto.dev.
        Each trace becomes one "process"; the span tree renders as
        complete ("ph": "X") events on depth-derived tracks.
        """
        ids = list(trace_ids) if trace_ids is not None else self.trace_ids()
        events: list[dict[str, Any]] = []
        for pid, tid_key in enumerate(ids, start=1):
            trace = self.get(tid_key)
            if trace is None:
                continue
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{trace.name} [{trace.trace_id}]"},
                }
            )
            depth: dict[int, int] = {trace.root_id: 0}
            ordered = sorted(
                trace.spans, key=lambda s: (s.parent_id is not None, s.start_s)
            )
            for s in ordered:
                if s.parent_id is not None:
                    depth[s.span_id] = depth.get(s.parent_id, 0) + 1
                events.append(
                    {
                        "name": s.name,
                        "cat": trace.name,
                        "ph": "X",
                        "ts": round(s.start_s * 1e6, 3),
                        "dur": round(s.duration_s * 1e6, 3),
                        "pid": pid,
                        "tid": depth.get(s.span_id, 0),
                        "args": dict(s.attrs),
                    }
                )
        with open(path, "w") as fh:
            json.dump({"traceEvents": events}, fh)
        return len(events)


@dataclass(frozen=True)
class SpanRef:
    """A live position in a trace: the sink plus (trace_id, span_id).

    Driver-side only — never pickled.  The picklable projection for RPC
    frames is :meth:`ctx`.
    """

    sink: TraceSink
    trace_id: str
    span_id: int

    def ctx(self) -> tuple[str, int]:
        return (self.trace_id, self.span_id)


# -- contextvar propagation ------------------------------------------------

_ACTIVE: ContextVar[SpanRef | None] = ContextVar("repro_obs_span", default=None)


def current_ref() -> SpanRef | None:
    """The active span ref in this context, or None when tracing is off."""
    return _ACTIVE.get()


def trace_ctx() -> tuple[str, int] | None:
    """Picklable (trace_id, span_id) for RPC frames; None when off."""
    ref = _ACTIVE.get()
    return None if ref is None else (ref.trace_id, ref.span_id)


def activate(ref: SpanRef | None) -> "_Activation":
    """Context manager installing *ref* as the active span.

    Used at trace roots and when re-entering a trace on a foreign thread
    (batch pool workers) — :func:`span` handles ordinary nesting.
    """
    return _Activation(ref)


class _Activation(AbstractContextManager["SpanRef | None"]):
    __slots__ = ("_ref", "_token")

    def __init__(self, ref: SpanRef | None) -> None:
        self._ref = ref

    def __enter__(self) -> SpanRef | None:
        self._token = _ACTIVE.set(self._ref)
        return self._ref

    def __exit__(self, *exc: object) -> None:
        _ACTIVE.reset(self._token)


class _NoopSpan:
    """What :func:`span` yields when tracing is off: every op a no-op."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


class _NoopCtx(AbstractContextManager[_NoopSpan]):
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()
_NOOP_CTX = _NoopCtx()


class _LiveSpan(AbstractContextManager["_LiveSpan"]):
    """An open span: records itself into the sink on exit."""

    __slots__ = ("_ref", "name", "attrs", "_start", "_token", "span_id")

    def __init__(self, ref: SpanRef, name: str, attrs: dict[str, Any]) -> None:
        self._ref = ref
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        self.span_id = next(_IDS)
        self._token = _ACTIVE.set(
            SpanRef(self._ref.sink, self._ref.trace_id, self.span_id)
        )
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        end = time.perf_counter()
        _ACTIVE.reset(self._token)
        sink = self._ref.sink
        if exc_type is not None:
            self.attrs.setdefault("error", getattr(exc_type, "__name__", "error"))
        self._record(sink, end)

    def _record(self, sink: TraceSink, end: float) -> None:
        # The span's id was allocated at __enter__ (children recorded
        # during the span already name it as parent), so append the
        # pre-built span instead of letting add_span mint a fresh id.
        sink.append_span(
            self._ref.trace_id,
            Span(
                self.span_id,
                self._ref.span_id,
                self.name,
                sink.offset(self._ref.trace_id, self._start),
                max(0.0, end - self._start),
                self.attrs,
            ),
        )


def span(name: str, **attrs: Any) -> AbstractContextManager[Any]:
    """Open a child of the active span; a shared no-op when tracing is off."""
    ref = _ACTIVE.get()
    if ref is None:
        return _NOOP_CTX
    return _LiveSpan(ref, name, attrs)


# -- explicit (cross-thread / cross-process) recording ---------------------


def resolve(ctx: tuple[str, int] | None) -> SpanRef | None:
    """A (trace_id, span_id) pair -> SpanRef, if the trace is still live."""
    if ctx is None:
        return None
    sink = _directory.get(ctx[0])
    if sink is None:
        return None
    return SpanRef(sink, ctx[0], ctx[1])


def record_remote(
    ctx: tuple[str, int] | None,
    name: str,
    start: float,
    end: float,
    **attrs: Any,
) -> SpanRef | None:
    """Attach a finished span under *ctx* from any thread.

    *start*/*end* are driver ``perf_counter`` instants.  Returns a ref
    to the new span (for anchoring worker sub-spans under it), or None
    when the trace is gone or tracing is off.
    """
    ref = resolve(ctx)
    if ref is None:
        return None
    sink = ref.sink
    span_id = sink.add_span(
        ref.trace_id,
        ref.span_id,
        name,
        sink.offset(ref.trace_id, start),
        end - start,
        dict(attrs),
    )
    if span_id == 0:
        return None
    return SpanRef(sink, ref.trace_id, span_id)


# -- worker-side span accumulation (ships over RPC) ------------------------
#
# Workers have no sink and an unrelated clock.  They accumulate compact
# picklable records relative to the frame-receipt instant; the driver
# re-anchors them under its RPC span via attach_worker_spans().

#: (name, parent_index, rel_start_s, duration_s, attrs) — parent_index
#: refers into the same record tuple, -1 meaning the driver's RPC span.
WorkerSpanRecord = tuple[str, int, float, float, dict[str, Any]]


class SpanAccumulator:
    """Worker-side recorder for one traced frame.

    Not thread-safe by design: one accumulator per in-flight frame, and
    the worker handles a frame's phases sequentially.
    """

    __slots__ = ("t0", "records")

    def __init__(self, t0: float | None = None) -> None:
        self.t0 = time.perf_counter() if t0 is None else t0
        self.records: list[WorkerSpanRecord] = []

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: int = -1,
        **attrs: Any,
    ) -> int:
        """Record [start, end] (worker perf_counter); returns record index."""
        self.records.append(
            (name, parent, start - self.t0, max(0.0, end - start), attrs)
        )
        return len(self.records) - 1

    def timed(self, name: str, parent: int = -1, **attrs: Any) -> "_AccSpan":
        return _AccSpan(self, name, parent, attrs)

    def packed(self) -> tuple[WorkerSpanRecord, ...]:
        return tuple(self.records)


class _AccSpan(AbstractContextManager["_AccSpan"]):
    __slots__ = ("_acc", "_name", "_parent", "_attrs", "_start", "index")

    def __init__(
        self,
        acc: SpanAccumulator,
        name: str,
        parent: int,
        attrs: dict[str, Any],
    ) -> None:
        self._acc = acc
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self.index = -1

    def set(self, **attrs: Any) -> None:
        self._attrs.update(attrs)

    def __enter__(self) -> "_AccSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.index = self._acc.record(
            self._name,
            self._start,
            time.perf_counter(),
            self._parent,
            **self._attrs,
        )


def attach_worker_spans(
    parent: SpanRef | None,
    records: Iterable[WorkerSpanRecord],
    anchor: float,
    scale_hint: int = 1,
    **extra: Any,
) -> None:
    """Re-anchor worker span records under a driver span.

    *anchor* is the driver ``perf_counter`` instant standing in for the
    worker's frame receipt (the start of the driver's RPC span — worker
    clocks are not comparable, worker durations are).  ``scale_hint``
    > 1 marks spans that cover a shared (coalesced) frame so renderers
    can flag the attribution; *extra* attrs are added to every span.
    """
    if parent is None:
        return
    sink = parent.sink
    base = sink.offset(parent.trace_id, anchor)
    ids: dict[int, int] = {}
    for index, (name, parent_ix, rel_start, duration, attrs) in enumerate(
        records
    ):
        merged = dict(attrs)
        merged.update(extra)
        if scale_hint > 1:
            merged.setdefault("shared", scale_hint)
        parent_id = (
            ids.get(parent_ix, parent.span_id) if parent_ix >= 0 else parent.span_id
        )
        span_id = sink.add_span(
            parent.trace_id,
            parent_id,
            name,
            base + max(0.0, rel_start),
            duration,
            merged,
        )
        if span_id:
            ids[index] = span_id


def iter_spans(trace: Trace) -> Iterator[Span]:
    return iter(trace.spans)


__all__ = [
    "DEFAULT_MAX_TRACES",
    "DEFAULT_SPAN_CAP",
    "Span",
    "SpanAccumulator",
    "SpanRef",
    "Trace",
    "TraceSink",
    "WorkerSpanRecord",
    "activate",
    "attach_worker_spans",
    "current_ref",
    "record_remote",
    "resolve",
    "span",
    "trace_ctx",
]
