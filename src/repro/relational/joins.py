"""Join kernel: binary hash join and the n-ary star natural join.

The n-ary star join is the paper's central physical primitive: m inputs
that all share a key attribute set A are grouped by A and combined.  Within
a group, the combination is a *natural join* — equalities on any further
attributes shared between inputs are enforced too, which folds in the
residual selections of §4.2 ("if there are query predicates which can be
checked on the join output ... a selection applying them is added").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.relational.relation import Relation, Row


def output_schema(inputs: Sequence[Relation]) -> tuple[str, ...]:
    """Union of the input schemas, first-seen attribute order."""
    attrs: list[str] = []
    for rel in inputs:
        for a in rel.attrs:
            if a not in attrs:
                attrs.append(a)
    return tuple(attrs)


def common_attributes(inputs: Sequence[Relation]) -> tuple[str, ...]:
    """Attributes present in *every* input, ordered by the first input."""
    if not inputs:
        return ()
    shared = set(inputs[0].attrs)
    for rel in inputs[1:]:
        shared &= set(rel.attrs)
    return tuple(a for a in inputs[0].attrs if a in shared)


def _merge(schema: tuple[str, ...], partial: dict[str, object], row_attrs, row) -> dict | None:
    """Merge a row into a partial mapping; None on conflict."""
    merged = dict(partial)
    for attr, value in zip(row_attrs, row):
        if attr in merged:
            if merged[attr] != value:
                return None
        else:
            merged[attr] = value
    return merged


def hash_join(left: Relation, right: Relation) -> Relation:
    """Binary natural hash join on all shared attributes.

    With no shared attributes this degenerates to a cartesian product;
    the optimizer never produces such joins (the paper excludes products),
    but the kernel supports it for completeness.
    """
    shared = common_attributes((left, right))
    schema = output_schema((left, right))
    if not shared:
        rows = []
        rmap = [right.attrs.index(a) if a in right.attrs else None for a in schema]
        for lrow in left.rows:
            base = dict(zip(left.attrs, lrow))
            for rrow in right.rows:
                merged = _merge(schema, base, right.attrs, rrow)
                if merged is not None:
                    rows.append(tuple(merged[a] for a in schema))
        return Relation(schema, rows)

    lkey = left.key(shared)
    rkey = right.key(shared)
    # Build on the smaller side.
    build, probe, bkey, pkey, build_is_left = (
        (left, right, lkey, rkey, True)
        if len(left) <= len(right)
        else (right, left, rkey, lkey, False)
    )
    table: dict[tuple, list[Row]] = defaultdict(list)
    for row in build.rows:
        table[bkey(row)].append(row)
    rows: list[Row] = []
    for prow in probe.rows:
        for brow in table.get(pkey(prow), ()):
            lrow, rrow = (brow, prow) if build_is_left else (prow, brow)
            merged = _merge(schema, dict(zip(left.attrs, lrow)), right.attrs, rrow)
            if merged is not None:
                rows.append(tuple(merged[a] for a in schema))
    return Relation(schema, rows)


def star_join(inputs: Sequence[Relation], on: Sequence[str] | None = None) -> Relation:
    """N-ary star natural join.

    *on* is the key attribute set A (defaults to the attributes shared by
    all inputs).  Rows are grouped by A; within a group all inputs are
    natural-joined, so equalities on attributes shared by only some of the
    inputs are enforced as well.
    """
    if not inputs:
        raise ValueError("star_join needs at least one input")
    if len(inputs) == 1:
        return inputs[0]
    key_attrs = tuple(on) if on is not None else common_attributes(inputs)
    if not key_attrs:
        raise ValueError(
            "star_join inputs share no attributes: "
            + "; ".join(str(r.attrs) for r in inputs)
        )
    for rel in inputs:
        missing = set(key_attrs) - set(rel.attrs)
        if missing:
            raise ValueError(f"input schema {rel.attrs} lacks key attrs {missing}")

    schema = output_schema(inputs)
    # Group every input by the key.
    grouped: list[dict[tuple, list[Row]]] = []
    for rel in inputs:
        extract = rel.key(key_attrs)
        groups: dict[tuple, list[Row]] = defaultdict(list)
        for row in rel.rows:
            groups[extract(row)].append(row)
        grouped.append(groups)

    # Only keys present in every input can produce results.
    live_keys = set(grouped[0].keys())
    for groups in grouped[1:]:
        live_keys &= set(groups.keys())

    rows: list[Row] = []
    for key in live_keys:
        partials: list[dict[str, object]] = [{}]
        for rel, groups in zip(inputs, grouped):
            next_partials: list[dict[str, object]] = []
            for partial in partials:
                for row in groups[key]:
                    merged = _merge(schema, partial, rel.attrs, row)
                    if merged is not None:
                        next_partials.append(merged)
            partials = next_partials
            if not partials:
                break
        for partial in partials:
            rows.append(tuple(partial[a] for a in schema))
    return Relation(schema, rows)
