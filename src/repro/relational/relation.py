"""Named-attribute relations: the tuple currency of every executor.

A :class:`Relation` is an ordered attribute schema plus a list of rows;
attribute names are SPARQL variable names (``?x``) so a relation is a set
of solution mappings restricted to its schema.  All physical operators
(map scans, joins, projections) consume and produce relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

Row = tuple


@dataclass
class Relation:
    """An ordered schema plus rows.  Rows are tuples aligned to ``attrs``."""

    attrs: tuple[str, ...]
    rows: list[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.attrs)) != len(self.attrs):
            raise ValueError(f"duplicate attributes in schema: {self.attrs}")

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def index_of(self, attr: str) -> int:
        """Position of *attr* in the schema."""
        try:
            return self.attrs.index(attr)
        except ValueError:
            raise KeyError(f"attribute {attr!r} not in schema {self.attrs}") from None

    def key(self, attrs: Sequence[str]) -> Callable[[Row], tuple]:
        """Return a function extracting the given attributes from a row."""
        idx = tuple(self.index_of(a) for a in attrs)
        return lambda row: tuple(row[i] for i in idx)

    def project(self, attrs: Sequence[str]) -> "Relation":
        """Project (with de-duplication) onto *attrs*."""
        extract = self.key(attrs)
        seen: set[tuple] = set()
        out: list[Row] = []
        for row in self.rows:
            key = extract(row)
            if key not in seen:
                seen.add(key)
                out.append(key)
        return Relation(tuple(attrs), out)

    def select(self, predicate: Callable[[dict[str, object]], bool]) -> "Relation":
        """Filter rows by a predicate over attribute->value dicts."""
        out = [
            row
            for row in self.rows
            if predicate(dict(zip(self.attrs, row)))
        ]
        return Relation(self.attrs, out)

    def distinct(self) -> "Relation":
        """Remove duplicate rows, preserving first-seen order."""
        seen: set[Row] = set()
        out: list[Row] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Relation(self.attrs, out)

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as attribute->value dictionaries (testing convenience)."""
        return [dict(zip(self.attrs, row)) for row in self.rows]

    def to_set(self) -> set[Row]:
        """Rows as a set (order-insensitive comparison)."""
        return set(self.rows)

    @classmethod
    def from_dicts(
        cls, attrs: Sequence[str], dicts: Iterable[dict[str, object]]
    ) -> "Relation":
        """Build a relation from attribute->value dictionaries."""
        attrs = tuple(attrs)
        return cls(attrs, [tuple(d[a] for a in attrs) for d in dicts])
