"""repro.relational subpackage."""
