"""Dictionary encoding of RDF terms.

Distributed RDF stores (including the systems the paper compares against,
e.g. RDF-3X and H2RDF+) dictionary-encode terms into dense integer ids so
that joins compare machine words instead of strings.  We follow the same
idiom: the :class:`Dictionary` assigns ids in first-seen order and supports
bidirectional lookup.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Dictionary:
    """A bijective mapping between RDF terms (strings) and integer ids."""

    def __init__(self) -> None:
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def encode(self, term: str) -> int:
        """Return the id for *term*, assigning a fresh one if unseen."""
        ident = self._term_to_id.get(term)
        if ident is None:
            ident = len(self._id_to_term)
            self._term_to_id[term] = ident
            self._id_to_term.append(term)
        return ident

    def encode_many(self, terms: Iterable[str]) -> list[int]:
        """Encode an iterable of terms, preserving order."""
        return [self.encode(t) for t in terms]

    def lookup(self, term: str) -> int | None:
        """Return the id for *term* or None if it has never been encoded."""
        return self._term_to_id.get(term)

    def decode(self, ident: int) -> str:
        """Return the term for *ident*.

        Raises ``KeyError`` for unknown ids (mirrors dict semantics rather
        than IndexError, since ids are opaque keys to callers).
        """
        if 0 <= ident < len(self._id_to_term):
            return self._id_to_term[ident]
        raise KeyError(ident)

    def decode_many(self, idents: Iterable[int]) -> list[str]:
        """Decode an iterable of ids, preserving order."""
        return [self.decode(i) for i in idents]

    # -- delta replication ----------------------------------------------------
    #
    # Ids are dense and append-only, so two dictionaries seeded from the
    # same term sequence stay identical as long as every append on one
    # side is replayed on the other in order.  The columnar wire format
    # exploits this: a frame carries only the entries past the peer's
    # watermark, and the peer merges them by position.

    def entries_from(self, start: int) -> tuple[str, ...]:
        """The terms with ids ``start .. len(self)-1``, in id order."""
        if not 0 <= start <= len(self._id_to_term):
            raise ValueError(
                f"delta start {start} outside dictionary of {len(self)} entries"
            )
        return tuple(self._id_to_term[start:])

    def merge_entries(self, start: int, terms: Iterable[str]) -> int:
        """Replay a delta produced by :meth:`entries_from` on a replica.

        Idempotent: entries below the current length must match what is
        already stored (re-delivery after a retry is a no-op); entries at
        the current length are appended.  A *start* beyond the current
        length means a delta was lost — raises ``ValueError`` rather than
        silently desynchronising id assignment.  Returns the new length.
        """
        size = len(self._id_to_term)
        if start > size:
            raise ValueError(
                f"dictionary delta gap: delta starts at {start}, "
                f"replica holds {size} entries"
            )
        for offset, term in enumerate(terms):
            ident = start + offset
            if ident < size:
                if self._id_to_term[ident] != term:
                    raise ValueError(
                        f"dictionary delta conflict at id {ident}: "
                        f"{self._id_to_term[ident]!r} != {term!r}"
                    )
                continue
            if term in self._term_to_id:
                raise ValueError(
                    f"dictionary delta conflict: term {term!r} already "
                    f"has id {self._term_to_id[term]}, delta assigns {ident}"
                )
            self._term_to_id[term] = ident
            self._id_to_term.append(term)
            size += 1
        return size
