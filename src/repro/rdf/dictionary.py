"""Dictionary encoding of RDF terms.

Distributed RDF stores (including the systems the paper compares against,
e.g. RDF-3X and H2RDF+) dictionary-encode terms into dense integer ids so
that joins compare machine words instead of strings.  We follow the same
idiom: the :class:`Dictionary` assigns ids in first-seen order and supports
bidirectional lookup.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Dictionary:
    """A bijective mapping between RDF terms (strings) and integer ids."""

    def __init__(self) -> None:
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def encode(self, term: str) -> int:
        """Return the id for *term*, assigning a fresh one if unseen."""
        ident = self._term_to_id.get(term)
        if ident is None:
            ident = len(self._id_to_term)
            self._term_to_id[term] = ident
            self._id_to_term.append(term)
        return ident

    def encode_many(self, terms: Iterable[str]) -> list[int]:
        """Encode an iterable of terms, preserving order."""
        return [self.encode(t) for t in terms]

    def lookup(self, term: str) -> int | None:
        """Return the id for *term* or None if it has never been encoded."""
        return self._term_to_id.get(term)

    def decode(self, ident: int) -> str:
        """Return the term for *ident*.

        Raises ``KeyError`` for unknown ids (mirrors dict semantics rather
        than IndexError, since ids are opaque keys to callers).
        """
        if 0 <= ident < len(self._id_to_term):
            return self._id_to_term[ident]
        raise KeyError(ident)

    def decode_many(self, idents: Iterable[int]) -> list[str]:
        """Decode an iterable of ids, preserving order."""
        return [self.decode(i) for i in idents]
