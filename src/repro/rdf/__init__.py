"""repro.rdf subpackage."""
