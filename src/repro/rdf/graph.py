"""In-memory RDF graph (triple store) with permutation indexes.

The store keeps triples both as raw strings and dictionary-encoded, and
maintains the classical permutation indexes (SPO, POS, OSP plus the
single-position indexes) so that the reference evaluator and the local
node engines can answer any triple-pattern lookup without scanning.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.rdf.dictionary import Dictionary
from repro.rdf.terms import is_variable, validate_triple

Triple = tuple[str, str, str]


class RDFGraph:
    """A set of RDF triples with lookup indexes.

    The graph is an *RDF dataset* in the paper's sense (§2): a set of
    (s p o) triples.  Duplicates are ignored.
    """

    def __init__(self, triples: Iterable[Triple] = (), validate: bool = True) -> None:
        self._triples: set[Triple] = set()
        self._spo: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self._pos: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self._osp: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self.dictionary = Dictionary()
        self._validate = validate
        for s, p, o in triples:
            self.add(s, p, o)

    # -- mutation ---------------------------------------------------------

    def add(self, s: str, p: str, o: str) -> bool:
        """Add a triple; return True if it was new."""
        if self._validate:
            validate_triple(s, p, o)
        triple = (s, p, o)
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self.dictionary.encode(s)
        self.dictionary.encode(p)
        self.dictionary.encode(o)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the number of new ones."""
        return sum(1 for s, p, o in triples if self.add(s, p, o))

    # -- inspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    @property
    def properties(self) -> set[str]:
        """The set of distinct property values in the graph."""
        return set(self._pos.keys())

    @property
    def subjects(self) -> set[str]:
        """The set of distinct subject values."""
        return set(self._spo.keys())

    @property
    def objects(self) -> set[str]:
        """The set of distinct object values."""
        return set(self._osp.keys())

    def count_property(self, p: str) -> int:
        """Number of triples with property *p*."""
        return sum(len(ss) for ss in self._pos.get(p, {}).values())

    # O(1) membership probes, used by the incremental catalog-statistics
    # maintenance to decide whether an incoming triple introduces a new
    # distinct value *before* the triple is inserted.

    def has_subject(self, s: str) -> bool:
        """Does any triple have subject *s*?"""
        return s in self._spo

    def has_property(self, p: str) -> bool:
        """Does any triple have property *p*?"""
        return p in self._pos

    def has_object(self, o: str) -> bool:
        """Does any triple have object *o*?"""
        return o in self._osp

    def has_subject_property(self, s: str, p: str) -> bool:
        """Does any triple match (s, p, ?o)?"""
        inner = self._spo.get(s)
        return inner is not None and p in inner

    def has_property_object(self, p: str, o: str) -> bool:
        """Does any triple match (?s, p, o)?"""
        inner = self._pos.get(p)
        return inner is not None and o in inner

    # -- pattern matching -------------------------------------------------

    def match(self, s: str = "?s", p: str = "?p", o: str = "?o") -> Iterator[Triple]:
        """Yield all triples matching the pattern.

        A position is a wildcard iff it is a SPARQL variable.  The most
        selective available index is used for each of the 8 bound/unbound
        combinations.
        """
        sb, pb, ob = not is_variable(s), not is_variable(p), not is_variable(o)
        if sb and pb and ob:
            if (s, p, o) in self._triples:
                yield (s, p, o)
        elif sb and pb:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield (s, p, obj)
        elif pb and ob:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield (subj, p, o)
        elif sb and ob:
            for prop in self._osp.get(o, {}).get(s, ()):
                yield (s, prop, o)
        elif sb:
            for prop, objs in self._spo.get(s, {}).items():
                for obj in objs:
                    yield (s, prop, obj)
        elif pb:
            for obj, subjs in self._pos.get(p, {}).items():
                for subj in subjs:
                    yield (subj, p, obj)
        elif ob:
            for subj, props in self._osp.get(o, {}).items():
                for prop in props:
                    yield (subj, prop, o)
        else:
            yield from self._triples

    def count_match(self, s: str = "?s", p: str = "?p", o: str = "?o") -> int:
        """Count triples matching the pattern (used by the cardinality estimator)."""
        return sum(1 for _ in self.match(s, p, o))
