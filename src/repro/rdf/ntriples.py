"""A minimal N-Triples-style reader/writer.

One triple per line, three whitespace-separated terms terminated by ``.``;
literals may contain spaces and are parsed quote-aware.  This is enough to
round-trip every dataset the reproduction generates (LUBM-style data uses
prefixed names and simple literals).
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from repro.rdf.graph import Triple


class NTriplesError(ValueError):
    """Raised when a line cannot be parsed as a triple."""


def _split_terms(line: str) -> list[str]:
    """Split a triple line into terms, keeping quoted literals intact."""
    terms: list[str] = []
    i, n = 0, len(line)
    while i < n:
        if line[i].isspace():
            i += 1
            continue
        if line[i] == '"':
            j = line.find('"', i + 1)
            while j != -1 and line[j - 1] == "\\":
                j = line.find('"', j + 1)
            if j == -1:
                raise NTriplesError(f"unterminated literal in: {line!r}")
            terms.append(line[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < n and not line[j].isspace():
                j += 1
            terms.append(line[i:j])
            i = j
    return terms


def parse_line(line: str) -> Triple | None:
    """Parse one line; return None for blank lines and ``#`` comments."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    terms = _split_terms(line)
    if terms and terms[-1] == ".":
        terms = terms[:-1]
    if len(terms) != 3:
        raise NTriplesError(f"expected 3 terms, got {len(terms)}: {line!r}")
    return (terms[0], terms[1], terms[2])


def parse(text: str) -> Iterator[Triple]:
    """Yield triples from a multi-line N-Triples document."""
    for line in text.splitlines():
        triple = parse_line(line)
        if triple is not None:
            yield triple


def serialize_triple(triple: Triple) -> str:
    """Render one triple as an N-Triples line."""
    s, p, o = triple
    return f"{s} {p} {o} ."


def serialize(triples: Iterable[Triple]) -> str:
    """Render triples as an N-Triples document (sorted, deterministic)."""
    return "\n".join(serialize_triple(t) for t in sorted(triples)) + "\n"


def write(triples: Iterable[Triple], fh: TextIO) -> int:
    """Write triples to an open text file; return the count written."""
    count = 0
    for triple in triples:
        fh.write(serialize_triple(triple))
        fh.write("\n")
        count += 1
    return count


def read(fh: TextIO) -> Iterator[Triple]:
    """Read triples from an open text file."""
    for line in fh:
        triple = parse_line(line)
        if triple is not None:
            yield triple
