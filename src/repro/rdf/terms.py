"""RDF term kinds and helpers.

Terms follow a light-weight string convention so that the whole system can
operate on plain strings (and, after dictionary encoding, on integers):

* IRIs are written ``<http://...>`` or as prefixed names ``ub:worksFor``;
  anything that is not a literal, variable or blank node is treated as an
  IRI.  The system never resolves prefixes -- a prefixed name is simply an
  opaque identifier, which is all the paper's algorithms require.
* Literals are written with surrounding double quotes: ``"C1"``.
* Variables start with ``?``: ``?x``.
* Blank nodes start with ``_:``: ``_:b0``.  The paper notes (footnote 1)
  that all results hold in the presence of blank nodes; we support them as
  constants.
* Parameter placeholders start with ``$``: ``$uni``.  They stand for a
  constant that will be supplied later (prepared-query templates,
  :mod:`repro.sparql.canonical`); structurally they behave like opaque
  constants, but they may never appear in data triples and must be bound
  before a query executes.
"""

from __future__ import annotations

from enum import Enum


class TermKind(Enum):
    """The four syntactic kinds of RDF/SPARQL terms."""

    IRI = "iri"
    LITERAL = "literal"
    VARIABLE = "variable"
    BLANK = "blank"


def is_variable(term: str) -> bool:
    """Return True iff *term* is a SPARQL variable (``?name``)."""
    return term.startswith("?")


def is_literal(term: str) -> bool:
    """Return True iff *term* is a literal (``"value"``)."""
    return term.startswith('"')


def is_blank(term: str) -> bool:
    """Return True iff *term* is a blank node (``_:id``)."""
    return term.startswith("_:")


def is_placeholder(term: str) -> bool:
    """Return True iff *term* is a parameter placeholder (``$name``)."""
    return term.startswith("$")


def is_iri(term: str) -> bool:
    """Return True iff *term* is an IRI (full or prefixed name)."""
    return bool(term) and not (
        is_variable(term)
        or is_literal(term)
        or is_blank(term)
        or is_placeholder(term)
    )


def is_constant(term: str) -> bool:
    """Return True iff *term* is a constant (anything but a variable)."""
    return not is_variable(term)


def kind_of(term: str) -> TermKind:
    """Classify *term* into one of the four :class:`TermKind` values."""
    if is_variable(term):
        return TermKind.VARIABLE
    if is_literal(term):
        return TermKind.LITERAL
    if is_blank(term):
        return TermKind.BLANK
    return TermKind.IRI


def variable_name(term: str) -> str:
    """Strip the leading ``?`` from a variable term.

    Raises ``ValueError`` if *term* is not a variable.
    """
    if not is_variable(term):
        raise ValueError(f"not a variable: {term!r}")
    return term[1:]


def literal_value(term: str) -> str:
    """Return the lexical value of a literal term (without quotes)."""
    if not is_literal(term):
        raise ValueError(f"not a literal: {term!r}")
    return term.strip('"')


def make_literal(value: str) -> str:
    """Wrap a raw string into literal syntax."""
    return f'"{value}"'


def make_variable(name: str) -> str:
    """Wrap a raw name into variable syntax (idempotent)."""
    return name if name.startswith("?") else f"?{name}"


#: The IRI used for ``rdf:type`` throughout the code base.  LUBM data and
#: queries use the prefixed form; the partitioner special-cases it (§5.1).
RDF_TYPE = "rdf:type"

#: SPARQL allows ``a`` as shorthand for ``rdf:type``.
RDF_TYPE_SHORTHAND = "a"


def validate_triple(s: str, p: str, o: str) -> None:
    """Check that ``(s p o)`` is a well-formed RDF triple.

    Per the paper (§2): a well-formed triple is from U x U x (U ∪ L); we
    additionally admit blank nodes in the s and o positions (footnote 1).
    """
    if not (is_iri(s) or is_blank(s)):
        raise ValueError(f"triple subject must be an IRI or blank node: {s!r}")
    if not is_iri(p):
        raise ValueError(f"triple property must be an IRI: {p!r}")
    if is_variable(o) or is_placeholder(o) or not o:
        raise ValueError(f"triple object must be a constant: {o!r}")
