"""CliqueSquare reproduction: flat plans for massively parallel RDF queries.

Reproduces Goasdoué, Kaoudi, Manolescu, Quiané-Ruiz, Zampetakis:
*CliqueSquare: Flat Plans for Massively Parallel RDF Queries* (ICDE 2015;
INRIA RR-8612).

Quickstart::

    from repro import parse_query, cliquesquare, MSC, height

    q = parse_query("SELECT ?p ?s WHERE { ?p ub:worksFor ?d . ?s ub:memberOf ?d }")
    result = cliquesquare(q, MSC)
    flattest = min(result.plans, key=height)

End-to-end (partition + optimize + execute on a simulated cluster)::

    from repro import CSQ
    from repro.workloads import lubm, lubm_queries

    system = CSQ(lubm.generate())
    report = system.run(lubm_queries.query("Q9"))

Serving a workload (``repro.service`` — concurrent query service with
plan & result caching; repeated query shapes skip the optimizer)::

    from repro import QueryService
    from repro.workloads import lubm, lubm_queries

    with QueryService(lubm.generate()) as service:
        outcomes = service.submit_batch(
            [lubm_queries.query(f"Q{i}") for i in (1, 2, 1, 2)]
        )
        print(service.snapshot_stats().format())

Sharded deployment (``repro.cluster`` — the store hash-partitioned
across shard workers behind a router; identical answers, per-shard
worker pools)::

    from repro import QueryService, ServiceConfig

    service = QueryService(graph, ServiceConfig(shards=4, backend="process"))
"""

from repro.cluster import (
    RpcShardRouter,
    ShardedPlanExecutor,
    ShardedSnapshot,
    ShardedStore,
    ShardRouter,
    ShardUnavailable,
    shard_graph,
)
from repro.core.algorithm import OptimizerResult, best_effort_plan, cliquesquare
from repro.core.binary import best_bushy_plan, best_linear_plan
from repro.core.decomposition import (
    ALL_OPTIONS,
    MSC,
    MSC_PLUS,
    MXC,
    MXC_PLUS,
    OPTIONS_BY_NAME,
    SC,
    SC_PLUS,
    XC,
    XC_PLUS,
    DecompositionOption,
)
from repro.core.logical import Join, LogicalPlan, Match, Project, Select
from repro.core.properties import analyze_plan_space, height, optimal_height
from repro.core.variable_graph import VariableGraph
from repro.cost.cardinality import CardinalityEstimator, CatalogStatistics
from repro.cost.model import PlanCoster, select_best_plan
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.mapreduce.engine import ClusterConfig, MapReduceEngine
from repro.partitioning.triple_partitioner import (
    PartitionedStore,
    StoreSnapshot,
    partition_graph,
)
from repro.physical.executor import PlanExecutor
from repro.rdf.graph import RDFGraph
from repro.service.service import (
    BoundQuery,
    PreparedQuery,
    QueryOutcome,
    QueryService,
    ServiceConfig,
    ServiceOverloaded,
)
from repro.service.stats import ServiceStats, StatsSnapshot
from repro.sparql.ast import BGPQuery, TriplePattern
from repro.sparql.canonical import (
    CanonicalQuery,
    QueryTemplate,
    TemplateParam,
    canonicalize,
    extract_template,
    structure_signature,
)
from repro.sparql.evaluator import evaluate
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.systems.csq import CSQ, CSQConfig
from repro.systems.h2rdf import H2RDFPlus
from repro.systems.shape import ShapeSystem

__version__ = "1.0.0"

__all__ = [
    "ALL_OPTIONS",
    "BGPQuery",
    "BoundQuery",
    "CSQ",
    "CSQConfig",
    "CanonicalQuery",
    "CardinalityEstimator",
    "CatalogStatistics",
    "ClusterConfig",
    "CostParams",
    "DEFAULT_PARAMS",
    "DecompositionOption",
    "ExecutionBackend",
    "H2RDFPlus",
    "Join",
    "LogicalPlan",
    "MSC",
    "MSC_PLUS",
    "MXC",
    "MXC_PLUS",
    "MapReduceEngine",
    "Match",
    "OPTIONS_BY_NAME",
    "OptimizerResult",
    "PartitionedStore",
    "PlanCoster",
    "PlanExecutor",
    "PreparedQuery",
    "ProcessBackend",
    "Project",
    "QueryOutcome",
    "QueryService",
    "QueryTemplate",
    "RDFGraph",
    "SC",
    "SC_PLUS",
    "Select",
    "SerialBackend",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceStats",
    "ShapeSystem",
    "RpcShardRouter",
    "ShardRouter",
    "ShardUnavailable",
    "ShardedPlanExecutor",
    "ShardedSnapshot",
    "ShardedStore",
    "SparqlSyntaxError",
    "StatsSnapshot",
    "StoreSnapshot",
    "TemplateParam",
    "ThreadBackend",
    "TriplePattern",
    "VariableGraph",
    "XC",
    "XC_PLUS",
    "analyze_plan_space",
    "best_bushy_plan",
    "best_effort_plan",
    "best_linear_plan",
    "canonicalize",
    "cliquesquare",
    "evaluate",
    "extract_template",
    "height",
    "make_backend",
    "optimal_height",
    "parse_query",
    "partition_graph",
    "select_best_plan",
    "shard_graph",
    "structure_signature",
]
